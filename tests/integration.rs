//! Workspace-level integration tests: they exercise the public API across
//! crate boundaries (core + pomdp + optim + emulation + consensus) the way a
//! downstream user of the `tolerance` facade would.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tolerance::core::baselines::BaselineKind;
use tolerance::core::node_model::NodeAction;
use tolerance::core::prelude::*;
use tolerance::emulation::{Emulation, EmulationConfig, StrategyKind};
use tolerance::pomdp::structure::{check_threshold_structure, is_tp2};

fn paper_problem(delta_r: Option<u32>) -> RecoveryProblem {
    let model =
        NodeModel::new(NodeParameters::default(), ObservationModel::paper_default()).unwrap();
    RecoveryProblem::new(model, RecoveryConfig { eta: 2.0, delta_r }).unwrap()
}

#[test]
fn end_to_end_alg1_threshold_beats_naive_strategies() {
    let problem = paper_problem(None);
    let config = Alg1Config {
        evaluation_episodes: 20,
        horizon: 80,
        iterations: 10,
        population: 20,
        seed: 3,
    };
    let learned = problem.solve_with_cem(&config).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let learned_cost = problem.evaluate_strategy(&learned, 50, 120, &mut rng);
    let never = ThresholdStrategy::stationary(1.0).unwrap();
    let never_cost = problem.evaluate_strategy(&never, 50, 120, &mut rng);
    let always = ThresholdStrategy::stationary(0.0).unwrap();
    let always_cost = problem.evaluate_strategy(&always, 50, 120, &mut rng);
    assert!(
        learned_cost < never_cost,
        "learned {learned_cost} vs never {never_cost}"
    );
    assert!(
        learned_cost < always_cost,
        "learned {learned_cost} vs always {always_cost}"
    );
}

#[test]
fn theorem1_structure_holds_for_the_exact_solution() {
    // Solve the recovery POMDP exactly and verify the greedy policy over the
    // belief grid is a threshold policy (Theorem 1).
    let problem = paper_problem(None);
    let pomdp = problem.model().to_pomdp(2.0, 0.95).unwrap();
    let solver = tolerance::pomdp::solvers::IncrementalPruning::new(
        tolerance::pomdp::solvers::IncrementalPruningConfig {
            max_vectors_per_stage: Some(24),
            ..Default::default()
        },
    );
    let value_function = solver.solve_finite_horizon(&pomdp, 12).unwrap();
    let actions: Vec<usize> = (0..=100)
        .map(|i| {
            let b = i as f64 / 100.0;
            value_function.greedy_action(&[1.0 - b, b]).unwrap()
        })
        .collect();
    let check = check_threshold_structure(&actions);
    // The capped solver is a bounded-error approximation of the exact DP, so
    // allow one spurious switch near the threshold; the uncapped solver in
    // `tolerance-pomdp`'s unit tests verifies the exact threshold structure.
    assert!(
        check.is_threshold || check.switches <= 2,
        "greedy policy is far from a threshold: {} switches",
        check.switches
    );
    assert_eq!(actions[0], 0, "waiting must be optimal at belief 0");
    assert_eq!(actions[100], 1, "recovery must be optimal at belief 1");
    // The observation model satisfies the TP-2 assumption the theorem needs.
    let observation = ObservationModel::paper_default();
    let matrix = vec![
        observation.healthy_distribution().to_vec(),
        observation.compromised_distribution().to_vec(),
    ];
    assert!(is_tp2(&matrix, 1e-9));
}

#[test]
fn theorem2_structure_holds_for_algorithm2() {
    let problem = ReplicationProblem::new(ReplicationConfig {
        s_max: 13,
        fault_threshold: 2,
        availability_target: 0.9,
        node_survival_probability: 0.9,
    })
    .unwrap();
    let strategy = Alg2.solve(&problem).unwrap();
    assert!(strategy.has_threshold_structure(1e-6));
    assert!(strategy.availability() >= 0.9 - 1e-6);
    // The add probability is monotonically non-increasing in the number of
    // healthy nodes (the threshold-mixture shape of Fig. 13a).
    let probabilities = strategy.add_probabilities();
    for pair in probabilities.windows(2) {
        assert!(pair[1] <= pair[0] + 1e-9);
    }
}

#[test]
fn emulation_reproduces_the_papers_qualitative_ranking() {
    let mut results = Vec::new();
    for strategy in [
        StrategyKind::Tolerance,
        StrategyKind::Baseline(BaselineKind::Periodic),
        StrategyKind::Baseline(BaselineKind::NoRecovery),
    ] {
        let config = EmulationConfig {
            initial_nodes: 6,
            delta_r: Some(15),
            strategy,
            horizon: 300,
            seed: 7,
            ..EmulationConfig::default()
        };
        let outcome = Emulation::new(config).unwrap().run().unwrap();
        results.push((strategy.name(), outcome.metrics));
    }
    let availability = |name: &str| {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap()
            .1
            .availability
    };
    let ttr = |name: &str| {
        results
            .iter()
            .find(|(n, _)| *n == name)
            .unwrap()
            .1
            .time_to_recovery
    };
    assert!(availability("tolerance") > availability("no-recovery"));
    assert!(availability("periodic") > availability("no-recovery"));
    assert!(ttr("tolerance") < ttr("periodic"));
    assert!(ttr("periodic") < ttr("no-recovery"));
}

#[test]
fn controllers_drive_a_consensus_cluster_correctly() {
    // Full stack: emulation loop + MinBFT cluster, checking that the service
    // answers clients correctly while intrusions and recoveries happen.
    let mut emulation = Emulation::new(EmulationConfig {
        initial_nodes: 4,
        horizon: 30,
        strategy: StrategyKind::Tolerance,
        seed: 11,
        ..EmulationConfig::default()
    })
    .unwrap();
    let (outcome, success_rate) = emulation.run_with_consensus(30).unwrap();
    assert!(success_rate > 0.8, "request success rate {success_rate}");
    assert!(outcome.metrics.availability > 0.7);
}

#[test]
fn node_controller_and_strategy_agree_on_decisions() {
    let model =
        NodeModel::new(NodeParameters::default(), ObservationModel::paper_default()).unwrap();
    let strategy = ThresholdStrategy::stationary(0.76).unwrap();
    let mut controller = NodeController::new(model.clone(), strategy.clone());
    // Feed the same observation sequence to the controller and to a manual
    // belief recursion + strategy: the decisions must match.
    let mut belief = model.parameters().p_attack;
    let mut previous = NodeAction::Wait;
    for alerts in [0u64, 1, 9, 9, 9, 9, 2, 0, 8, 9, 9] {
        let expected_belief = model.belief_update(belief, previous, alerts);
        let expected_action = strategy.decide(expected_belief, 0);
        let action = controller.observe_and_decide(alerts);
        assert_eq!(action, expected_action);
        belief = if expected_action == NodeAction::Recover {
            model.parameters().p_attack
        } else {
            expected_belief
        };
        previous = expected_action;
    }
}
