//! Acceptance tests of the deterministic fault-injection harness (simnet):
//! a bounded randomized-schedule suite over the full two-level stack, the
//! byte-identical-replay guarantee across thread counts, the
//! double-commit-detection + shrinking pipeline, and Raft under the shared
//! partition API.
//!
//! This suite doubles as the CI `simnet-smoke` job: any emitted
//! counterexample is written to `simnet-counterexamples/` and uploaded as a
//! workflow artifact.

use std::collections::BTreeSet;
use tolerance::consensus::{AttackerKind, ByzantineMode, RaftCluster, RaftConfig};
use tolerance::core::controlplane::scenario::sim_intrusion_burst_config;
use tolerance::core::runtime::{Runner, Scenario};
use tolerance::core::simnet::{
    adversary_config, adversary_matrix, adversary_sharded_config, find_counterexample,
    find_sharded_counterexample, run_schedule, run_sharded_schedule, Counterexample, FaultEvent,
    FaultKind, FaultSchedule, InvariantKind, NetworkCondition, ScheduleConfig, ScheduledFault,
    ShardedCounterexample, ShardedFaultSchedule, SimnetScenario,
};
use tolerance::emulation::builtin_registry;

/// The fixed seed set of the smoke suite (the CI job runs exactly this).
fn smoke_seeds() -> Vec<u64> {
    (0..18).collect()
}

fn smoke_configs() -> Vec<(&'static str, ScheduleConfig)> {
    vec![
        (
            "light",
            ScheduleConfig {
                horizon: 40,
                intensity: 0.2,
                ..ScheduleConfig::default()
            },
        ),
        (
            "heavy",
            ScheduleConfig {
                horizon: 40,
                intensity: 0.8,
                ..ScheduleConfig::default()
            },
        ),
        (
            "full-stack",
            ScheduleConfig {
                horizon: 40,
                intensity: 0.5,
                system_controller: true,
                ..ScheduleConfig::default()
            },
        ),
        (
            // The data-plane configuration: leader batching plus an
            // aggressive checkpoint period, so recovery and view changes
            // run from *truncated* logs (state transfer from the stable
            // checkpoint, no re-execution of compacted requests) under the
            // same chaos schedules and oracles.
            "gc-batch",
            ScheduleConfig {
                horizon: 40,
                intensity: 0.5,
                checkpoint_period: 8,
                batch_size: 4,
                ..ScheduleConfig::default()
            },
        ),
        (
            // The PR-6 pipelined data plane: a watermark window above 1
            // keeps several uncommitted sequences in flight, so view
            // changes, recoveries and state transfers triggered by the
            // chaos schedule must cope with multiple concurrently proposed
            // batches (and the aggressive checkpoint period keeps those
            // interacting with compaction).
            "pipelined",
            ScheduleConfig {
                horizon: 40,
                intensity: 0.5,
                checkpoint_period: 8,
                batch_size: 4,
                pipeline_window: 4,
                ..ScheduleConfig::default()
            },
        ),
    ]
}

/// Writes a counterexample where the CI job picks it up as an artifact.
fn publish_counterexample(name: &str, counterexample: &Counterexample) {
    let dir = std::path::Path::new("simnet-counterexamples");
    if std::fs::create_dir_all(dir).is_ok() {
        let json = counterexample.to_json().expect("serializable");
        let _ = std::fs::write(dir.join(format!("{name}.json")), json);
    }
}

/// The sharded twin of [`publish_counterexample`].
fn publish_sharded_counterexample(name: &str, counterexample: &ShardedCounterexample) {
    let dir = std::path::Path::new("simnet-counterexamples");
    if std::fs::create_dir_all(dir).is_ok() {
        let json = counterexample.to_json().expect("serializable");
        let _ = std::fs::write(dir.join(format!("{name}.json")), json);
    }
}

#[test]
fn randomized_schedules_pass_all_invariant_oracles() {
    // ≥ 50 randomized schedules (3 configs × 18 seeds = 54) through the
    // full stack: MinBFT + node controllers (+ system controller in the
    // full-stack config), with agreement/validity/recovery-bound/
    // network-accounting checked after every step and liveness at settle.
    let mut kinds: BTreeSet<FaultKind> = BTreeSet::new();
    let mut runs = 0;
    for (name, config) in smoke_configs() {
        for seed in smoke_seeds() {
            let schedule = FaultSchedule::generate(seed, &config);
            kinds.extend(schedule.kinds());
            let report = run_schedule(&schedule, &config).expect("harness constructs");
            if let Some(violation) = &report.violation {
                // Shrink and publish before failing, so CI uploads the
                // replayable counterexample.
                if let Ok(Some(counterexample)) = find_counterexample(&schedule, &config) {
                    publish_counterexample(&format!("{name}-seed{seed}"), &counterexample);
                }
                panic!("{name} seed {seed}: {violation}");
            }
            assert!(
                report.outcome.completed > 0,
                "{name} seed {seed}: no requests completed"
            );
            assert!(report.outcome.availability > 0.0);
            runs += 1;
        }
    }
    assert!(runs >= 50, "the suite must cover at least 50 schedules");
    // Coverage: the generated schedules must exercise ≥ 6 distinct fault
    // kinds (partitions, storms, crashes, Byzantine flips, intrusions,
    // churn, client bursts, ...).
    assert!(
        kinds.len() >= 6,
        "only {} fault kinds covered: {kinds:?}",
        kinds.len()
    );
}

#[test]
fn identical_seed_is_byte_identical_across_thread_counts() {
    let scenario = SimnetScenario::new(
        "simnet/replay",
        ScheduleConfig {
            horizon: 30,
            intensity: 0.6,
            ..ScheduleConfig::default()
        },
    );
    let seeds: Vec<u64> = (0..6).collect();
    let serial = Runner::serial()
        .run_seeds(&scenario, &seeds)
        .expect("serial runs");
    for workers in [2, 4, 8] {
        let parallel = Runner::with_threads(workers)
            .run_seeds(&scenario, &seeds)
            .expect("parallel runs");
        for (a, b) in serial.iter().zip(&parallel) {
            let json_a = serde_json::to_string(&a.trace).expect("serializable");
            let json_b = serde_json::to_string(&b.trace).expect("serializable");
            assert_eq!(
                json_a, json_b,
                "{workers} workers: traces must be byte-identical"
            );
        }
        assert_eq!(serial, parallel, "{workers} workers");
    }
}

#[test]
fn injected_double_commit_is_caught_shrunk_and_replayable() {
    // The deliberately injected implementation bug (test-only Byzantine
    // mode): a replica corrupts its execution while claiming to be correct.
    let config = ScheduleConfig {
        horizon: 16,
        intensity: 0.4,
        inject_double_commit_at: Some(5),
        ..ScheduleConfig::default()
    };
    let schedule = FaultSchedule::generate(11, &config);
    let counterexample = find_counterexample(&schedule, &config)
        .expect("harness constructs")
        .expect("the injected double commit must be caught");
    assert_eq!(
        counterexample.violation.kind,
        InvariantKind::Agreement,
        "the agreement oracle must catch the conflicting commit"
    );
    // Greedy shrinking keeps the injection and drops chaff: the minimal
    // schedule is no larger than the original and still replays.
    assert!(counterexample.schedule.events.len() <= schedule.events.len());
    assert!(counterexample
        .schedule
        .events
        .iter()
        .any(|e| e.event.kind() == FaultKind::InjectDoubleCommit));
    publish_counterexample("expected-double-commit", &counterexample);

    // One command to reproduce: JSON → Counterexample → replay.
    let json = counterexample.to_json().expect("serializes");
    let restored = Counterexample::from_json(&json).expect("parses back");
    assert_eq!(restored, counterexample);
    let replayed = restored
        .replay()
        .expect("replay constructs")
        .expect("replay violates again");
    assert_eq!(replayed.kind, InvariantKind::Agreement);
}

#[test]
fn registry_sweeps_simnet_scenarios_like_any_grid_axis() {
    let registry = builtin_registry();
    for name in [
        "simnet/chaos-light",
        "simnet/partition-churn",
        "simnet/attacker-campaign",
    ] {
        assert!(registry.contains(name), "missing {name}");
    }
    let run = registry
        .run("simnet/chaos-light", &Runner::with_threads(2), &[0, 1, 2])
        .expect("registry sweep passes the oracles");
    assert_eq!(run.reports.len(), 3);
    for report in &run.reports {
        assert!((0.0..=1.0).contains(&report.availability));
    }
}

#[test]
fn controlled_intrusion_sweep_passes_all_oracles_across_300_runs() {
    // The acceptance sweep of the closed-loop control plane: the same
    // ControlPlane::tick that steers the live threaded service drives the
    // simulated cluster here, under intrusion-heavy chaos schedules, with
    // agreement/validity/recovery-bound/network-accounting checked after
    // every step and liveness at settle — 300 seeds.
    let scenario = SimnetScenario::new(
        "controlled/sim-intrusion-burst",
        sim_intrusion_burst_config(),
    );
    let seeds: Vec<u64> = (0..300).collect();
    let reports = Runner::parallel()
        .run_seeds(&scenario, &seeds)
        .expect("all 300 controlled runs must pass the oracle suite");
    assert_eq!(reports.len(), 300);
    let recoveries: u64 = reports.iter().map(|r| r.outcome.recoveries).sum();
    let completed: u64 = reports.iter().map(|r| r.outcome.completed).sum();
    assert!(
        recoveries > 0,
        "the node controllers must actuate recoveries somewhere in the sweep"
    );
    assert!(completed > 0);
    for report in &reports {
        assert!(report.violation.is_none());
        assert!(report.outcome.availability > 0.0);
    }
}

#[test]
fn pipelined_chaos_sweep_passes_all_oracles_across_300_runs() {
    // The PR-6 acceptance sweep: 300 randomized chaos schedules against
    // the watermark-pipelined data plane (pipeline_window > 1, leader
    // batching, aggressive compaction), with the full oracle suite —
    // agreement/validity/recovery-bound/network-accounting after every
    // step, liveness at settle. Multiple in-flight sequences must survive
    // partitions, crashes, Byzantine flips and membership churn.
    let scenario = SimnetScenario::new(
        "simnet/pipelined-chaos",
        ScheduleConfig {
            horizon: 40,
            intensity: 0.5,
            checkpoint_period: 8,
            batch_size: 4,
            pipeline_window: 4,
            ..ScheduleConfig::default()
        },
    );
    let seeds: Vec<u64> = (0..300).collect();
    let reports = Runner::parallel()
        .run_seeds(&scenario, &seeds)
        .expect("all 300 pipelined chaos runs must pass the oracle suite");
    assert_eq!(reports.len(), 300);
    let completed: u64 = reports.iter().map(|r| r.outcome.completed).sum();
    assert!(completed > 0);
    for report in &reports {
        assert!(report.violation.is_none());
        assert!(report.outcome.availability > 0.0);
    }
}

#[test]
fn pinned_reconfiguration_split_brain_counterexample_cannot_regress() {
    // The PR-3 600-run-sweep counterexample, pinned: with n = 6 a batch
    // stream commits at one commit quorum while the partitioned laggards
    // fall behind; an EVICT of a quorum member then shrinks n to 5, where
    // a laggard-heavy view-change ballot would no longer intersect the
    // old-configuration commit quorum — it would no-op fill the committed
    // sequences and re-assign their requests. The reconfiguration state
    // barrier (`sync_lagging_replicas`) must force the laggards through a
    // state sync before they may form ballots. (Re-staged since the
    // recovery-aware quorum pair of PR 7: the n = 6 commit quorum is now
    // 4, so the committing side holds {0,1,2,3} and the laggards {4,5} —
    // the EVICT-shrinks-the-intersection shape is the same.)
    use tolerance::consensus::minbft::Operation;
    use tolerance::consensus::{MinBftCluster, MinBftConfig, NetworkConfig};

    let mut cluster = MinBftCluster::new(MinBftConfig {
        initial_replicas: 6,
        network: NetworkConfig {
            latency: 0.002,
            jitter: 0.001,
            loss_rate: 0.0,
        },
        ..MinBftConfig::default()
    });
    let client = cluster.add_client();

    // Phase 1: everyone at a common frontier.
    for i in 0..4u64 {
        cluster.submit(client, Operation::Write(i + 1));
        cluster.run_until(cluster.now() + 1.0);
    }
    assert!(!cluster.has_outstanding_request(client));

    // Phase 2: partition {0,1,2,3} (leader side, the n = 6 commit quorum
    // of 4) from {4,5}; the quorum keeps committing, the laggards fall
    // behind.
    cluster.partition_network(&[0, 1, 2, 3], &[4, 5]);
    for i in 0..6u64 {
        cluster.submit(client, Operation::Write(100 + i));
        cluster.run_until(cluster.now() + 1.0);
    }
    let frontier = cluster.executed_len(0).unwrap();
    let laggard = cluster.executed_len(4).unwrap();
    assert!(
        frontier >= laggard + 4,
        "the partition must open a commit gap: {frontier} vs {laggard}"
    );

    // Phase 3: EVICT a member of the old commit quorum while the laggards
    // are still behind, then heal. Without the state barrier, a
    // laggard-heavy ballot in the shrunken configuration re-assigns
    // sequences.
    cluster.evict_replica(0);
    cluster.heal_network();
    for round in 0..12 {
        cluster.run_until(cluster.now() + 2.0);
        // The executor's straggler catch-up: recover replicas that are
        // awaiting state or lag the frontier.
        let members: Vec<_> = cluster.membership().to_vec();
        let longest = members
            .iter()
            .filter_map(|&id| cluster.executed_len(id))
            .max()
            .unwrap_or(0);
        for id in members {
            let lagging = cluster
                .executed_len(id)
                .map(|len| len + 2 < longest)
                .unwrap_or(false);
            if cluster.needs_state(id) || lagging {
                cluster.recover_replica(id);
            }
        }
        if !cluster.has_outstanding_request(client) && round > 2 {
            break;
        }
    }

    // Liveness: a probe request must complete in the new configuration.
    cluster.submit(client, Operation::Write(0xfeed));
    for _ in 0..10 {
        cluster.run_until(cluster.now() + 2.0);
        if !cluster.has_outstanding_request(client) {
            break;
        }
    }
    assert!(
        !cluster.has_outstanding_request(client),
        "the post-eviction configuration must serve requests"
    );

    // Agreement: no sequence number was ever committed with two digests
    // (the split brain re-assigned sequences 27-28 in the original trace),
    // and the healthy logs are prefix-consistent.
    let mut digests: std::collections::HashMap<u64, tolerance::consensus::crypto::Digest> =
        std::collections::HashMap::new();
    for record in cluster.commit_trace() {
        if let Some(previous) = digests.insert(record.sequence, record.digest) {
            assert_eq!(
                previous, record.digest,
                "sequence {} committed with two digests (split brain)",
                record.sequence
            );
        }
    }
    assert!(
        cluster.logs_are_consistent(),
        "logs diverged after the EVICT reconfiguration"
    );
}

#[test]
fn raft_survives_partition_and_crash_chaos() {
    // The shared partition/storm API on the crash-tolerant substrate: a
    // scripted chaos schedule against Raft, with committed-log consistency
    // as the agreement oracle.
    for seed in 0..6 {
        let mut raft = RaftCluster::new(RaftConfig {
            members: 5,
            seed,
            ..RaftConfig::default()
        });
        raft.run_until(2.0);
        assert!(raft.propose("op-1"));
        raft.run_until(3.0);

        // Partition a minority, keep proposing, heal, crash one member,
        // restart it.
        raft.partition_network(&[0, 1], &[2, 3, 4]);
        raft.run_until(5.0);
        raft.propose("op-2");
        raft.run_until(7.0);
        raft.heal_network();
        raft.run_until(9.0);
        raft.crash(2);
        raft.propose("op-3");
        raft.run_until(12.0);
        raft.restart(2);
        raft.run_until(16.0);

        assert!(
            raft.committed_logs_consistent(),
            "seed {seed}: committed logs diverged"
        );
        let leader = raft.leader().expect("a leader after healing");
        assert!(
            !raft.committed_log(leader).is_empty(),
            "seed {seed}: nothing committed"
        );
        assert!(!raft.is_crashed(2));
        assert_eq!(raft.members(), &[0, 1, 2, 3, 4]);
    }
}

#[test]
fn adversary_matrix_sweep_passes_all_oracles_across_300_runs() {
    // The PR-7 acceptance sweep: every attacker variant of the zoo × every
    // network condition (sync / partial synchrony with GST / storms), 20
    // seeds per cell = 300 single-group runs, under the full oracle suite —
    // including liveness-after-GST in the `gst` column. Any violation is
    // shrunk and published as a replayable counterexample before failing.
    let mut attackers_seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut runs = 0;
    for (attacker, condition) in adversary_matrix() {
        let config = adversary_config(attacker, condition);
        for seed in 0..20u64 {
            let schedule = FaultSchedule::generate(seed, &config);
            for fault in &schedule.events {
                if let FaultEvent::AdoptAttacker { attacker, .. } = fault.event {
                    attackers_seen.insert(attacker.name());
                }
            }
            let report = run_schedule(&schedule, &config).expect("harness constructs");
            if let Some(violation) = &report.violation {
                if let Ok(Some(counterexample)) = find_counterexample(&schedule, &config) {
                    publish_counterexample(
                        &format!(
                            "adversary-{}-{}-seed{seed}",
                            attacker.name(),
                            condition.name()
                        ),
                        &counterexample,
                    );
                }
                panic!(
                    "adversary/{}/{} seed {seed}: {violation}",
                    attacker.name(),
                    condition.name()
                );
            }
            assert!(
                report.outcome.completed > 0,
                "adversary/{}/{} seed {seed}: no requests completed",
                attacker.name(),
                condition.name()
            );
            runs += 1;
        }
    }
    assert_eq!(runs, 300);
    // Coverage: over 60 seeds per variant the generator must have actually
    // adopted every attacker of the zoo at least once.
    assert_eq!(
        attackers_seen.len(),
        AttackerKind::ALL.len(),
        "zoo coverage gap: only {attackers_seen:?} adopted"
    );
}

#[test]
fn sharded_adversary_cells_pass_the_routing_and_atomicity_oracles() {
    // Every matrix cell once more against the two-shard fleet: the same
    // per-shard attacker chaos, with routed clients and cross-shard
    // MultiPuts, so attacker effects are also checked against the routing
    // and atomicity oracles (2 seeds per cell keeps the suite CI-sized; the
    // registered `adversary/sharded/*` scenarios cover more via sweeps).
    for (attacker, condition) in adversary_matrix() {
        let config = adversary_sharded_config(attacker, condition);
        for seed in 0..2u64 {
            let schedule = ShardedFaultSchedule::generate(seed, &config);
            let report = run_sharded_schedule(&schedule, &config).expect("harness constructs");
            if let Some(violation) = &report.violation {
                if let Ok(Some(counterexample)) = find_sharded_counterexample(&schedule, &config) {
                    publish_sharded_counterexample(
                        &format!(
                            "adversary-sharded-{}-{}-seed{seed}",
                            attacker.name(),
                            condition.name()
                        ),
                        &counterexample,
                    );
                }
                panic!(
                    "adversary/sharded/{}/{} seed {seed}: {violation}",
                    attacker.name(),
                    condition.name()
                );
            }
            assert!(report.outcome.completed > 0);
        }
    }
}

#[test]
fn each_attacker_variant_survives_a_scripted_adoption() {
    // One scripted regression per zoo variant: the initial leader (replica
    // 0 — the most damaging seat for an equivocator or reply suppressor)
    // adopts the strategy at step 2 and is recovered at step 10. The run
    // must stay violation-free, keep serving requests, and record a
    // positive compromise-to-recovery delay (the variant's degraded IDS
    // signature made the compromise *observable*, not invisible).
    for &attacker in &AttackerKind::ALL {
        let config = ScheduleConfig {
            horizon: 20,
            ..ScheduleConfig::default()
        };
        let mut events = vec![
            ScheduledFault {
                step: 2,
                event: FaultEvent::AdoptAttacker { node: 0, attacker },
            },
            ScheduledFault {
                step: 10,
                event: FaultEvent::RecoverReplica { node: 0 },
            },
        ];
        if attacker == AttackerKind::LyingDonor {
            // Force a state transfer through the lying donor's window:
            // crash another replica while the donor is active, recover it
            // (the rebuild requests state) before the donor is cleaned up.
            events.push(ScheduledFault {
                step: 4,
                event: FaultEvent::CrashReplica { node: 3 },
            });
            events.push(ScheduledFault {
                step: 7,
                event: FaultEvent::RecoverReplica { node: 3 },
            });
        }
        let schedule = FaultSchedule::scripted(9, events);
        let report = run_schedule(&schedule, &config).expect("harness constructs");
        assert!(
            report.violation.is_none(),
            "{}: {:?}",
            attacker.name(),
            report.violation
        );
        assert!(
            report.outcome.completed > 0,
            "{}: the cluster must keep serving requests",
            attacker.name()
        );
        assert!(
            report.outcome.mean_recovery_steps > 0.0,
            "{}: the adoption must be IDS-visible (compromise-to-recovery recorded)",
            attacker.name()
        );
    }
}

#[test]
fn byzantine_flip_perturbs_the_ids_observation_stream() {
    // The satellite fix: a ByzantineFlip used to mutate protocol behaviour
    // while leaving the observation stream pristine — an attack the node
    // controllers could never see. It now degrades the alert signature
    // (λ = BYZANTINE_FLIP_IDS_LAMBDA) and marks the compromise, so the
    // recovery at step 9 records a positive compromise-to-recovery delay.
    let config = ScheduleConfig {
        horizon: 20,
        ..ScheduleConfig::default()
    };
    let schedule = FaultSchedule::scripted(
        4,
        vec![
            ScheduledFault {
                step: 2,
                event: FaultEvent::ByzantineFlip {
                    node: 1,
                    mode: ByzantineMode::Arbitrary,
                },
            },
            ScheduledFault {
                step: 9,
                event: FaultEvent::RecoverReplica { node: 1 },
            },
        ],
    );
    let report = run_schedule(&schedule, &config).expect("harness constructs");
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.outcome.mean_recovery_steps > 0.0,
        "the flip must reach the IDS observation stream"
    );
}

#[test]
fn pre_gst_crash_majority_triggers_the_liveness_after_gst_oracle() {
    // The negative test of the liveness-after-GST oracle: crash 3 of 5
    // replicas at step 1 with no closers (Δ_R pushed past the horizon and
    // no system controller, so nothing revives them), under a GST schedule.
    // With only 2 of 5 alive even the commit quorum (f + 1 = 3) is
    // unreachable, so requests submitted before GST can never commit —
    // the oracle must flag it, the shrinker must converge on a still-dead
    // kernel, and the counterexample must replay from JSON.
    let config = ScheduleConfig {
        horizon: 30,
        delta_r: 100,
        gst: Some(4),
        post_gst_liveness_steps: 8,
        ..ScheduleConfig::default()
    };
    let schedule = FaultSchedule::scripted(
        0,
        (1..=3)
            .map(|node| ScheduledFault {
                step: 1,
                event: FaultEvent::CrashReplica { node },
            })
            .collect(),
    );
    let report = run_schedule(&schedule, &config).expect("harness constructs");
    let violation = report
        .violation
        .expect("a dead commit quorum must trip the liveness-after-GST oracle");
    assert_eq!(violation.kind, InvariantKind::LivenessAfterGst);

    let counterexample = find_counterexample(&schedule, &config)
        .expect("harness constructs")
        .expect("the violation must survive shrinking");
    assert_eq!(
        counterexample.violation.kind,
        InvariantKind::LivenessAfterGst
    );
    // Drop-one shrinking lands on a two-crash kernel: three live replicas
    // are exactly the commit quorum (f + 1 = 3) but short of the
    // view-change quorum (n - f + recoveries = 4), so a single pre-GST
    // message loss on the critical path wedges the round permanently —
    // the post-GST network is reliable but MinBFT does not retransmit a
    // wedged ballot. Dropping either remaining crash leaves 4 alive and
    // the run commits again, so the kernel is minimal.
    assert_eq!(
        counterexample.schedule.events.len(),
        2,
        "dropping either crash restores the view-change quorum"
    );
    assert!(counterexample
        .schedule
        .events
        .iter()
        .all(|fault| matches!(fault.event, FaultEvent::CrashReplica { .. })));
    publish_counterexample("expected-liveness-after-gst", &counterexample);

    let json = counterexample.to_json().expect("serializes");
    let restored = Counterexample::from_json(&json).expect("parses back");
    assert_eq!(restored, counterexample);
    let replayed = restored
        .replay()
        .expect("replay constructs")
        .expect("replay violates again");
    assert_eq!(replayed.kind, InvariantKind::LivenessAfterGst);
}

#[test]
fn adversary_runs_are_deterministic_in_the_seed() {
    // The replay guarantee extends to the new schedule machinery: a GST
    // configuration with attacker adoption produces byte-identical traces
    // across runs, and its schedule JSON round-trips stably.
    let config = adversary_config(AttackerKind::EquivocatingLeader, NetworkCondition::Gst);
    let schedule = FaultSchedule::generate(7, &config);
    let a = run_schedule(&schedule, &config).expect("harness constructs");
    let b = run_schedule(&schedule, &config).expect("harness constructs");
    assert_eq!(
        serde_json::to_string(&a.trace).expect("serializable"),
        serde_json::to_string(&b.trace).expect("serializable")
    );
    assert_eq!(a, b);
    let json = serde_json::to_string(&schedule).expect("serializable");
    let value = serde_json::parse_value(&json).expect("well-formed");
    assert_eq!(json, serde_json::to_string(&value).expect("re-renders"));
}

#[test]
fn pinned_stale_certificate_refill_counterexample_cannot_regress() {
    // Found by the PR-7 sharded sweep (`sharded/multiput` seed 3, Routing
    // violation "executed twice fleet-wide"): a view change re-proposed a
    // *stale* prepared certificate for a request that a fresher certificate
    // had already re-assigned to a different sequence, so the request
    // executed under both sequences. Fixed by freshest-certificate-wins
    // request-level dedup in the view-change refill; this run replays the
    // exact generated schedule that caught it.
    let config = tolerance::core::simnet::sharded_multiput_config();
    let schedule = ShardedFaultSchedule::generate(3, &config);
    let report = run_sharded_schedule(&schedule, &config).expect("harness constructs");
    assert!(
        report.violation.is_none(),
        "the stale-certificate refill bug is back: {:?}",
        report.violation
    );
    assert!(report.outcome.completed > 0);
}

#[test]
fn pinned_amnesiac_recovery_counterexample_cannot_regress() {
    // Found by the PR-7 adversary matrix sweep (`adversary/lying-donor/gst`
    // seed 19, Agreement violation "committed different digests at log
    // position 9"): replica 3 was proactively recovered, its push from the
    // freshest donor was lost to the pre-GST network, and the first
    // pull response to arrive came from a *stale* donor whose certificate
    // set had a hole at an already-committed sequence. The re-imaged
    // committer then joined a minimal view-change ballot of laggards, none
    // of whom held the committed certificate, so the new leader no-op
    // filled the sequence and re-proposed its batch under a fresh sequence
    // number — a double execution that diverged the logs. Two fixes pin
    // this shut: `recover_replica` now refuses transfers below the
    // pre-recovery frontier (`recovery_floor`), and the view-change quorum
    // grew to n - f + `parallel_recoveries` so every ballot intersects the
    // surviving certificate holders. This replays the exact generated
    // schedule that caught it.
    let config = adversary_config(AttackerKind::LyingDonor, NetworkCondition::Gst);
    let schedule = FaultSchedule::generate(19, &config);
    let report = run_schedule(&schedule, &config).expect("harness constructs");
    assert!(
        report.violation.is_none(),
        "the amnesiac-recovery bug is back: {:?}",
        report.violation
    );
    assert!(report.outcome.completed > 0);

    // The shrunk kernel of the same counterexample: no attacker event
    // survives shrinking — the bug is plain recovery-under-loss, which is
    // exactly why the matrix sweeps mix network conditions into every
    // attacker cell.
    let kernel = FaultSchedule::scripted(
        19,
        vec![
            ScheduledFault {
                step: 1,
                event: FaultEvent::ClientBurst { requests: 1 },
            },
            ScheduledFault {
                step: 8,
                event: FaultEvent::ClientBurst { requests: 1 },
            },
            ScheduledFault {
                step: 9,
                event: FaultEvent::RecoverReplica { node: 3 },
            },
            ScheduledFault {
                step: 9,
                event: FaultEvent::ClientBurst { requests: 3 },
            },
        ],
    );
    let report = run_schedule(&kernel, &config).expect("harness constructs");
    assert!(
        report.violation.is_none(),
        "the shrunk amnesiac-recovery kernel violates again: {:?}",
        report.violation
    );
}

#[test]
fn scenario_runs_surface_violations_as_invariant_errors() {
    let scenario = SimnetScenario::new(
        "simnet/injected",
        ScheduleConfig {
            horizon: 12,
            intensity: 0.0,
            inject_double_commit_at: Some(3),
            ..ScheduleConfig::default()
        },
    );
    let error = scenario
        .run(1)
        .expect_err("the injection must fail the run");
    let message = error.to_string();
    assert!(
        message.contains("invariant violation") && message.contains("agreement"),
        "unexpected error: {message}"
    );
}
