//! Acceptance tests of the deterministic fault-injection harness (simnet):
//! a bounded randomized-schedule suite over the full two-level stack, the
//! byte-identical-replay guarantee across thread counts, the
//! double-commit-detection + shrinking pipeline, and Raft under the shared
//! partition API.
//!
//! This suite doubles as the CI `simnet-smoke` job: any emitted
//! counterexample is written to `simnet-counterexamples/` and uploaded as a
//! workflow artifact.

use std::collections::BTreeSet;
use tolerance::consensus::{RaftCluster, RaftConfig};
use tolerance::core::controlplane::scenario::sim_intrusion_burst_config;
use tolerance::core::runtime::{Runner, Scenario};
use tolerance::core::simnet::{
    find_counterexample, run_schedule, Counterexample, FaultKind, FaultSchedule, InvariantKind,
    ScheduleConfig, SimnetScenario,
};
use tolerance::emulation::builtin_registry;

/// The fixed seed set of the smoke suite (the CI job runs exactly this).
fn smoke_seeds() -> Vec<u64> {
    (0..18).collect()
}

fn smoke_configs() -> Vec<(&'static str, ScheduleConfig)> {
    vec![
        (
            "light",
            ScheduleConfig {
                horizon: 40,
                intensity: 0.2,
                ..ScheduleConfig::default()
            },
        ),
        (
            "heavy",
            ScheduleConfig {
                horizon: 40,
                intensity: 0.8,
                ..ScheduleConfig::default()
            },
        ),
        (
            "full-stack",
            ScheduleConfig {
                horizon: 40,
                intensity: 0.5,
                system_controller: true,
                ..ScheduleConfig::default()
            },
        ),
        (
            // The data-plane configuration: leader batching plus an
            // aggressive checkpoint period, so recovery and view changes
            // run from *truncated* logs (state transfer from the stable
            // checkpoint, no re-execution of compacted requests) under the
            // same chaos schedules and oracles.
            "gc-batch",
            ScheduleConfig {
                horizon: 40,
                intensity: 0.5,
                checkpoint_period: 8,
                batch_size: 4,
                ..ScheduleConfig::default()
            },
        ),
        (
            // The PR-6 pipelined data plane: a watermark window above 1
            // keeps several uncommitted sequences in flight, so view
            // changes, recoveries and state transfers triggered by the
            // chaos schedule must cope with multiple concurrently proposed
            // batches (and the aggressive checkpoint period keeps those
            // interacting with compaction).
            "pipelined",
            ScheduleConfig {
                horizon: 40,
                intensity: 0.5,
                checkpoint_period: 8,
                batch_size: 4,
                pipeline_window: 4,
                ..ScheduleConfig::default()
            },
        ),
    ]
}

/// Writes a counterexample where the CI job picks it up as an artifact.
fn publish_counterexample(name: &str, counterexample: &Counterexample) {
    let dir = std::path::Path::new("simnet-counterexamples");
    if std::fs::create_dir_all(dir).is_ok() {
        let json = counterexample.to_json().expect("serializable");
        let _ = std::fs::write(dir.join(format!("{name}.json")), json);
    }
}

#[test]
fn randomized_schedules_pass_all_invariant_oracles() {
    // ≥ 50 randomized schedules (3 configs × 18 seeds = 54) through the
    // full stack: MinBFT + node controllers (+ system controller in the
    // full-stack config), with agreement/validity/recovery-bound/
    // network-accounting checked after every step and liveness at settle.
    let mut kinds: BTreeSet<FaultKind> = BTreeSet::new();
    let mut runs = 0;
    for (name, config) in smoke_configs() {
        for seed in smoke_seeds() {
            let schedule = FaultSchedule::generate(seed, &config);
            kinds.extend(schedule.kinds());
            let report = run_schedule(&schedule, &config).expect("harness constructs");
            if let Some(violation) = &report.violation {
                // Shrink and publish before failing, so CI uploads the
                // replayable counterexample.
                if let Ok(Some(counterexample)) = find_counterexample(&schedule, &config) {
                    publish_counterexample(&format!("{name}-seed{seed}"), &counterexample);
                }
                panic!("{name} seed {seed}: {violation}");
            }
            assert!(
                report.outcome.completed > 0,
                "{name} seed {seed}: no requests completed"
            );
            assert!(report.outcome.availability > 0.0);
            runs += 1;
        }
    }
    assert!(runs >= 50, "the suite must cover at least 50 schedules");
    // Coverage: the generated schedules must exercise ≥ 6 distinct fault
    // kinds (partitions, storms, crashes, Byzantine flips, intrusions,
    // churn, client bursts, ...).
    assert!(
        kinds.len() >= 6,
        "only {} fault kinds covered: {kinds:?}",
        kinds.len()
    );
}

#[test]
fn identical_seed_is_byte_identical_across_thread_counts() {
    let scenario = SimnetScenario::new(
        "simnet/replay",
        ScheduleConfig {
            horizon: 30,
            intensity: 0.6,
            ..ScheduleConfig::default()
        },
    );
    let seeds: Vec<u64> = (0..6).collect();
    let serial = Runner::serial()
        .run_seeds(&scenario, &seeds)
        .expect("serial runs");
    for workers in [2, 4, 8] {
        let parallel = Runner::with_threads(workers)
            .run_seeds(&scenario, &seeds)
            .expect("parallel runs");
        for (a, b) in serial.iter().zip(&parallel) {
            let json_a = serde_json::to_string(&a.trace).expect("serializable");
            let json_b = serde_json::to_string(&b.trace).expect("serializable");
            assert_eq!(
                json_a, json_b,
                "{workers} workers: traces must be byte-identical"
            );
        }
        assert_eq!(serial, parallel, "{workers} workers");
    }
}

#[test]
fn injected_double_commit_is_caught_shrunk_and_replayable() {
    // The deliberately injected implementation bug (test-only Byzantine
    // mode): a replica corrupts its execution while claiming to be correct.
    let config = ScheduleConfig {
        horizon: 16,
        intensity: 0.4,
        inject_double_commit_at: Some(5),
        ..ScheduleConfig::default()
    };
    let schedule = FaultSchedule::generate(11, &config);
    let counterexample = find_counterexample(&schedule, &config)
        .expect("harness constructs")
        .expect("the injected double commit must be caught");
    assert_eq!(
        counterexample.violation.kind,
        InvariantKind::Agreement,
        "the agreement oracle must catch the conflicting commit"
    );
    // Greedy shrinking keeps the injection and drops chaff: the minimal
    // schedule is no larger than the original and still replays.
    assert!(counterexample.schedule.events.len() <= schedule.events.len());
    assert!(counterexample
        .schedule
        .events
        .iter()
        .any(|e| e.event.kind() == FaultKind::InjectDoubleCommit));
    publish_counterexample("expected-double-commit", &counterexample);

    // One command to reproduce: JSON → Counterexample → replay.
    let json = counterexample.to_json().expect("serializes");
    let restored = Counterexample::from_json(&json).expect("parses back");
    assert_eq!(restored, counterexample);
    let replayed = restored
        .replay()
        .expect("replay constructs")
        .expect("replay violates again");
    assert_eq!(replayed.kind, InvariantKind::Agreement);
}

#[test]
fn registry_sweeps_simnet_scenarios_like_any_grid_axis() {
    let registry = builtin_registry();
    for name in [
        "simnet/chaos-light",
        "simnet/partition-churn",
        "simnet/attacker-campaign",
    ] {
        assert!(registry.contains(name), "missing {name}");
    }
    let run = registry
        .run("simnet/chaos-light", &Runner::with_threads(2), &[0, 1, 2])
        .expect("registry sweep passes the oracles");
    assert_eq!(run.reports.len(), 3);
    for report in &run.reports {
        assert!((0.0..=1.0).contains(&report.availability));
    }
}

#[test]
fn controlled_intrusion_sweep_passes_all_oracles_across_300_runs() {
    // The acceptance sweep of the closed-loop control plane: the same
    // ControlPlane::tick that steers the live threaded service drives the
    // simulated cluster here, under intrusion-heavy chaos schedules, with
    // agreement/validity/recovery-bound/network-accounting checked after
    // every step and liveness at settle — 300 seeds.
    let scenario = SimnetScenario::new(
        "controlled/sim-intrusion-burst",
        sim_intrusion_burst_config(),
    );
    let seeds: Vec<u64> = (0..300).collect();
    let reports = Runner::parallel()
        .run_seeds(&scenario, &seeds)
        .expect("all 300 controlled runs must pass the oracle suite");
    assert_eq!(reports.len(), 300);
    let recoveries: u64 = reports.iter().map(|r| r.outcome.recoveries).sum();
    let completed: u64 = reports.iter().map(|r| r.outcome.completed).sum();
    assert!(
        recoveries > 0,
        "the node controllers must actuate recoveries somewhere in the sweep"
    );
    assert!(completed > 0);
    for report in &reports {
        assert!(report.violation.is_none());
        assert!(report.outcome.availability > 0.0);
    }
}

#[test]
fn pipelined_chaos_sweep_passes_all_oracles_across_300_runs() {
    // The PR-6 acceptance sweep: 300 randomized chaos schedules against
    // the watermark-pipelined data plane (pipeline_window > 1, leader
    // batching, aggressive compaction), with the full oracle suite —
    // agreement/validity/recovery-bound/network-accounting after every
    // step, liveness at settle. Multiple in-flight sequences must survive
    // partitions, crashes, Byzantine flips and membership churn.
    let scenario = SimnetScenario::new(
        "simnet/pipelined-chaos",
        ScheduleConfig {
            horizon: 40,
            intensity: 0.5,
            checkpoint_period: 8,
            batch_size: 4,
            pipeline_window: 4,
            ..ScheduleConfig::default()
        },
    );
    let seeds: Vec<u64> = (0..300).collect();
    let reports = Runner::parallel()
        .run_seeds(&scenario, &seeds)
        .expect("all 300 pipelined chaos runs must pass the oracle suite");
    assert_eq!(reports.len(), 300);
    let completed: u64 = reports.iter().map(|r| r.outcome.completed).sum();
    assert!(completed > 0);
    for report in &reports {
        assert!(report.violation.is_none());
        assert!(report.outcome.availability > 0.0);
    }
}

#[test]
fn pinned_reconfiguration_split_brain_counterexample_cannot_regress() {
    // The PR-3 600-run-sweep counterexample, pinned: with n = 6 a batch
    // stream commits at one commit quorum while the other three replicas
    // lag (partitioned); an EVICT of a quorum member then shrinks n to 5,
    // where the view-change quorum (n - f = 3) no longer intersects the
    // old-configuration commit quorum — a laggard-only ballot would no-op
    // fill the committed sequences and re-assign their requests. The
    // reconfiguration state barrier (`sync_lagging_replicas`) must force
    // the laggards through a state sync before they may form ballots.
    // (Ids are mirrored vs. the original trace — committers {0,1,2},
    // laggards {3,4,5}, EVICT of 0 — the quorum-intersection shape is
    // identical.)
    use tolerance::consensus::minbft::Operation;
    use tolerance::consensus::{MinBftCluster, MinBftConfig, NetworkConfig};

    let mut cluster = MinBftCluster::new(MinBftConfig {
        initial_replicas: 6,
        network: NetworkConfig {
            latency: 0.002,
            jitter: 0.001,
            loss_rate: 0.0,
        },
        ..MinBftConfig::default()
    });
    let client = cluster.add_client();

    // Phase 1: everyone at a common frontier.
    for i in 0..4u64 {
        cluster.submit(client, Operation::Write(i + 1));
        cluster.run_until(cluster.now() + 1.0);
    }
    assert!(!cluster.has_outstanding_request(client));

    // Phase 2: partition {0,1,2} (leader side, commit quorum f+1 = 3)
    // from {3,4,5}; the quorum keeps committing, the laggards fall behind.
    cluster.partition_network(&[0, 1, 2], &[3, 4, 5]);
    for i in 0..6u64 {
        cluster.submit(client, Operation::Write(100 + i));
        cluster.run_until(cluster.now() + 1.0);
    }
    let frontier = cluster.executed_len(0).unwrap();
    let laggard = cluster.executed_len(4).unwrap();
    assert!(
        frontier >= laggard + 4,
        "the partition must open a commit gap: {frontier} vs {laggard}"
    );

    // Phase 3: EVICT a member of the old commit quorum while the laggards
    // are still behind, then heal. Without the state barrier, the ballot
    // {3,4,5} (3 = the n = 5 view-change quorum) re-assigns sequences.
    cluster.evict_replica(0);
    cluster.heal_network();
    for round in 0..12 {
        cluster.run_until(cluster.now() + 2.0);
        // The executor's straggler catch-up: recover replicas that are
        // awaiting state or lag the frontier.
        let members: Vec<_> = cluster.membership().to_vec();
        let longest = members
            .iter()
            .filter_map(|&id| cluster.executed_len(id))
            .max()
            .unwrap_or(0);
        for id in members {
            let lagging = cluster
                .executed_len(id)
                .map(|len| len + 2 < longest)
                .unwrap_or(false);
            if cluster.needs_state(id) || lagging {
                cluster.recover_replica(id);
            }
        }
        if !cluster.has_outstanding_request(client) && round > 2 {
            break;
        }
    }

    // Liveness: a probe request must complete in the new configuration.
    cluster.submit(client, Operation::Write(0xfeed));
    for _ in 0..10 {
        cluster.run_until(cluster.now() + 2.0);
        if !cluster.has_outstanding_request(client) {
            break;
        }
    }
    assert!(
        !cluster.has_outstanding_request(client),
        "the post-eviction configuration must serve requests"
    );

    // Agreement: no sequence number was ever committed with two digests
    // (the split brain re-assigned sequences 27-28 in the original trace),
    // and the healthy logs are prefix-consistent.
    let mut digests: std::collections::HashMap<u64, tolerance::consensus::crypto::Digest> =
        std::collections::HashMap::new();
    for record in cluster.commit_trace() {
        if let Some(previous) = digests.insert(record.sequence, record.digest) {
            assert_eq!(
                previous, record.digest,
                "sequence {} committed with two digests (split brain)",
                record.sequence
            );
        }
    }
    assert!(
        cluster.logs_are_consistent(),
        "logs diverged after the EVICT reconfiguration"
    );
}

#[test]
fn raft_survives_partition_and_crash_chaos() {
    // The shared partition/storm API on the crash-tolerant substrate: a
    // scripted chaos schedule against Raft, with committed-log consistency
    // as the agreement oracle.
    for seed in 0..6 {
        let mut raft = RaftCluster::new(RaftConfig {
            members: 5,
            seed,
            ..RaftConfig::default()
        });
        raft.run_until(2.0);
        assert!(raft.propose("op-1"));
        raft.run_until(3.0);

        // Partition a minority, keep proposing, heal, crash one member,
        // restart it.
        raft.partition_network(&[0, 1], &[2, 3, 4]);
        raft.run_until(5.0);
        raft.propose("op-2");
        raft.run_until(7.0);
        raft.heal_network();
        raft.run_until(9.0);
        raft.crash(2);
        raft.propose("op-3");
        raft.run_until(12.0);
        raft.restart(2);
        raft.run_until(16.0);

        assert!(
            raft.committed_logs_consistent(),
            "seed {seed}: committed logs diverged"
        );
        let leader = raft.leader().expect("a leader after healing");
        assert!(
            !raft.committed_log(leader).is_empty(),
            "seed {seed}: nothing committed"
        );
        assert!(!raft.is_crashed(2));
        assert_eq!(raft.members(), &[0, 1, 2, 3, 4]);
    }
}

#[test]
fn scenario_runs_surface_violations_as_invariant_errors() {
    let scenario = SimnetScenario::new(
        "simnet/injected",
        ScheduleConfig {
            horizon: 12,
            intensity: 0.0,
            inject_double_commit_at: Some(3),
            ..ScheduleConfig::default()
        },
    );
    let error = scenario
        .run(1)
        .expect_err("the injection must fail the run");
    let message = error.to_string();
    assert!(
        message.contains("invariant violation") && message.contains("agreement"),
        "unexpected error: {message}"
    );
}
