//! Deterministic-replay tests of the scenario runtime: the same scenario +
//! seed must produce identical results whether it runs serially, through
//! the parallel runner, or twice in a row — and the Table-7 comparison rows
//! must be byte-identical across execution modes.

use tolerance::core::runtime::{Runner, Scenario, ScenarioRegistry};
use tolerance::emulation::scenarios::{
    bursty_attacker_config, heterogeneous_nodes_config, register_config,
};
use tolerance::emulation::{builtin_registry, EmulationScenario, EvaluationGrid};

fn quick_grid() -> EvaluationGrid {
    EvaluationGrid {
        initial_nodes: vec![3, 6],
        delta_r: vec![Some(15), None],
        seeds: 3,
        horizon: 120,
        ..EvaluationGrid::default()
    }
}

#[test]
fn quick_grid_is_byte_identical_serial_vs_parallel() {
    let grid = quick_grid();
    let serial = grid.run_with(&Runner::serial()).unwrap();
    let parallel = grid.run_with(&Runner::parallel()).unwrap();
    let four_workers = grid.run_with(&Runner::with_threads(4)).unwrap();

    // Structural equality...
    assert_eq!(serial, parallel);
    assert_eq!(serial, four_workers);
    // ...and byte-identical serialized artifacts (what lands in
    // results/*.json must not depend on the execution mode).
    let serial_json = serde_json::to_string_pretty(&serial).unwrap();
    let parallel_json = serde_json::to_string_pretty(&parallel).unwrap();
    assert_eq!(serial_json, parallel_json);
}

#[test]
fn evaluation_grid_quick_runs_through_the_shared_runner() {
    // `quick()` is the configuration the experiment binary uses without
    // `--full`; the acceptance gate for the runtime refactor.
    let mut grid = EvaluationGrid::quick();
    grid.horizon = 100; // keep the replay fast; still 16 cells x 3 seeds
    let rows = grid.run_with(&Runner::with_threads(2)).unwrap();
    assert_eq!(rows.len(), grid.cells().len());
    let replay = grid.run_with(&Runner::with_threads(2)).unwrap();
    assert_eq!(
        rows, replay,
        "replaying the same grid must be deterministic"
    );
}

#[test]
fn scenario_runs_are_deterministic_in_the_seed() {
    let scenario = EmulationScenario::new(bursty_attacker_config());
    let first = scenario.run(42).unwrap();
    let second = scenario.run(42).unwrap();
    assert_eq!(first, second);
    let other_seed = scenario.run(43).unwrap();
    assert_ne!(
        first, other_seed,
        "different seeds must explore different trajectories"
    );
}

#[test]
fn registry_scenarios_replay_identically_across_execution_modes() {
    let registry = builtin_registry();
    let seeds: Vec<u64> = (0..4).collect();
    // Wall-clock scenarios (the live threaded control loop) are registered
    // as non-deterministic and carry no replay guarantee.
    for name in registry.deterministic_names() {
        let serial = registry.run(name, &Runner::serial(), &seeds).unwrap();
        let parallel = registry
            .run(name, &Runner::with_threads(3), &seeds)
            .unwrap();
        assert_eq!(serial.reports, parallel.reports, "{name}");
        assert_eq!(serial.summary, parallel.summary, "{name}");
    }
}

#[test]
fn non_paper_scenarios_are_registered_and_runnable() {
    let registry = builtin_registry();
    assert!(registry.contains("bursty-attacker"));
    assert!(registry.contains("heterogeneous-nodes"));

    let bursty = registry
        .run("bursty-attacker", &Runner::parallel(), &[0, 1])
        .unwrap();
    let heterogeneous = registry
        .run("heterogeneous-nodes", &Runner::parallel(), &[0, 1])
        .unwrap();
    let paper = registry
        .run("paper/tolerance", &Runner::parallel(), &[0, 1])
        .unwrap();

    // The novel workloads genuinely change the closed-loop dynamics.
    assert_ne!(bursty.reports, paper.reports);
    assert_ne!(heterogeneous.reports, paper.reports);
    for run in [&bursty, &heterogeneous, &paper] {
        for report in &run.reports {
            assert!((0.0..=1.0).contains(&report.availability));
            assert!(report.time_to_recovery >= 0.0);
        }
    }
}

#[test]
fn custom_configs_can_be_registered_alongside_builtins() {
    let mut registry = ScenarioRegistry::new();
    register_config(
        &mut registry,
        "custom/heterogeneous",
        heterogeneous_nodes_config(),
    );
    let run = registry
        .run("custom/heterogeneous", &Runner::serial(), &[7])
        .unwrap();
    assert_eq!(run.reports.len(), 1);
    assert!(run.label.starts_with("tolerance/"));
}
