//! Acceptance tests of the self-tuning data plane's feedback loop across
//! both service planes:
//!
//! - the retry-storm regression — under 50% reply loss an unbudgeted
//!   closed-loop client amplifies its own offered load through
//!   retransmissions, while a [`RetryBudgetConfig`] keeps the replica-side
//!   request-reception rate inside the token envelope *and* still drains
//!   every request exactly once after the network heals;
//! - the live [`AutotuneLoop`] driving the threaded service plane end to
//!   end (controller thread → [`SharedTuning`] atomics → replica batching
//!   and client concurrency);
//! - the release-only 300-seed chaos sweep of the tuned
//!   `dataplane/load-swing` scenario under the full fleet oracle suite
//!   (the CI `autotune-smoke` job; violations publish replayable
//!   counterexamples to `simnet-counterexamples/`).

use std::collections::HashMap;

use tolerance::consensus::crypto::Digest;
use tolerance::consensus::minbft::Operation;
use tolerance::consensus::threaded::snapshots_consistent;
use tolerance::consensus::{
    ClientDriver, MinBftCluster, MinBftConfig, NetworkConfig, RetryBudgetConfig, ThreadedCluster,
    ThreadedServiceConfig,
};
use tolerance::core::controlplane::autotune::{AutotuneConfig, AutotuneController, AutotuneLoop};
use tolerance::core::simnet::{
    find_sharded_counterexample, load_swing_config, run_sharded_schedule, ShardedCounterexample,
    ShardedFaultSchedule,
};

const STORM_CLIENTS: usize = 6;
const STORM_ROUNDS: u64 = 30;
const STORM_TIMEOUT: f64 = 0.25;

/// What one lossy closed-loop run produced, for the budgeted/unbudgeted
/// comparison.
struct StormOutcome {
    /// REQUEST receptions across all replicas (originals + retransmits).
    receptions: u64,
    /// Client retransmissions actually sent.
    retransmissions_sent: u64,
    /// Retransmissions denied by the budget (0 when unbudgeted).
    suppressed: u64,
    /// Requests completed across all clients.
    completed: u64,
    /// Digest of every submitted request, in submission order.
    submitted: Vec<Digest>,
    /// Final executed log of the longest replica (complete history —
    /// checkpoints are disabled).
    longest_log: Vec<Digest>,
    /// Final executed logs of every replica.
    logs: Vec<Vec<Digest>>,
}

/// Runs the same seeded storm either with or without a retry budget: 50%
/// loss while the closed-loop clients keep one request in flight each, then
/// a healed network and a drain to quiescence. Checkpoints are disabled so
/// the executed logs are the complete per-request history.
fn storm_run(budget: Option<RetryBudgetConfig>) -> StormOutcome {
    let lossy = NetworkConfig {
        latency: 0.01,
        jitter: 0.005,
        loss_rate: 0.5,
    };
    let mut cluster = MinBftCluster::new(MinBftConfig {
        initial_replicas: 4,
        network: lossy,
        request_timeout: STORM_TIMEOUT,
        checkpoint_period: 0,
        seed: 42,
        ..MinBftConfig::default()
    });
    cluster.set_retry_budget(budget);
    let clients: Vec<_> = (0..STORM_CLIENTS).map(|_| cluster.add_client()).collect();
    let mut submitted = Vec::new();
    for round in 0..STORM_ROUNDS {
        for &client in &clients {
            if !cluster.has_outstanding_request(client) {
                let request = cluster.submit(
                    client,
                    Operation::Put {
                        key: (round % 8) as u32,
                        value: round + 1,
                    },
                );
                submitted.push(request.digest());
            }
        }
        cluster.run_until((round + 1) as f64 * STORM_TIMEOUT);
    }
    // Heal the network and drain: every outstanding request must complete
    // (with a budget, suppressed clients re-earn retry tokens through the
    // trickle refill, so healing cannot strand them).
    cluster.set_network_config(NetworkConfig {
        latency: 0.01,
        jitter: 0.005,
        loss_rate: 0.0,
    });
    let mut deadline = cluster.now();
    for _ in 0..40 {
        if clients
            .iter()
            .all(|&client| !cluster.has_outstanding_request(client))
        {
            break;
        }
        deadline += 2.0;
        cluster.run_until(deadline);
    }
    assert!(
        clients
            .iter()
            .all(|&client| !cluster.has_outstanding_request(client)),
        "the storm run must drain once the network heals"
    );
    // Let the final commit round settle on every replica before reading
    // the logs (replies precede peer commits by one message delay).
    let settle = cluster.now() + 2.0;
    cluster.run_until(settle);
    let (retransmissions_sent, suppressed) = cluster.retransmission_stats();
    let logs: Vec<Vec<Digest>> = cluster
        .membership()
        .to_vec()
        .into_iter()
        .map(|replica| {
            assert_eq!(
                cluster.executed_log_start(replica),
                Some(0),
                "checkpoints are disabled, so every log must start at 0"
            );
            cluster
                .executed_log(replica)
                .expect("replica has a log")
                .to_vec()
        })
        .collect();
    let longest_log = logs
        .iter()
        .max_by_key(|log| log.len())
        .expect("at least one replica")
        .clone();
    StormOutcome {
        receptions: cluster.request_receptions(),
        retransmissions_sent,
        suppressed,
        completed: clients
            .iter()
            .map(|&client| cluster.completed_requests(client))
            .sum(),
        submitted,
        longest_log,
        logs,
    }
}

/// Asserts the exactly-once contract on a drained storm run: every
/// submitted request appears exactly once in the longest replica log, and
/// no replica executed anything twice.
fn assert_exactly_once(outcome: &StormOutcome, label: &str) {
    assert_eq!(
        outcome.completed,
        outcome.submitted.len() as u64,
        "{label}: a drained run completes exactly its submissions"
    );
    let mut counts: HashMap<Digest, usize> = HashMap::new();
    for digest in &outcome.longest_log {
        *counts.entry(*digest).or_default() += 1;
    }
    for digest in &outcome.submitted {
        assert_eq!(
            counts.get(digest).copied().unwrap_or(0),
            1,
            "{label}: a submitted request must execute exactly once \
             despite the retransmission storm"
        );
    }
    for (replica, log) in outcome.logs.iter().enumerate() {
        let mut seen: HashMap<Digest, usize> = HashMap::new();
        for digest in log {
            *seen.entry(*digest).or_default() += 1;
        }
        assert!(
            seen.values().all(|&n| n == 1),
            "{label}: replica {replica} executed a request twice"
        );
    }
}

#[test]
fn retry_budget_bounds_the_retransmission_storm_without_losing_requests() {
    let unbudgeted = storm_run(None);
    let budget = RetryBudgetConfig::default();
    let budgeted = storm_run(Some(budget));

    // The storm is real: without a budget the closed-loop clients amplify
    // their own offered load — far more retransmissions than the budget
    // envelope would ever permit, and correspondingly more replica-side
    // request receptions. (The two runs submit slightly different request
    // counts — the closed loop resubmits on completion, and completions
    // time differently — so each run is held to its *own* envelope.)
    assert_eq!(unbudgeted.suppressed, 0);
    assert!(
        unbudgeted.retransmissions_sent > 0,
        "50% loss must force retransmissions"
    );

    // With the budget installed, sent retransmissions stay inside the token
    // envelope: the initial per-client burst plus tokens earned by
    // completions and by denied attempts (the trickle refill).
    let envelope = STORM_CLIENTS as f64 * budget.burst
        + budgeted.completed as f64 * budget.ratio
        + budgeted.suppressed as f64 * budget.trickle;
    assert!(
        (budgeted.retransmissions_sent as f64) <= envelope + 1e-9,
        "budgeted retransmissions {} exceed the token envelope {envelope:.1}",
        budgeted.retransmissions_sent
    );
    let unbudgeted_envelope = STORM_CLIENTS as f64 * budget.burst
        + unbudgeted.completed as f64 * budget.ratio
        + unbudgeted.suppressed as f64 * budget.trickle;
    assert!(
        (unbudgeted.retransmissions_sent as f64) > unbudgeted_envelope,
        "the unbudgeted storm ({} retransmissions) must overflow what the \
         budget would have allowed ({unbudgeted_envelope:.1}), or the \
         budget is not binding",
        unbudgeted.retransmissions_sent
    );
    assert!(
        budgeted.receptions < unbudgeted.receptions,
        "the budget must reduce replica-side request receptions: \
         {} (budgeted) vs {} (unbudgeted)",
        budgeted.receptions,
        unbudgeted.receptions
    );
    assert!(
        budgeted.suppressed > 0,
        "the budget must actually deny some retransmissions in the storm"
    );

    // Shedding retransmissions must not shed requests: both runs drain to
    // the same exactly-once execution contract.
    assert_exactly_once(&unbudgeted, "unbudgeted");
    assert_exactly_once(&budgeted, "budgeted");
}

#[test]
fn live_autotune_loop_drives_the_threaded_plane_end_to_end() {
    // The third feedback loop on the real-thread plane: a controller
    // thread observes the shared tuning window and the transport's
    // mailbox-depth gauge, and actuates batch size, flush delay and client
    // concurrency through the same atomics the replicas and the client
    // driver read. Assertions are structural (decisions happened, knobs
    // stayed in bounds, the plane kept serving) — wall-clock throughput is
    // host-dependent and belongs to the bench.
    let config = ThreadedServiceConfig {
        replicas: 4,
        clients: 8,
        batch_size: 1,
        checkpoint_period: 0,
        duration: 0.4,
        ..ThreadedServiceConfig::default()
    };
    let tune = AutotuneConfig {
        initial_concurrency: 2,
        max_concurrency: config.clients,
        max_batch: 64,
        window_seconds: 0.02,
        ..AutotuneConfig::default()
    };
    let mut cluster = ThreadedCluster::new(&config);
    let tuning = cluster.tuning();
    let gauge = cluster.handle();
    let autotune = AutotuneLoop::spawn(
        AutotuneController::new(&tune),
        cluster.tuning(),
        move || gauge.mailbox_depth(),
    );
    let mut driver = ClientDriver::new(&mut cluster, config.clients)
        .tuned(cluster.tuning(), Some(RetryBudgetConfig::default()));
    driver.run_for(config.duration);
    assert!(driver.drain(10.0), "in-flight requests must drain");
    let decisions = autotune.stop();
    let report = driver.report();

    assert!(report.completed > 0, "the tuned plane must serve requests");
    assert_eq!(report.latencies.len() as u64, report.completed);
    assert!(
        !decisions.is_empty(),
        "the autotune loop must have ticked at least once in {}s",
        config.duration
    );
    for decision in &decisions {
        assert!(decision.batch_size >= 1);
        assert!(decision.batch_size <= tune.max_batch);
        assert!(decision.concurrency >= 1);
        assert!(decision.concurrency <= tune.max_concurrency);
        assert!(decision.batch_delay.is_finite() && decision.batch_delay >= 0.0);
    }
    // The shared atomics hold exactly the last published decision — the
    // planes never observe knobs the controller did not actuate.
    let last = decisions.last().expect("non-empty");
    assert_eq!(tuning.batch_size(), last.batch_size);
    assert_eq!(tuning.concurrency(), last.concurrency);
    assert!((tuning.batch_delay() - last.batch_delay).abs() < 1e-12);

    std::thread::sleep(std::time::Duration::from_millis(150));
    let snapshots = cluster.shutdown();
    assert!(
        snapshots_consistent(&snapshots),
        "replica logs diverged under live autotuning"
    );
}

fn publish_counterexample(name: &str, counterexample: &ShardedCounterexample) {
    let dir = std::path::Path::new("simnet-counterexamples");
    if std::fs::create_dir_all(dir).is_ok() {
        let json = counterexample.to_json().expect("serializable");
        let _ = std::fs::write(dir.join(format!("{name}.json")), json);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only autotune sweep (CI autotune-smoke job)"
)]
fn tuned_load_swing_sweep_passes_the_full_oracle_suite() {
    // The CI autotune smoke: 300 seeded chaos runs of the tuned plane
    // under the 10x diurnal swing, each checked by the full fleet oracle
    // suite (agreement/validity/recovery-bound/network accounting per
    // shard, routing, settle liveness, MultiPut atomicity). Violations
    // shrink and publish like the fleet sweep.
    let config = load_swing_config();
    for seed in 0..300u64 {
        let schedule = ShardedFaultSchedule::generate(seed, &config);
        let report = run_sharded_schedule(&schedule, &config).expect("harness constructs");
        if let Some(violation) = &report.violation {
            if let Ok(Some(counterexample)) = find_sharded_counterexample(&schedule, &config) {
                publish_counterexample(&format!("load-swing-seed{seed}"), &counterexample);
            }
            panic!("dataplane/load-swing seed {seed}: {violation}");
        }
        assert!(
            report
                .autotune
                .iter()
                .any(|decisions| !decisions.is_empty()),
            "load-swing seed {seed}: no shard ever ticked its controller"
        );
        assert!(
            report.outcome.completed > 0,
            "load-swing seed {seed}: no requests completed"
        );
    }
}
