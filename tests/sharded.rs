//! Acceptance tests of the sharded service plane: the 300-run
//! deterministic multi-shard chaos sweep under the full oracle suite
//! (including the routing oracle), byte-identical replay across thread
//! counts, the MultiPut atomicity regression/drain suite, and the live
//! sharded service smoke.
//!
//! This suite doubles as the CI `shard-smoke` job: any emitted
//! counterexample is written to `simnet-counterexamples/` and uploaded as
//! a workflow artifact.

use tolerance::consensus::minbft::{MinBftConfig, Operation};
use tolerance::consensus::sharded::{shard_seed, ShardedSimConfig, ShardedSimService};
use tolerance::consensus::NetworkConfig;
use tolerance::core::runtime::Runner;
use tolerance::core::simnet::{
    find_sharded_counterexample, run_sharded_schedule, sharded_chaos_4_config,
    sharded_fleet_controlled_config, FaultEvent, FaultSchedule, ScheduledFault,
    ShardedCounterexample, ShardedFaultSchedule, ShardedScheduleConfig, ShardedSimnetScenario,
};

/// The three fleet configurations of the sweep — the *same* configuration
/// functions the scenario registry ships (`sharded/chaos-2` via the
/// default, `sharded/chaos-4`, `sharded/fleet-controlled`), so this gate
/// always covers what registry users run.
fn sweep_configs() -> Vec<(&'static str, ShardedScheduleConfig)> {
    vec![
        ("sharded-default", ShardedScheduleConfig::default()),
        ("sharded-4", sharded_chaos_4_config()),
        (
            "sharded-fleet-controlled",
            sharded_fleet_controlled_config(),
        ),
    ]
}

fn publish_counterexample(name: &str, counterexample: &ShardedCounterexample) {
    let dir = std::path::Path::new("simnet-counterexamples");
    if std::fs::create_dir_all(dir).is_ok() {
        let json = counterexample.to_json().expect("serializable");
        let _ = std::fs::write(dir.join(format!("{name}.json")), json);
    }
}

#[test]
fn sharded_chaos_sweep_passes_all_oracles_across_300_runs() {
    // The acceptance sweep of the sharded service plane: 3 fleet
    // configurations × 100 seeds, each run checked per step by the
    // per-shard agreement/validity/recovery-bound/network-accounting
    // oracles plus the fleet-level routing oracle, with MultiPut atomicity
    // and liveness verified at settle.
    let mut runs = 0;
    let mut multi_puts = 0u64;
    let mut committed_txs = 0u64;
    for (name, config) in sweep_configs() {
        for seed in 0..100u64 {
            let schedule = ShardedFaultSchedule::generate(seed, &config);
            let report = run_sharded_schedule(&schedule, &config).expect("harness constructs");
            if let Some(violation) = &report.violation {
                if let Ok(Some(counterexample)) = find_sharded_counterexample(&schedule, &config) {
                    publish_counterexample(&format!("{name}-seed{seed}"), &counterexample);
                }
                panic!("{name} seed {seed}: {violation}");
            }
            assert!(
                report.outcome.completed > 0,
                "{name} seed {seed}: no requests completed"
            );
            multi_puts += report.multi_puts.0;
            committed_txs += report.multi_puts.1;
            runs += 1;
        }
    }
    assert_eq!(runs, 300);
    assert!(
        multi_puts > 0 && committed_txs > 0,
        "the sweep must exercise cross-shard MultiPuts ({multi_puts} launched, \
         {committed_txs} committed)"
    );
}

#[test]
fn sharded_replay_is_byte_identical_across_thread_counts() {
    let scenario = ShardedSimnetScenario::new("sharded/replay", ShardedScheduleConfig::default());
    let seeds: Vec<u64> = (0..6).collect();
    let serial = Runner::serial()
        .run_seeds(&scenario, &seeds)
        .expect("serial runs");
    for workers in [2, 4, 8] {
        let parallel = Runner::with_threads(workers)
            .run_seeds(&scenario, &seeds)
            .expect("parallel runs");
        for (a, b) in serial.iter().zip(&parallel) {
            let json_a = serde_json::to_string(&a.trace).expect("serializable");
            let json_b = serde_json::to_string(&b.trace).expect("serializable");
            assert_eq!(
                json_a, json_b,
                "{workers} workers: fleet traces must be byte-identical"
            );
        }
        assert_eq!(serial, parallel, "{workers} workers");
    }
}

fn quiet_fleet(shards: usize) -> ShardedSimService {
    ShardedSimService::new(&ShardedSimConfig {
        shards,
        cluster: MinBftConfig {
            initial_replicas: 4,
            network: NetworkConfig {
                latency: 0.002,
                jitter: 0.001,
                loss_rate: 0.0,
            },
            ..MinBftConfig::default()
        },
        clients_per_shard: 4,
    })
}

/// Two keys owned by different shards of a two-shard fleet.
fn cross_shard_keys(fleet: &ShardedSimService) -> (u32, u32) {
    let key_a = (0..).find(|&k| fleet.owner(k) == 0).unwrap();
    let key_b = (0..).find(|&k| fleet.owner(k) == 1).unwrap();
    (key_a, key_b)
}

#[test]
fn client_crash_during_reserve_round_leaves_nothing_observable() {
    // The client "crashes" after reserving only one of the two keys: no
    // commit is ever issued, so neither key may surface a value — the
    // staged write stays invisible forever.
    let mut fleet = quiet_fleet(2);
    let (key_a, key_b) = cross_shard_keys(&fleet);
    fleet
        .submit(Operation::TxReserve {
            tx: 5,
            key: key_a,
            value: 500,
        })
        .expect("free client");
    // key_b's reserve is never submitted (the crash point).
    fleet.run_until_quiet(20.0);
    assert_eq!(
        fleet.read_key(key_a),
        None,
        "half-reserved tx became visible"
    );
    assert_eq!(fleet.read_key(key_b), None);
    assert!(fleet.key_staged(5, key_a), "the reserve itself is durable");
    assert!(fleet.logs_are_consistent());
}

#[test]
fn client_crash_between_rounds_leaves_nothing_observable() {
    // All reserves are quorum-acked, the client crashes before any
    // commit: the transaction is still invisible on every key.
    let mut fleet = quiet_fleet(2);
    let (key_a, key_b) = cross_shard_keys(&fleet);
    for (key, value) in [(key_a, 600u64), (key_b, 601)] {
        fleet
            .submit(Operation::TxReserve { tx: 6, key, value })
            .expect("free client");
    }
    fleet.run_until_quiet(20.0);
    assert!(fleet.key_staged(6, key_a) && fleet.key_staged(6, key_b));
    assert_eq!(fleet.read_key(key_a), None);
    assert_eq!(fleet.read_key(key_b), None);
    assert!(fleet.logs_are_consistent());
}

#[test]
fn client_crash_mid_commit_round_is_repaired_by_roll_forward() {
    // The client commits key_a and crashes before key_b. A recovery
    // client re-drives the idempotent commit round: afterwards the write
    // is fully applied — and re-driving it again changes nothing.
    let mut fleet = quiet_fleet(2);
    let (key_a, key_b) = cross_shard_keys(&fleet);
    for (key, value) in [(key_a, 700u64), (key_b, 701)] {
        fleet
            .submit(Operation::TxReserve { tx: 7, key, value })
            .expect("free client");
    }
    fleet.run_until_quiet(20.0);
    fleet
        .submit(Operation::TxCommit { tx: 7, key: key_a })
        .expect("free client");
    fleet.run_until_quiet(40.0);
    // Crash point: key_a applied, key_b still staged.
    assert_eq!(fleet.read_key(key_a), Some(700));
    assert_eq!(fleet.read_key(key_b), None);
    // Roll-forward: any client may re-drive the full commit round.
    for key in [key_a, key_b] {
        fleet
            .submit(Operation::TxCommit { tx: 7, key })
            .expect("free client");
    }
    fleet.run_until_quiet(60.0);
    assert_eq!(fleet.read_key(key_a), Some(700));
    assert_eq!(fleet.read_key(key_b), Some(701));
    assert!(!fleet.key_staged(7, key_a) && !fleet.key_staged(7, key_b));
    // Idempotence: one more round is a no-op.
    for key in [key_a, key_b] {
        fleet
            .submit(Operation::TxCommit { tx: 7, key })
            .expect("free client");
    }
    fleet.run_until_quiet(80.0);
    assert_eq!(fleet.read_key(key_a), Some(700));
    assert_eq!(fleet.read_key(key_b), Some(701));
    assert!(fleet.logs_are_consistent());
}

#[test]
fn shard_leader_crash_mid_protocol_does_not_break_multi_put() {
    // The leader of the shard owning key_b crashes after the reserve
    // round; the shard's view change plus client retransmission ride it
    // out and the commit round still completes on both shards.
    let mut fleet = quiet_fleet(2);
    let (key_a, key_b) = cross_shard_keys(&fleet);
    for (key, value) in [(key_a, 800u64), (key_b, 801)] {
        fleet
            .submit(Operation::TxReserve { tx: 8, key, value })
            .expect("free client");
    }
    fleet.run_until_quiet(20.0);
    // Crash the view-0 leader (replica 0) of key_b's shard mid-protocol.
    let shard_b = fleet.owner(key_b);
    fleet.shard_mut(shard_b).crash_replica(0);
    for key in [key_a, key_b] {
        fleet
            .submit(Operation::TxCommit { tx: 8, key })
            .expect("free client");
    }
    // Drive past the request timeout so the survivors vote a view change.
    let now = fleet.shard(shard_b).now();
    fleet.run_until(now + 3.0);
    fleet.run_until_quiet(now + 60.0);
    assert_eq!(fleet.read_key(key_a), Some(800));
    assert_eq!(
        fleet.read_key(key_b),
        Some(801),
        "the commit must survive the leader crash via the view change"
    );
    assert!(fleet.logs_are_consistent());
}

#[test]
fn pinned_state_transfer_backlog_replay_counterexample_cannot_regress() {
    // The counterexample the routing oracle found on its very first sweep
    // (fleet seed 3, shrunk to two events by drop-one-event search): a
    // persistent loss storm makes one replica lag its shard, the client
    // moves on past the stalled request, and the laggard catches up by
    // *state transfer* — which rebuilds `seen_requests` only from the
    // per-client *last* reply. The already-executed older request still
    // parked in the laggard's `pending` backlog then survived dedup, and
    // when the JOIN's reconfiguration view change handed that replica
    // leadership, the backlog re-proposal executed the request a second
    // time at a fresh sequence number (`Put { key: 14 }` at sequences 7
    // and 12 in the original trace). The fix filters proposals by the
    // monotonic last-reply id and prunes the backlog at state-transfer
    // adoption; this pin replays the exact shrunk schedule.
    let config = ShardedScheduleConfig::default();
    let schedule = ShardedFaultSchedule {
        seed: 3,
        shards: vec![
            FaultSchedule::scripted(
                shard_seed(3, 0),
                vec![
                    ScheduledFault {
                        step: 1,
                        event: FaultEvent::LossStorm {
                            loss_rate: 0.28939207345710954,
                        },
                    },
                    ScheduledFault {
                        step: 8,
                        event: FaultEvent::AddReplica,
                    },
                ],
            ),
            FaultSchedule::scripted(shard_seed(3, 1), Vec::new()),
        ],
    };
    let report = run_sharded_schedule(&schedule, &config).expect("harness constructs");
    assert!(
        report.violation.is_none(),
        "the pinned double-execution counterexample regressed: {:?}",
        report.violation
    );
}

#[test]
fn fleet_controlled_sweep_recovers_across_shards() {
    // The end-to-end fleet-controller check: under intrusion-heavy chaos
    // in both shards, the global budget actuates recoveries somewhere in
    // every run and the oracle suite stays green (the per-tick k=1
    // priority/deferral behaviour is pinned by the controlplane::fleet
    // unit tests).
    let config = sweep_configs()
        .into_iter()
        .find(|(name, _)| *name == "sharded-fleet-controlled")
        .map(|(_, config)| config)
        .expect("config exists");
    let mut recoveries = 0u64;
    for seed in 0..20u64 {
        let schedule = ShardedFaultSchedule::generate(seed, &config);
        let report = run_sharded_schedule(&schedule, &config).expect("harness constructs");
        assert!(
            report.violation.is_none(),
            "seed {seed}: {:?}",
            report.violation
        );
        recoveries += report.outcome.recoveries;
    }
    assert!(
        recoveries > 0,
        "the fleet control plane must actuate recoveries across the sweep"
    );
}
