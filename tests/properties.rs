//! Property-based tests (proptest) on the core invariants of the workspace:
//! belief updates stay in the simplex, the node transition function stays
//! stochastic over the whole admissible parameter range, the simplex LP
//! solver returns feasible optima, metrics stay in range, threshold
//! strategies respect the BTR constraint for arbitrary belief sequences,
//! alpha-vector pruning preserves the value envelope, the exact solver
//! agrees with the Bellman recursion computed through the belief update on
//! random 3-state models, the sharded service plane's key partitioner
//! covers every key exactly once, stays stable under shard-count-preserving
//! reconfiguration and keeps the owned ranges balanced, and the fleet
//! engine's per-shard split RNG streams are pairwise non-colliding.

use proptest::prelude::*;
use tolerance::consensus::KeyPartitioner;
use tolerance::core::node_model::{NodeAction, NodeModel, NodeParameters, NodeState};
use tolerance::core::prelude::*;
use tolerance::markov::dist::{BetaBinomial, DiscreteDistribution, PoissonBinomial};
use tolerance::markov::stats::kl_divergence;
use tolerance::optim::simplex::{Comparison, LinearProgram};
use tolerance::pomdp::{
    AlphaVector, Belief, IncrementalBelief, IncrementalPruning, Pomdp, ValueFunction,
};

fn arbitrary_parameters() -> impl Strategy<Value = NodeParameters> {
    (1e-4..0.5f64, 1e-6..0.05f64, 0.01..0.2f64, 1e-4..0.4f64).prop_map(
        |(p_attack, p_crash_healthy, p_crash_compromised, p_update)| NodeParameters {
            p_attack,
            p_crash_healthy,
            // Keep assumption C satisfied: p_C2 clearly above p_C1.
            p_crash_compromised: p_crash_compromised.max(p_crash_healthy * 2.0),
            p_update: p_update.min(1.0 - p_attack - 1e-3).max(1e-4),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn node_transition_rows_are_stochastic(parameters in arbitrary_parameters()) {
        let model = NodeModel::new_unchecked(parameters, ObservationModel::paper_default());
        let states = [NodeState::Healthy, NodeState::Compromised, NodeState::Crashed];
        for &state in &states {
            for &action in &[NodeAction::Wait, NodeAction::Recover] {
                let total: f64 = states
                    .iter()
                    .map(|&next| model.transition_probability(state, action, next))
                    .sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                for &next in &states {
                    let p = model.transition_probability(state, action, next);
                    prop_assert!((0.0..=1.0).contains(&p));
                }
            }
        }
    }

    #[test]
    fn belief_update_stays_in_unit_interval(
        parameters in arbitrary_parameters(),
        belief in 0.0..1.0f64,
        alerts in proptest::collection::vec(0u64..11, 1..30),
    ) {
        let model = NodeModel::new_unchecked(parameters, ObservationModel::paper_default());
        let mut current = belief;
        for (index, &observation) in alerts.iter().enumerate() {
            let action = if index % 7 == 3 { NodeAction::Recover } else { NodeAction::Wait };
            current = model.belief_update(current, action, observation);
            prop_assert!((0.0..=1.0).contains(&current), "belief {current} escaped [0, 1]");
            prop_assert!(current.is_finite());
        }
    }

    #[test]
    fn pomdp_belief_update_preserves_the_probability_simplex(
        weights in proptest::collection::vec(0.05..1.0f64, 3..6),
        stickiness in 0.3..0.95f64,
        signal in 0.05..0.9f64,
        observations in proptest::collection::vec(0usize..2, 1..12),
    ) {
        // A randomized n-state chain with a 2-symbol observation channel.
        let n = weights.len();
        let transition: Vec<Vec<f64>> = (0..n)
            .map(|s| {
                (0..n)
                    .map(|t| {
                        if s == t {
                            stickiness
                        } else {
                            (1.0 - stickiness) / (n - 1) as f64
                        }
                    })
                    .collect()
            })
            .collect();
        let observation: Vec<Vec<f64>> = (0..n)
            .map(|s| {
                let p = (signal + s as f64 * 0.08).min(0.95);
                vec![p, 1.0 - p]
            })
            .collect();
        let cost = vec![vec![0.0]; n];
        let model = Pomdp::new(
            vec![transition],
            observation,
            cost,
            0.9,
        ).unwrap();
        let total: f64 = weights.iter().sum();
        let mut belief = Belief::new(weights.iter().map(|w| w / total).collect()).unwrap();
        for &o in &observations {
            belief = belief.update(&model, 0, o).unwrap();
            // Simplex preservation: non-negative entries summing to one.
            let sum: f64 = belief.as_slice().iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
            for &p in belief.as_slice() {
                prop_assert!((0.0..=1.0 + 1e-12).contains(&p), "entry {p}");
                prop_assert!(p.is_finite());
            }
        }
    }

    #[test]
    fn pomdp_belief_update_is_invariant_to_likelihood_rescaling(
        prior_weights in proptest::collection::vec(0.05..1.0f64, 2..5),
        likelihoods in proptest::collection::vec(0.05..0.45f64, 2..5),
        scale in 0.2..2.0f64,
    ) {
        // Two models share the transition kernel; in the second, the
        // likelihood of observation 0 is rescaled by the same factor in
        // every state (observation 1 absorbs the remainder). Bayes'
        // posterior after observing 0 only depends on likelihood *ratios*,
        // so both models must produce the same posterior.
        let n = prior_weights.len().min(likelihoods.len());
        let prior_weights = &prior_weights[..n];
        let likelihoods = &likelihoods[..n];
        let transition: Vec<Vec<f64>> = (0..n)
            .map(|s| (0..n).map(|t| if s == t { 0.7 } else { 0.3 / (n - 1) as f64 }).collect())
            .collect();
        let base: Vec<Vec<f64>> = likelihoods.iter().map(|&z| vec![z, 1.0 - z]).collect();
        let rescaled: Vec<Vec<f64>> = likelihoods
            .iter()
            .map(|&z| {
                let scaled = (z * scale).min(0.99);
                vec![scaled, 1.0 - scaled]
            })
            .collect();
        // Only exact common rescaling preserves the ratios: clamp must not
        // have engaged for any state.
        let exact = likelihoods.iter().all(|&z| z * scale < 0.99);
        if !exact {
            return Ok(());
        }
        let cost = vec![vec![0.0]; n];
        let model_a =
            Pomdp::new(vec![transition.clone()], base, cost.clone(), 0.9).unwrap();
        let model_b = Pomdp::new(vec![transition], rescaled, cost, 0.9).unwrap();
        let total: f64 = prior_weights.iter().sum();
        let prior = Belief::new(prior_weights.iter().map(|w| w / total).collect()).unwrap();
        let posterior_a = prior.update(&model_a, 0, 0).unwrap();
        let posterior_b = prior.update(&model_b, 0, 0).unwrap();
        for (a, b) in posterior_a.as_slice().iter().zip(posterior_b.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9, "posteriors diverge: {a} vs {b}");
        }
        // The normalizers differ by exactly the scale factor.
        let z_a = prior.observation_probability(&model_a, 0, 0).unwrap();
        let z_b = prior.observation_probability(&model_b, 0, 0).unwrap();
        prop_assert!((z_b - scale * z_a).abs() < 1e-9);
    }

    #[test]
    fn threshold_strategy_respects_btr_constraint(
        thresholds in proptest::collection::vec(0.0..=1.0f64, 1..8),
        delta_r in 2u32..20,
        belief in 0.0..1.0f64,
    ) {
        let strategy = ThresholdStrategy::new(thresholds, Some(delta_r)).unwrap();
        // Regardless of the belief, the step just before the period boundary
        // must recover (the BTR constraint of Eq. 6b).
        prop_assert_eq!(strategy.decide(belief, delta_r - 1), NodeAction::Recover);
        // And a belief of 1 always recovers.
        prop_assert_eq!(strategy.decide(1.0, 0), NodeAction::Recover);
    }

    #[test]
    fn beta_binomial_is_a_distribution(n in 1u64..40, alpha in 0.1..5.0f64, beta in 0.1..5.0f64) {
        let dist = BetaBinomial::new(n, alpha, beta).unwrap();
        let total: f64 = (0..=n).map(|k| dist.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        let mean_from_pmf: f64 = (0..=n).map(|k| k as f64 * dist.pmf(k)).sum();
        prop_assert!((mean_from_pmf - dist.mean()).abs() < 1e-6);
    }

    #[test]
    fn poisson_binomial_matches_mean_and_support(
        probabilities in proptest::collection::vec(0.0..=1.0f64, 1..12)
    ) {
        let dist = PoissonBinomial::new(probabilities.clone()).unwrap();
        let n = probabilities.len() as u64;
        let total: f64 = (0..=n).map(|k| dist.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        let mean_from_pmf: f64 = (0..=n).map(|k| k as f64 * dist.pmf(k)).sum();
        prop_assert!((mean_from_pmf - dist.mean()).abs() < 1e-8);
        prop_assert_eq!(dist.pmf(n + 1), 0.0);
    }

    #[test]
    fn kl_divergence_is_nonnegative(
        p_weights in proptest::collection::vec(0.01..1.0f64, 2..10),
    ) {
        let total_p: f64 = p_weights.iter().sum();
        let p: Vec<f64> = p_weights.iter().map(|w| w / total_p).collect();
        // q is a shifted copy of p (still positive everywhere).
        let mut q_weights = p_weights.clone();
        q_weights.rotate_left(1);
        let total_q: f64 = q_weights.iter().sum();
        let q: Vec<f64> = q_weights.iter().map(|w| w / total_q).collect();
        let divergence = kl_divergence(&p, &q).unwrap();
        prop_assert!(divergence >= -1e-12);
        prop_assert!(kl_divergence(&p, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn lp_solutions_are_feasible(
        capacities in proptest::collection::vec(0.5..5.0f64, 2..6),
    ) {
        // minimize sum(x) subject to x_i <= capacity_i and sum(x) >= half the
        // total capacity. The solver's answer must satisfy every constraint.
        let n = capacities.len();
        let target: f64 = capacities.iter().sum::<f64>() / 2.0;
        let mut lp = LinearProgram::new(n, vec![1.0; n]).unwrap();
        for (i, &capacity) in capacities.iter().enumerate() {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            lp.add_constraint(row, Comparison::LessEqual, capacity).unwrap();
        }
        lp.add_constraint(vec![1.0; n], Comparison::GreaterEqual, target).unwrap();
        let solution = lp.solve().unwrap();
        let total: f64 = solution.values.iter().sum();
        prop_assert!(total >= target - 1e-6);
        prop_assert!((total - target).abs() < 1e-6, "optimum should be tight at the bound");
        for (value, &capacity) in solution.values.iter().zip(&capacities) {
            prop_assert!(*value >= -1e-9);
            prop_assert!(*value <= capacity + 1e-6);
        }
    }

    #[test]
    fn alpha_pruning_preserves_the_lower_envelope(
        raw_vectors in proptest::collection::vec(
            proptest::collection::vec(0.0..5.0f64, 3..4), 2..12),
        probes in proptest::collection::vec(0.01..1.0f64, 4..10),
    ) {
        // Value monotonicity under pruning: pointwise and LP pruning may
        // only remove vectors that never achieve the minimum, so the
        // envelope value at every belief is unchanged (the pruned set is
        // never *worse*, i.e. never larger, and never *wrong*, i.e. never
        // smaller than the original minimum).
        let vectors: Vec<AlphaVector> = raw_vectors
            .iter()
            .enumerate()
            .map(|(action, values)| AlphaVector::new(values.clone(), action))
            .collect();
        let original = ValueFunction::new(vectors.clone());
        let beliefs: Vec<Vec<f64>> = probes
            .chunks_exact(2)
            .map(|pair| {
                let total = pair[0] + pair[1] + 0.5;
                vec![pair[0] / total, pair[1] / total, 0.5 / total]
            })
            .collect();

        let mut pointwise = original.clone();
        pointwise.prune_pointwise(1e-9);
        prop_assert!(pointwise.len() <= original.len());
        prop_assert!(!pointwise.is_empty());

        let mut exact = original.clone();
        exact.prune_lp(1e-9).unwrap();
        prop_assert!(exact.len() <= pointwise.len() + raw_vectors.len());
        prop_assert!(!exact.is_empty());

        for belief in &beliefs {
            let v0 = original.evaluate(belief);
            prop_assert!((pointwise.evaluate(belief) - v0).abs() < 1e-7,
                "pointwise pruning changed the envelope at {belief:?}");
            prop_assert!((exact.evaluate(belief) - v0).abs() < 1e-6,
                "LP pruning changed the envelope at {belief:?}");
        }
    }

    #[test]
    fn solver_backups_satisfy_the_bellman_recursion_on_random_3_state_models(
        transition_rows in proptest::collection::vec(
            proptest::collection::vec(0.05..1.0f64, 3..4), 6..7),
        observation_rows in proptest::collection::vec(
            proptest::collection::vec(0.05..1.0f64, 2..3), 3..4),
        costs in proptest::collection::vec(0.0..3.0f64, 6..7),
        discount in 0.5..0.95f64,
        probe in proptest::collection::vec(0.05..1.0f64, 3..4),
    ) {
        // Belief-update/solver consistency: one exact dynamic-programming
        // backup of the incremental-pruning solver must equal the Bellman
        // operator computed independently through `Belief::update` and
        // `observation_probability`:
        //   V_{k+1}(b) = min_a [ b·c_a + γ Σ_o Pr(o | b, a) V_k(τ(b, a, o)) ]
        let normalize = |row: &Vec<f64>| -> Vec<f64> {
            let total: f64 = row.iter().sum();
            row.iter().map(|v| v / total).collect()
        };
        let transition: Vec<Vec<Vec<f64>>> = (0..2)
            .map(|a| (0..3).map(|s| normalize(&transition_rows[a * 3 + s])).collect())
            .collect();
        let observation: Vec<Vec<f64>> =
            observation_rows.iter().map(normalize).collect();
        let cost: Vec<Vec<f64>> = (0..3)
            .map(|s| (0..2).map(|a| costs[s * 2 + a]).collect())
            .collect();
        let model = Pomdp::new(transition, observation, cost, discount).unwrap();
        let solver = IncrementalPruning::default();
        let v1 = solver.solve_finite_horizon(&model, 1).unwrap();
        let v2 = solver.solve_finite_horizon(&model, 2).unwrap();

        let total: f64 = probe.iter().sum();
        let belief = Belief::new(probe.iter().map(|w| w / total).collect()).unwrap();
        let mut expected = f64::INFINITY;
        for action in 0..2 {
            let immediate: f64 = (0..3)
                .map(|s| belief.probability(s) * model.cost(s, action))
                .sum();
            let mut continuation = 0.0;
            for obs in 0..2 {
                let p = belief.observation_probability(&model, action, obs).unwrap();
                if p > 1e-12 {
                    let next = belief.update(&model, action, obs).unwrap();
                    continuation += p * v1.evaluate(next.as_slice());
                }
            }
            expected = expected.min(immediate + discount * continuation);
        }
        let computed = v2.evaluate(belief.as_slice());
        prop_assert!((computed - expected).abs() < 1e-6,
            "backup value {computed} disagrees with the Bellman recursion {expected}");
        // One-step values are the expected immediate cost of the best action.
        let direct: f64 = (0..2)
            .map(|a| (0..3).map(|s| belief.probability(s) * model.cost(s, a)).sum::<f64>())
            .fold(f64::INFINITY, f64::min);
        prop_assert!((v1.evaluate(belief.as_slice()) - direct).abs() < 1e-8);
    }

    #[test]
    fn incremental_belief_matches_full_updates_on_random_3_state_models(
        transition_rows in proptest::collection::vec(
            proptest::collection::vec(0.05..1.0f64, 3..4), 3..4),
        observation_rows in proptest::collection::vec(
            proptest::collection::vec(0.05..1.0f64, 2..3), 3..4),
        observations in proptest::collection::vec(0usize..2, 1..15),
    ) {
        // The O(|S|)-per-event incremental tracker must agree with the
        // validated full update for arbitrary models and event sequences.
        let normalize = |row: &Vec<f64>| -> Vec<f64> {
            let total: f64 = row.iter().sum();
            row.iter().map(|v| v / total).collect()
        };
        let model = Pomdp::new(
            vec![transition_rows.iter().map(normalize).collect()],
            observation_rows.iter().map(normalize).collect(),
            vec![vec![0.0]; 3],
            0.9,
        ).unwrap();
        let mut reference = Belief::uniform(3);
        let mut tracker = IncrementalBelief::new(&model, reference.clone()).unwrap();
        for &obs in &observations {
            reference = reference.update(&model, 0, obs).unwrap();
            tracker.observe(0, obs).unwrap();
            for s in 0..3 {
                prop_assert!((tracker.probability(s) - reference.probability(s)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn metrics_stay_in_valid_ranges(
        events in proptest::collection::vec((0usize..6, 0usize..3), 1..100),
        delays in proptest::collection::vec(0u64..500, 0..20),
    ) {
        let mut metrics = EvaluationMetrics::new();
        for (failed, recoveries) in &events {
            metrics.record_step(*failed, 2, *recoveries);
        }
        for delay in &delays {
            metrics.record_recovery_delay(*delay);
        }
        let report = metrics.report();
        prop_assert!((0.0..=1.0).contains(&report.availability));
        prop_assert!((0.0..=1.0).contains(&report.recovery_frequency));
        prop_assert!(report.time_to_recovery >= 0.0);
        prop_assert_eq!(report.steps, events.len() as u64);
    }

    #[test]
    fn partitioner_owns_every_key_exactly_once(
        shards in 1usize..12,
        keys in proptest::collection::vec(0u32..u32::MAX, 1..200),
    ) {
        // Total coverage: every key maps to exactly one shard in range,
        // and the mapping is a pure function of (key, shard count).
        let partitioner = KeyPartitioner::new(shards);
        for &key in &keys {
            let owner = partitioner.owner(key);
            prop_assert!(owner < shards, "key {key} owned by out-of-range shard {owner}");
            prop_assert_eq!(owner, partitioner.owner(key));
        }
    }

    #[test]
    fn partitioner_is_stable_under_shard_count_preserving_reconfiguration(
        shards in 1usize..12,
        keys in proptest::collection::vec(0u32..u32::MAX, 1..200),
    ) {
        // Routing depends only on the shard count: JOIN/EVICT/recovery
        // inside a shard (modelled by `reconfigured()`) never remaps keys.
        let before = KeyPartitioner::new(shards);
        let after = before.reconfigured();
        for &key in &keys {
            prop_assert_eq!(before.owner(key), after.owner(key));
        }
    }

    #[test]
    fn partitioner_assignment_is_balanced(shards in 1usize..64) {
        // Balance: the owned hash ranges are contiguous, cover the whole
        // 2^64 space, and differ in size by at most one point — so the
        // max/min owned-range ratio is bounded (well under 2 for any
        // realistic shard count).
        let partitioner = KeyPartitioner::new(shards);
        let ranges: Vec<u128> = (0..shards).map(|s| partitioner.owned_range(s)).collect();
        let total: u128 = ranges.iter().sum();
        prop_assert_eq!(total, 1u128 << 64);
        let min = *ranges.iter().min().unwrap();
        let max = *ranges.iter().max().unwrap();
        prop_assert!(max - min <= 1, "ranges differ by {} points", max - min);
        prop_assert!(max as f64 / min as f64 <= 1.0 + 1e-15);
    }
}

// ---------------------------------------------------------------------------
// Wire-codec round trips: every `Message`/`ControlMessage` variant survives
// encode → decode byte-identically, including large batches and state
// transfers (PR-6 satellite).
// ---------------------------------------------------------------------------

mod wire_roundtrip {
    use proptest::prelude::*;
    use tolerance::consensus::minbft::{
        ByzantineMode, ControlMessage, Message, Operation, Request,
    };
    use tolerance::consensus::wire::{
        decode_frame_body, decode_message, encode_frame, encode_message, frame_body_len,
        FRAME_HEADER_LEN,
    };
    use tolerance::consensus::NodeId;

    /// A tiny deterministic value stream (splitmix64) so one `u64` seed
    /// expands into arbitrarily many field values.
    struct Stream(u64);

    impl Stream {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn id(&mut self) -> NodeId {
            (self.next() % 64) as NodeId
        }

        fn digest(&mut self) -> tolerance::consensus::crypto::Digest {
            tolerance::consensus::crypto::Digest(self.next())
        }

        fn ui(&mut self) -> tolerance::consensus::usig::UniqueIdentifier {
            tolerance::consensus::usig::UniqueIdentifier {
                replica: self.id(),
                counter: self.next(),
                signature: tolerance::consensus::crypto::Signature {
                    signer: self.id(),
                    tag: self.next(),
                },
            }
        }

        fn operation(&mut self) -> Operation {
            match self.next() % 7 {
                0 => Operation::Read,
                1 => Operation::Write(self.next()),
                2 => Operation::Put {
                    key: self.next() as u32,
                    value: self.next(),
                },
                3 => Operation::Get {
                    key: self.next() as u32,
                },
                4 => Operation::TxReserve {
                    tx: self.next(),
                    key: self.next() as u32,
                    value: self.next(),
                },
                5 => Operation::TxCommit {
                    tx: self.next(),
                    key: self.next() as u32,
                },
                _ => Operation::TxAbort {
                    tx: self.next(),
                    key: self.next() as u32,
                },
            }
        }

        fn request(&mut self) -> Request {
            Request {
                client: self.id(),
                id: self.next(),
                operation: self.operation(),
            }
        }

        fn batch(&mut self, len: usize) -> Vec<Request> {
            (0..len).map(|_| self.request()).collect()
        }
    }

    /// Builds one message of the selected variant; `size` scales the
    /// variable-length payloads (batches, transferred state) so large
    /// instances are exercised too.
    fn build_message(variant: usize, seed: u64, size: usize) -> Message {
        let mut s = Stream(seed);
        match variant {
            0 => Message::Request(s.request()),
            1 => Message::Prepare {
                view: s.next(),
                sequence: s.next(),
                requests: s.batch(size),
                ui: s.ui(),
            },
            2 => Message::Commit {
                view: s.next(),
                sequence: s.next(),
                batch_digest: s.digest(),
                ui: s.ui(),
            },
            3 => Message::Reply {
                request_id: s.next(),
                value: s.next(),
                sequence: s.next(),
            },
            4 => Message::Checkpoint {
                sequence: s.next(),
                log_len: s.next(),
                state_digest: s.digest(),
            },
            5 => Message::ViewChange {
                epoch: s.next(),
                new_view: s.next(),
                high_sequence: s.next(),
                stable_sequence: s.next(),
                prepared: (0..size.min(16))
                    .map(|_| (s.next(), s.next(), s.batch(size / 4)))
                    .collect(),
            },
            6 => Message::NewView {
                epoch: s.next(),
                view: s.next(),
                membership: (0..1 + size % 13).map(|_| s.id()).collect(),
                next_sequence: s.next(),
            },
            7 => Message::StateRequest { epoch: s.next() },
            8 => Message::StateTransfer {
                epoch: s.next(),
                value: s.next(),
                kv: (0..size).map(|_| (s.next() as u32, s.next())).collect(),
                staged: (0..size / 2)
                    .map(|_| (s.next(), s.next() as u32, s.next()))
                    .collect(),
                log_start: s.next(),
                last_executed: s.next(),
                log_chain: s.digest(),
                stable_sequence: s.next(),
                executed: (0..size).map(|_| s.digest()).collect(),
                view: s.next(),
                membership: (0..1 + size % 9).map(|_| s.id()).collect(),
                replies: (0..size.min(32))
                    .map(|_| (s.id(), s.next(), s.next(), s.next()))
                    .collect(),
                prepared: (0..size.min(8))
                    .map(|_| (s.next(), s.next(), s.batch(size / 8)))
                    .collect(),
                chain_base: s.digest(),
                ui_high: (0..size.min(7)).map(|_| (s.id(), s.next())).collect(),
            },
            9 => Message::UiResendRequest {
                from_counter: s.next(),
            },
            _ => Message::Control(match seed % 3 {
                0 => ControlMessage::Recover,
                1 => ControlMessage::Reconfigure {
                    epoch: s.next(),
                    membership: (0..1 + size % 11).map(|_| s.id()).collect(),
                },
                _ => ControlMessage::Compromise {
                    mode: match seed % 3 {
                        0 => ByzantineMode::Correct,
                        1 => ByzantineMode::Silent,
                        _ => ByzantineMode::Arbitrary,
                    },
                },
            }),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn every_message_variant_round_trips_byte_identically(
            variant in 0usize..11,
            seed in 0u64..u64::MAX,
            size in 0usize..48,
        ) {
            let message = build_message(variant, seed, size);
            let bytes = encode_message(&message);
            let decoded = decode_message(&bytes).expect("well-formed encoding");
            prop_assert_eq!(&decoded, &message);
            // Byte-identical re-encoding: the codec is canonical.
            prop_assert_eq!(encode_message(&decoded), bytes);
        }

        #[test]
        fn large_batches_and_state_transfers_round_trip(
            seed in 0u64..u64::MAX,
            size in 200usize..500,
        ) {
            // The two variants with unbounded payloads, at batch sizes far
            // beyond what the protocol defaults produce.
            for variant in [1usize, 8] {
                let message = build_message(variant, seed, size);
                let bytes = encode_message(&message);
                let decoded = decode_message(&bytes).expect("well-formed encoding");
                prop_assert_eq!(&decoded, &message);
                prop_assert_eq!(encode_message(&decoded), bytes);
            }
        }

        #[test]
        fn frames_round_trip_with_headers(
            variant in 0usize..10,
            seed in 0u64..u64::MAX,
            size in 0usize..32,
            from in 0u32..100_000,
            to in 0u32..100_000,
        ) {
            let message = build_message(variant, seed, size);
            let frame = encode_frame(from, to, &message);
            let mut prefix = [0u8; 4];
            prefix.copy_from_slice(&frame[..4]);
            let body_len = frame_body_len(prefix).expect("valid prefix");
            prop_assert_eq!(body_len, frame.len() - 4);
            prop_assert_eq!(frame.len() >= FRAME_HEADER_LEN, true);
            let (decoded_from, decoded_to, decoded) =
                decode_frame_body(&frame[4..]).expect("well-formed frame");
            prop_assert_eq!(decoded_from, from);
            prop_assert_eq!(decoded_to, to);
            prop_assert_eq!(decoded, message);
        }

        #[test]
        fn truncated_encodings_never_panic(
            variant in 0usize..10,
            seed in 0u64..u64::MAX,
            size in 0usize..24,
            cut in 0.0..1.0f64,
        ) {
            // Any proper prefix of a valid encoding errors cleanly.
            let bytes = encode_message(&build_message(variant, seed, size));
            let cut_at = ((bytes.len() as f64) * cut) as usize;
            if cut_at < bytes.len() {
                prop_assert!(decode_message(&bytes[..cut_at]).is_err());
            }
        }

        #[test]
        fn corrupted_encodings_never_panic(
            variant in 0usize..10,
            seed in 0u64..u64::MAX,
            size in 0usize..24,
            position in 0.0..1.0f64,
            flip in 1u8..=255,
        ) {
            // Single-byte corruption anywhere: decode may fail or return a
            // different well-formed message — it must never panic, and a
            // successful decode must re-encode canonically.
            let mut bytes = encode_message(&build_message(variant, seed, size));
            let index = ((bytes.len() as f64) * position) as usize % bytes.len().max(1);
            if !bytes.is_empty() {
                bytes[index] ^= flip;
                if let Ok(decoded) = decode_message(&bytes) {
                    let reencoded = encode_message(&decoded);
                    prop_assert!(decode_message(&reencoded).is_ok());
                }
            }
        }
    }
}

mod adversary_usig {
    //! USIG monotonicity under a protocol-aware equivocating leader: the
    //! trusted counter is exactly what turns equivocation from a safety
    //! attack into a liveness nuisance, so these properties drive the
    //! view-0 leader with [`AttackerKind::EquivocatingLeader`] and check
    //! the trusted-component guarantees on every replica afterwards.

    use proptest::prelude::*;
    use std::collections::HashMap;
    use tolerance::consensus::crypto::Digest;
    use tolerance::consensus::minbft::Operation;
    use tolerance::consensus::{AttackerKind, MinBftCluster, MinBftConfig, NetworkConfig, NodeId};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn usig_counters_stay_monotone_under_an_equivocating_leader(
            seed in 0u64..1_000_000,
            requests in 1usize..10,
        ) {
            let mut cluster = MinBftCluster::new(MinBftConfig {
                initial_replicas: 5,
                seed,
                network: NetworkConfig {
                    latency: 0.002,
                    jitter: 0.001,
                    loss_rate: 0.0,
                },
                ..MinBftConfig::default()
            });
            let client = cluster.add_client();
            cluster.set_attacker(0, Some(AttackerKind::EquivocatingLeader));
            for i in 0..requests {
                if cluster.has_outstanding_request(client) {
                    break;
                }
                cluster.submit(client, Operation::Write(i as u64 + 1));
                cluster.run_until_quiet(cluster.now() + 20.0);
            }

            let members: Vec<NodeId> = cluster.membership().to_vec();
            // FIFO cursors never outrun the sender's trusted counter: a
            // counter is assigned once by the sender's USIG, so no receiver
            // can have consumed more than the sender ever signed — not even
            // from the attacker, whose equivocation spends *distinct*
            // counters on the conflicting messages.
            for &receiver in &members {
                for &sender in &members {
                    if sender == receiver {
                        continue;
                    }
                    let signed = cluster.usig_last_counter(sender).unwrap_or(0);
                    let consumed = cluster.ui_cursor(receiver, sender);
                    prop_assert!(
                        consumed <= signed,
                        "replica {receiver} consumed counter {consumed} from \
                         {sender}, which only signed up to {signed}"
                    );
                }
            }

            // Honest replicas never bind one (view, sequence) to two
            // digests: the FIFO-consecutive acceptance of the counter
            // stream forces every honest replica onto the same one of the
            // attacker's conflicting PREPAREs.
            let mut bound: HashMap<(u64, u64), (NodeId, Digest)> = HashMap::new();
            for &replica in members.iter().filter(|&&id| id != 0) {
                for (sequence, view, digest) in cluster.prepared_entries(replica) {
                    match bound.get(&(view, sequence)) {
                        Some(&(other, previous)) => prop_assert!(
                            previous == digest,
                            "replicas {other} and {replica} prepared different \
                             digests at (view {view}, seq {sequence})"
                        ),
                        None => {
                            bound.insert((view, sequence), (replica, digest));
                        }
                    }
                }
            }

            // One digest per committed sequence, fleet-wide.
            let mut committed: HashMap<u64, Digest> = HashMap::new();
            for record in cluster.commit_trace() {
                match committed.get(&record.sequence) {
                    Some(&previous) => prop_assert!(
                        previous == record.digest,
                        "sequence {} committed with two digests",
                        record.sequence
                    ),
                    None => {
                        committed.insert(record.sequence, record.digest);
                    }
                }
            }
            prop_assert!(cluster.logs_are_consistent());
        }
    }
}

mod autotune_metrics {
    //! The windowed-metrics primitives feeding the data-plane autotune
    //! loop (PR-9 satellite): quantiles behave like quantiles, window
    //! rotation drops exactly the expired buckets, and histogram merging
    //! is recording the union.

    use proptest::prelude::*;
    use tolerance::consensus::metrics::{LatencyHistogram, WindowedCounter};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn histogram_quantiles_are_monotone_and_bounded_by_the_max(
            latencies in proptest::collection::vec(1e-7..10.0f64, 1..200),
            qs in proptest::collection::vec(0.0..=1.0f64, 2..8),
        ) {
            let mut histogram = LatencyHistogram::new();
            let mut max = 0.0f64;
            for &latency in &latencies {
                histogram.record(latency);
                max = max.max(latency);
            }
            prop_assert_eq!(histogram.count(), latencies.len() as u64);
            let mut sorted = qs.clone();
            sorted.sort_by(f64::total_cmp);
            let values: Vec<f64> = sorted.iter().map(|&q| histogram.quantile(q)).collect();
            for pair in values.windows(2) {
                prop_assert!(
                    pair[0] <= pair[1] + 1e-12,
                    "quantile not monotone: {} then {}",
                    pair[0],
                    pair[1]
                );
            }
            for &value in &values {
                prop_assert!(
                    value <= max + 1e-12,
                    "quantile {value} exceeds recorded max {max}"
                );
            }
            // q = 1.0 is exactly the maximum (the side-channel clamp).
            prop_assert!((histogram.quantile(1.0) - max).abs() < 1e-12);
        }

        #[test]
        fn window_rotation_drops_exactly_the_expired_buckets(
            span in 1u64..8,
            records in proptest::collection::vec((0u64..32, 1u64..100), 1..60),
        ) {
            let mut counter = WindowedCounter::new(span);
            // Reference: the journal of *accepted* records. The counter
            // ignores records older than the newest window it has seen
            // (late data must not resurrect an expired bucket); everything
            // else is accepted, and intermediate rotations only ever drop
            // buckets the final rotation would drop too (the expiry
            // threshold is monotone in the window index).
            let mut journal: Vec<(u64, u64)> = Vec::new();
            let mut newest = 0u64;
            for &(window, count) in &records {
                counter.record(window, count);
                if window >= newest {
                    newest = window;
                    journal.push((window, count));
                }
            }
            counter.rotate(newest);
            let oldest_live = newest.saturating_sub(span - 1);
            let expected: u64 = journal
                .iter()
                .filter(|(window, _)| *window >= oldest_live)
                .map(|(_, count)| count)
                .sum();
            prop_assert!(
                counter.total() == expected,
                "rotation to window {newest} with span {span} kept the wrong \
                 buckets: total {} expected {expected}",
                counter.total()
            );
            for (window, _) in counter.live() {
                prop_assert!(window >= oldest_live, "expired window {window} survived");
            }
        }

        #[test]
        fn merging_two_histograms_equals_recording_the_union(
            left in proptest::collection::vec(1e-7..5.0f64, 0..100),
            right in proptest::collection::vec(1e-7..5.0f64, 0..100),
        ) {
            let mut a = LatencyHistogram::new();
            for &latency in &left {
                a.record(latency);
            }
            let mut b = LatencyHistogram::new();
            for &latency in &right {
                b.record(latency);
            }
            let mut union = LatencyHistogram::new();
            for &latency in left.iter().chain(&right) {
                union.record(latency);
            }
            a.merge(&b);
            prop_assert_eq!(a.count(), union.count());
            prop_assert!((a.sum() - union.sum()).abs() < 1e-9);
            prop_assert!((a.max() - union.max()).abs() < 1e-12);
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                prop_assert!(
                    (a.quantile(q) - union.quantile(q)).abs() < 1e-12,
                    "quantile({q}) diverges after merge"
                );
            }
        }
    }
}

mod autotune_clamp {
    //! The online-clamp regression property (PR-9 satellite): whatever
    //! observation sequence drives the AIMD laws — calm growth to the
    //! batch cap, overload collapses, idle holds, watermark crossings —
    //! the actuated `(batch_size, batch_delay)` pair always passes
    //! [`MinBftConfig::validate`] with the matching cost model. The
    //! config itself is drawn adversarially (unordered bounds, silly
    //! factors) to cover sanitization too.

    use proptest::prelude::*;
    use tolerance::core::controlplane::autotune::{
        AutotuneConfig, AutotuneController, AutotuneObservation,
    };

    fn arbitrary_config() -> impl Strategy<Value = AutotuneConfig> {
        (
            (1e-3..1.0f64, 0usize..512, 0usize..512, 1usize..16),
            (0usize..128, 0usize..128, 1usize..8),
            (0.0..1.5f64, 0u64..512, 0u64..512),
            (0.0..0.05f64, 0.0..0.01f64, 0.0..0.01f64),
        )
            .prop_map(
                |(
                    (p99_target, min_batch, max_batch, batch_step),
                    (min_concurrency, max_concurrency, concurrency_step),
                    (decrease_factor, delay_watermark, shed_watermark),
                    (base_batch_delay, processing_time, signature_time),
                )| AutotuneConfig {
                    p99_target,
                    initial_batch: min_batch,
                    min_batch,
                    max_batch,
                    batch_step,
                    initial_concurrency: min_concurrency,
                    min_concurrency,
                    max_concurrency,
                    concurrency_step,
                    decrease_factor,
                    delay_watermark,
                    shed_watermark,
                    base_batch_delay,
                    processing_time,
                    signature_time,
                    ..AutotuneConfig::default()
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn aimd_never_actuates_a_pair_validate_rejects(
            config in arbitrary_config(),
            windows in proptest::collection::vec(
                (0u64..2_000, 0.0..2.0f64, 0u64..1_024, 0u64..64),
                1..80,
            ),
        ) {
            let mut controller = AutotuneController::new(&config);
            prop_assert!(controller.actuation_validates(), "initial knobs invalid");
            for &(completed, p99, queue_depth, suppressed) in &windows {
                let decision = controller.observe(AutotuneObservation {
                    completed,
                    p99,
                    queue_depth,
                    suppressed,
                });
                prop_assert!(
                    controller.actuation_validates(),
                    "reachable state actuates an invalid pair: {decision:?}"
                );
                prop_assert!(decision.batch_size >= 1);
                prop_assert!(decision.concurrency >= 1);
                prop_assert!(decision.batch_delay.is_finite() && decision.batch_delay >= 0.0);
            }
        }
    }
}

mod fleet_streams {
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::collections::HashSet;
    use tolerance::consensus::sharded::shard_seed;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn shard_seed_split_streams_are_pairwise_non_colliding(
            seed in 0u64..u64::MAX,
            shards in 2usize..=512,
        ) {
            // The fleet engine gives every shard its own RNG stream via the
            // splitmix split of the fleet seed: per-shard fault schedules and
            // trace workloads must never share a stream, or two shards would
            // replay correlated chaos. Check both the split seeds and a
            // fingerprint of each stream's first 10k draws.
            let mut seeds: HashSet<u64> = HashSet::with_capacity(shards);
            let mut fingerprints: HashSet<u64> = HashSet::with_capacity(shards);
            for shard in 0..shards {
                let split = shard_seed(seed, shard);
                prop_assert!(
                    seeds.insert(split),
                    "fleet seed {seed:#x}: shard {shard} re-derived an earlier split seed"
                );
                let mut rng = StdRng::seed_from_u64(split);
                let mut fingerprint = 0u64;
                for _ in 0..10_000 {
                    fingerprint = fingerprint.rotate_left(7) ^ rng.random::<u64>();
                }
                prop_assert!(
                    fingerprints.insert(fingerprint),
                    "fleet seed {seed:#x}: shard {shard}'s first 10k draws \
                     collide with an earlier shard's stream"
                );
            }
        }
    }
}
