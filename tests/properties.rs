//! Property-based tests (proptest) on the core invariants of the workspace:
//! belief updates stay in the simplex, the node transition function stays
//! stochastic over the whole admissible parameter range, the simplex LP
//! solver returns feasible optima, metrics stay in range, and threshold
//! strategies respect the BTR constraint for arbitrary belief sequences.

use proptest::prelude::*;
use tolerance::core::node_model::{NodeAction, NodeModel, NodeParameters, NodeState};
use tolerance::core::prelude::*;
use tolerance::markov::dist::{BetaBinomial, DiscreteDistribution, PoissonBinomial};
use tolerance::markov::stats::kl_divergence;
use tolerance::optim::simplex::{Comparison, LinearProgram};

fn arbitrary_parameters() -> impl Strategy<Value = NodeParameters> {
    (1e-4..0.5f64, 1e-6..0.05f64, 0.01..0.2f64, 1e-4..0.4f64).prop_map(
        |(p_attack, p_crash_healthy, p_crash_compromised, p_update)| NodeParameters {
            p_attack,
            p_crash_healthy,
            // Keep assumption C satisfied: p_C2 clearly above p_C1.
            p_crash_compromised: p_crash_compromised.max(p_crash_healthy * 2.0),
            p_update: p_update.min(1.0 - p_attack - 1e-3).max(1e-4),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn node_transition_rows_are_stochastic(parameters in arbitrary_parameters()) {
        let model = NodeModel::new_unchecked(parameters, ObservationModel::paper_default());
        let states = [NodeState::Healthy, NodeState::Compromised, NodeState::Crashed];
        for &state in &states {
            for &action in &[NodeAction::Wait, NodeAction::Recover] {
                let total: f64 = states
                    .iter()
                    .map(|&next| model.transition_probability(state, action, next))
                    .sum();
                prop_assert!((total - 1.0).abs() < 1e-9);
                for &next in &states {
                    let p = model.transition_probability(state, action, next);
                    prop_assert!((0.0..=1.0).contains(&p));
                }
            }
        }
    }

    #[test]
    fn belief_update_stays_in_unit_interval(
        parameters in arbitrary_parameters(),
        belief in 0.0..1.0f64,
        alerts in proptest::collection::vec(0u64..11, 1..30),
    ) {
        let model = NodeModel::new_unchecked(parameters, ObservationModel::paper_default());
        let mut current = belief;
        for (index, &observation) in alerts.iter().enumerate() {
            let action = if index % 7 == 3 { NodeAction::Recover } else { NodeAction::Wait };
            current = model.belief_update(current, action, observation);
            prop_assert!((0.0..=1.0).contains(&current), "belief {current} escaped [0, 1]");
            prop_assert!(current.is_finite());
        }
    }

    #[test]
    fn threshold_strategy_respects_btr_constraint(
        thresholds in proptest::collection::vec(0.0..=1.0f64, 1..8),
        delta_r in 2u32..20,
        belief in 0.0..1.0f64,
    ) {
        let strategy = ThresholdStrategy::new(thresholds, Some(delta_r)).unwrap();
        // Regardless of the belief, the step just before the period boundary
        // must recover (the BTR constraint of Eq. 6b).
        prop_assert_eq!(strategy.decide(belief, delta_r - 1), NodeAction::Recover);
        // And a belief of 1 always recovers.
        prop_assert_eq!(strategy.decide(1.0, 0), NodeAction::Recover);
    }

    #[test]
    fn beta_binomial_is_a_distribution(n in 1u64..40, alpha in 0.1..5.0f64, beta in 0.1..5.0f64) {
        let dist = BetaBinomial::new(n, alpha, beta).unwrap();
        let total: f64 = (0..=n).map(|k| dist.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        let mean_from_pmf: f64 = (0..=n).map(|k| k as f64 * dist.pmf(k)).sum();
        prop_assert!((mean_from_pmf - dist.mean()).abs() < 1e-6);
    }

    #[test]
    fn poisson_binomial_matches_mean_and_support(
        probabilities in proptest::collection::vec(0.0..=1.0f64, 1..12)
    ) {
        let dist = PoissonBinomial::new(probabilities.clone()).unwrap();
        let n = probabilities.len() as u64;
        let total: f64 = (0..=n).map(|k| dist.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-8);
        let mean_from_pmf: f64 = (0..=n).map(|k| k as f64 * dist.pmf(k)).sum();
        prop_assert!((mean_from_pmf - dist.mean()).abs() < 1e-8);
        prop_assert_eq!(dist.pmf(n + 1), 0.0);
    }

    #[test]
    fn kl_divergence_is_nonnegative(
        p_weights in proptest::collection::vec(0.01..1.0f64, 2..10),
    ) {
        let total_p: f64 = p_weights.iter().sum();
        let p: Vec<f64> = p_weights.iter().map(|w| w / total_p).collect();
        // q is a shifted copy of p (still positive everywhere).
        let mut q_weights = p_weights.clone();
        q_weights.rotate_left(1);
        let total_q: f64 = q_weights.iter().sum();
        let q: Vec<f64> = q_weights.iter().map(|w| w / total_q).collect();
        let divergence = kl_divergence(&p, &q).unwrap();
        prop_assert!(divergence >= -1e-12);
        prop_assert!(kl_divergence(&p, &p).unwrap().abs() < 1e-12);
    }

    #[test]
    fn lp_solutions_are_feasible(
        capacities in proptest::collection::vec(0.5..5.0f64, 2..6),
    ) {
        // minimize sum(x) subject to x_i <= capacity_i and sum(x) >= half the
        // total capacity. The solver's answer must satisfy every constraint.
        let n = capacities.len();
        let target: f64 = capacities.iter().sum::<f64>() / 2.0;
        let mut lp = LinearProgram::new(n, vec![1.0; n]).unwrap();
        for (i, &capacity) in capacities.iter().enumerate() {
            let mut row = vec![0.0; n];
            row[i] = 1.0;
            lp.add_constraint(row, Comparison::LessEqual, capacity).unwrap();
        }
        lp.add_constraint(vec![1.0; n], Comparison::GreaterEqual, target).unwrap();
        let solution = lp.solve().unwrap();
        let total: f64 = solution.values.iter().sum();
        prop_assert!(total >= target - 1e-6);
        prop_assert!((total - target).abs() < 1e-6, "optimum should be tight at the bound");
        for (value, &capacity) in solution.values.iter().zip(&capacities) {
            prop_assert!(*value >= -1e-9);
            prop_assert!(*value <= capacity + 1e-6);
        }
    }

    #[test]
    fn metrics_stay_in_valid_ranges(
        events in proptest::collection::vec((0usize..6, 0usize..3), 1..100),
        delays in proptest::collection::vec(0u64..500, 0..20),
    ) {
        let mut metrics = EvaluationMetrics::new();
        for (failed, recoveries) in &events {
            metrics.record_step(*failed, 2, *recoveries);
        }
        for delay in &delays {
            metrics.record_recovery_delay(*delay);
        }
        let report = metrics.report();
        prop_assert!((0.0..=1.0).contains(&report.availability));
        prop_assert!((0.0..=1.0).contains(&report.recovery_frequency));
        prop_assert!(report.time_to_recovery >= 0.0);
        prop_assert_eq!(report.steps, events.len() as u64);
    }
}
