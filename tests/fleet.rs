//! Acceptance tests of the fleet-scale simulation engine: the determinism
//! contract (byte-identical traces across 1/2/4/8 scheduler workers, and
//! lockstep == event-driven on every pinned counterexample), plus the
//! release-only fleet smoke — a 64-shard × 6-replica sweep under the full
//! oracle suite and a 256-shard completion check.
//!
//! The release-only tests double as the CI `fleet-smoke` job: any emitted
//! counterexample is written to `simnet-counterexamples/` and uploaded as a
//! workflow artifact.

use tolerance::consensus::sharded::shard_seed;
use tolerance::core::simnet::oracle::{InvariantKind, Violation};
use tolerance::core::simnet::{
    find_sharded_counterexample, fleet_scale_config, load_swing_config, run_sharded_schedule,
    run_sharded_schedule_with, Counterexample, FaultEvent, FaultSchedule, FleetEngine,
    ScheduledFault, ShardedCounterexample, ShardedFaultSchedule, ShardedRunReport,
    ShardedScheduleConfig,
};

const WORKER_GRID: [usize; 4] = [1, 2, 4, 8];

/// Lockstep baseline plus the event-driven engine at every worker count;
/// asserts every report (trace bytes included) is identical.
fn assert_engine_invariant(
    name: &str,
    schedule: &ShardedFaultSchedule,
    config: &ShardedScheduleConfig,
) -> ShardedRunReport {
    let lockstep = run_sharded_schedule_with(schedule, config, FleetEngine::Lockstep)
        .expect("harness constructs");
    let baseline_json = serde_json::to_string(&lockstep.trace).expect("serializable");
    for workers in WORKER_GRID {
        let event_driven = run_sharded_schedule_with(
            schedule,
            config,
            FleetEngine::EventDriven {
                workers: Some(workers),
            },
        )
        .expect("harness constructs");
        let json = serde_json::to_string(&event_driven.trace).expect("serializable");
        assert_eq!(
            baseline_json, json,
            "{name}: event-driven trace with {workers} workers diverged from lockstep"
        );
        assert_eq!(lockstep, event_driven, "{name}: {workers} workers");
    }
    lockstep
}

#[test]
fn event_driven_replay_is_byte_identical_across_worker_grid() {
    // The lockstep-cadence configurations: `fleet_tick_interval = 1`, so
    // the engine must reproduce the original executor exactly.
    let config = ShardedScheduleConfig::default();
    for seed in 0..4u64 {
        let schedule = ShardedFaultSchedule::generate(seed, &config);
        assert_engine_invariant(&format!("default seed {seed}"), &schedule, &config);
    }
}

#[test]
fn windowed_fleet_scale_replay_is_byte_identical_across_worker_grid() {
    // The fleet/scale cadence: 16 shards free-running in four-step windows
    // under the open-loop trace workload.
    let config = fleet_scale_config(16);
    for seed in 0..2u64 {
        let schedule = ShardedFaultSchedule::generate(seed, &config);
        let report = assert_engine_invariant(&format!("scale-16 seed {seed}"), &schedule, &config);
        assert!(
            report.violation.is_none(),
            "scale-16 seed {seed}: {:?}",
            report.violation
        );
        assert!(report.outcome.completed > 0);
    }
}

/// Lifts a single-group counterexample into a one-shard fleet: same base
/// configuration, the archived schedule as shard 0's schedule, no MultiPut
/// driver. The engines must agree on the *whole report* — violation, step
/// and trace bytes — not merely both fail.
fn lift_single_group(
    counterexample: &Counterexample,
) -> (ShardedFaultSchedule, ShardedScheduleConfig) {
    let config = ShardedScheduleConfig {
        shards: 1,
        base: counterexample.config.clone(),
        key_space: 64,
        multi_put_interval: 0,
        multi_put_keys: 2,
        fleet_tick_interval: 1,
        workload: None,
        autotune: None,
    };
    let schedule = ShardedFaultSchedule {
        seed: counterexample.seed,
        shards: vec![counterexample.schedule.clone()],
    };
    (schedule, config)
}

#[test]
fn lockstep_and_event_driven_agree_on_archived_counterexamples() {
    let dir = std::path::Path::new("simnet-counterexamples");
    let mut checked = 0;
    for name in [
        "expected-double-commit.json",
        "expected-liveness-after-gst.json",
        "adversary-lying-donor-gst-seed19.json",
    ] {
        let json =
            std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| panic!("read {name}: {e}"));
        let counterexample =
            Counterexample::from_json(&json).unwrap_or_else(|e| panic!("decode {name}: {e}"));
        let (schedule, config) = lift_single_group(&counterexample);
        // Lifting changes the client driving (routed pool clients instead
        // of the single-group harness's), so the archived violation need
        // not reproduce — the contract under test is that every engine
        // produces the identical report, violating or green.
        assert_engine_invariant(name, &schedule, &config);
        checked += 1;
    }
    assert_eq!(checked, 3);
}

#[test]
fn lockstep_and_event_driven_agree_on_the_pinned_fleet_counterexample() {
    // The shrunk state-transfer/backlog counterexample pinned in
    // tests/sharded.rs (fleet seed 3): both engines must replay the exact
    // scripted schedule to the same green report.
    let config = ShardedScheduleConfig::default();
    let schedule = ShardedFaultSchedule {
        seed: 3,
        shards: vec![
            FaultSchedule::scripted(
                shard_seed(3, 0),
                vec![
                    ScheduledFault {
                        step: 1,
                        event: FaultEvent::LossStorm {
                            loss_rate: 0.28939207345710954,
                        },
                    },
                    ScheduledFault {
                        step: 8,
                        event: FaultEvent::AddReplica,
                    },
                ],
            ),
            FaultSchedule::scripted(shard_seed(3, 1), Vec::new()),
        ],
    };
    let report = assert_engine_invariant("pinned fleet seed 3", &schedule, &config);
    assert!(
        report.violation.is_none(),
        "the pinned counterexample regressed: {:?}",
        report.violation
    );
}

#[test]
fn autotuned_load_swing_replay_is_byte_identical_across_worker_grid() {
    // The self-tuning data plane under the 10x diurnal swing: the AIMD
    // controller, admission decisions and concurrency caps all tick inside
    // the per-shard sub-executors, so the whole report — event trace AND
    // the per-window autotune decision trace — must be byte-identical
    // across 1/2/4/8 workers.
    let config = load_swing_config();
    for seed in 0..2u64 {
        let schedule = ShardedFaultSchedule::generate(seed, &config);
        let report =
            assert_engine_invariant(&format!("load-swing seed {seed}"), &schedule, &config);
        assert!(
            report.violation.is_none(),
            "load-swing seed {seed}: {:?}",
            report.violation
        );
        assert_eq!(report.autotune.len(), config.shards);
        assert!(
            report
                .autotune
                .iter()
                .all(|decisions| !decisions.is_empty()),
            "load-swing seed {seed}: a shard never ticked its controller"
        );
    }
}

#[test]
fn aimd_decisions_replay_exactly_from_a_counterexample_document() {
    // Controller determinism through the archive path: a load-swing run's
    // configuration round-trips through `ShardedCounterexample` JSON (the
    // manual decoder, not serde derive), and re-executing the decoded
    // document reproduces the original AIMD decision sequence exactly —
    // every step, batch size, delay, concurrency and admission verdict.
    let config = load_swing_config();
    let schedule = ShardedFaultSchedule::generate(5, &config);
    let original = run_sharded_schedule(&schedule, &config).expect("harness constructs");
    assert!(original.violation.is_none(), "{:?}", original.violation);
    let document = ShardedCounterexample {
        seed: 5,
        config: config.clone(),
        schedule: schedule.clone(),
        violation: Violation {
            kind: InvariantKind::Liveness,
            step: 0,
            detail: "synthetic archive entry for decision replay".into(),
        },
    };
    let json = document.to_json().expect("serializable");
    let decoded = ShardedCounterexample::from_json(&json).expect("decodable");
    assert_eq!(decoded.config, config, "config must survive the round trip");
    let replayed =
        run_sharded_schedule(&decoded.schedule, &decoded.config).expect("harness constructs");
    assert_eq!(
        serde_json::to_string(&original.autotune).expect("serializable"),
        serde_json::to_string(&replayed.autotune).expect("serializable"),
        "AIMD decision trace diverged on replay from the archived document"
    );
    assert_eq!(original, replayed);
}

fn publish_counterexample(name: &str, counterexample: &ShardedCounterexample) {
    let dir = std::path::Path::new("simnet-counterexamples");
    if std::fs::create_dir_all(dir).is_ok() {
        let json = counterexample.to_json().expect("serializable");
        let _ = std::fs::write(dir.join(format!("{name}.json")), json);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only fleet smoke (CI fleet-smoke job)"
)]
fn fleet_smoke_64_shards_passes_the_full_oracle_suite() {
    // The CI fleet smoke: a 64-shard × 6-replica event-driven sweep under
    // the full oracle suite (per-shard agreement/validity/recovery-bound/
    // network accounting, fleet routing, settle liveness and MultiPut
    // atomicity). Violations shrink and publish like the sharded sweep.
    let config = fleet_scale_config(64);
    for seed in 0..3u64 {
        let schedule = ShardedFaultSchedule::generate(seed, &config);
        let report = run_sharded_schedule_with(&schedule, &config, FleetEngine::default())
            .expect("harness constructs");
        if let Some(violation) = &report.violation {
            if let Ok(Some(counterexample)) = find_sharded_counterexample(&schedule, &config) {
                publish_counterexample(&format!("fleet-scale-64-seed{seed}"), &counterexample);
            }
            panic!("fleet/scale-64 seed {seed}: {violation}");
        }
        assert!(
            report.outcome.completed > 0,
            "fleet/scale-64 seed {seed}: no requests completed"
        );
        assert!(
            report.multi_puts.1 > 0,
            "fleet/scale-64 seed {seed}: no MultiPut committed"
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "release-only fleet smoke (CI fleet-smoke job)"
)]
fn fleet_scale_256_completes_under_the_full_oracle_suite() {
    let config = fleet_scale_config(256);
    let schedule = ShardedFaultSchedule::generate(0, &config);
    let report = run_sharded_schedule_with(&schedule, &config, FleetEngine::default())
        .expect("harness constructs");
    assert!(
        report.violation.is_none(),
        "fleet/scale-256: {:?}",
        report.violation
    );
    assert_eq!(report.trace.len(), 256);
    assert!(report.outcome.completed > 0);
}
