//! Algorithms 1 and 2 of the paper.
//!
//! * [`Alg1`] — parametric optimization of threshold recovery strategies
//!   (Problem 1). Theorem 1 justifies restricting the search to threshold
//!   strategies, which turns the PSPACE-hard POMDP into a low-dimensional
//!   stochastic optimization over `[0, 1]^d` solved with any of the
//!   black-box optimizers of `tolerance-optim` (CEM, DE, BO, SPSA). The PPO
//!   and Incremental Pruning baselines of Table 2 are provided as well.
//! * [`Alg2`] — the linear-programming solution of the replication CMDP
//!   (Problem 2), a thin, explicitly named wrapper around
//!   [`crate::replication::ReplicationProblem::solve`].

use crate::error::{CoreError, Result};
use crate::node_model::NodeAction;
use crate::recovery::{RecoveryProblem, ThresholdStrategy};
use crate::replication::{ReplicationProblem, ReplicationStrategy};
use rand::RngCore;
use rand::SeedableRng;
use tolerance_optim::bayesian::{BayesianOptimization, BoConfig};
use tolerance_optim::cem::{CemConfig, CrossEntropyMethod};
use tolerance_optim::de::{DeConfig, DifferentialEvolution};
use tolerance_optim::objective::Objective;
use tolerance_optim::optimizer::{OptimizationResult, Optimizer};
use tolerance_optim::ppo::{EpisodicEnvironment, Ppo, PpoConfig, StepOutcome};
use tolerance_optim::spsa::{Spsa, SpsaConfig};
use tolerance_pomdp::solvers::{IncrementalPruning, IncrementalPruningConfig};

/// Which black-box optimizer Algorithm 1 plugs in (Table 2 compares them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OptimizerKind {
    /// Cross-Entropy Method (the paper's default).
    Cem,
    /// Differential Evolution.
    De,
    /// Bayesian Optimization.
    Bo,
    /// Simultaneous Perturbation Stochastic Approximation.
    Spsa,
}

impl OptimizerKind {
    /// The short name used in experiment reports.
    pub fn name(self) -> &'static str {
        match self {
            OptimizerKind::Cem => "cem",
            OptimizerKind::De => "de",
            OptimizerKind::Bo => "bo",
            OptimizerKind::Spsa => "spsa",
        }
    }
}

/// Configuration of Algorithm 1.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Alg1Config {
    /// Number of simulated episodes averaged per objective evaluation
    /// (the `M = 50` of Appendix E).
    pub evaluation_episodes: usize,
    /// Episode horizon in time-steps.
    pub horizon: u32,
    /// Optimizer iterations (generations for CEM/DE, BO/SPSA iterations).
    pub iterations: usize,
    /// Population size for the population-based optimizers.
    pub population: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Alg1Config {
    fn default() -> Self {
        Alg1Config {
            evaluation_episodes: 50,
            horizon: 100,
            iterations: 30,
            population: 40,
            seed: 0,
        }
    }
}

/// The outcome of running Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Alg1Outcome {
    /// The near-optimal threshold strategy found.
    pub strategy: ThresholdStrategy,
    /// Estimated objective value `J_i` of the strategy.
    pub objective: f64,
    /// Raw optimizer result (convergence curve, evaluation counts), used by
    /// the Fig. 7 / Fig. 8 harness.
    pub optimization: OptimizationResult,
}

/// Algorithm 1: parametric optimization of recovery thresholds.
#[derive(Debug, Clone)]
pub struct Alg1 {
    config: Alg1Config,
}

struct RecoveryObjective<'a> {
    problem: &'a RecoveryProblem,
    episodes: usize,
    horizon: u32,
}

impl Objective for RecoveryObjective<'_> {
    fn dimension(&self) -> usize {
        self.problem.parameter_dimension()
    }

    fn evaluate(&self, point: &[f64], rng: &mut dyn RngCore) -> f64 {
        let strategy = self
            .problem
            .strategy_from_parameters(point)
            .expect("clamped parameters are always valid thresholds");
        let mut local = rand::rngs::StdRng::seed_from_u64(rng.next_u64());
        self.problem
            .evaluate_strategy(&strategy, self.episodes.max(1), self.horizon, &mut local)
    }

    fn evaluate_mean(&self, point: &[f64], _repetitions: usize, rng: &mut dyn RngCore) -> f64 {
        // The episode averaging already happens inside `evaluate`; the
        // optimizers' own repetition counts are ignored to keep the
        // evaluation budget equal to the paper's M episodes per candidate.
        self.evaluate(point, rng)
    }
}

impl Alg1 {
    /// Creates Algorithm 1 with the given configuration.
    pub fn new(config: Alg1Config) -> Self {
        Alg1 { config }
    }

    /// Runs Algorithm 1 on a recovery problem with the chosen optimizer.
    ///
    /// # Errors
    ///
    /// Propagates optimizer failures.
    pub fn solve(
        &self,
        problem: &RecoveryProblem,
        optimizer: OptimizerKind,
        rng: &mut dyn RngCore,
    ) -> Result<Alg1Outcome> {
        let objective = RecoveryObjective {
            problem,
            episodes: self.config.evaluation_episodes,
            horizon: self.config.horizon,
        };
        let result = match optimizer {
            OptimizerKind::Cem => CrossEntropyMethod::new(CemConfig {
                population: self.config.population,
                iterations: self.config.iterations,
                evaluation_samples: 1,
                ..CemConfig::default()
            })
            .minimize(&objective, rng),
            OptimizerKind::De => DifferentialEvolution::new(DeConfig {
                population: self.config.population.max(4),
                generations: self.config.iterations,
                evaluation_samples: 1,
                ..DeConfig::default()
            })
            .minimize(&objective, rng),
            OptimizerKind::Bo => BayesianOptimization::new(BoConfig {
                initial_points: 8,
                iterations: self.config.iterations,
                evaluation_samples: 1,
                ..BoConfig::default()
            })
            .minimize(&objective, rng),
            OptimizerKind::Spsa => Spsa::new(SpsaConfig {
                iterations: self.config.iterations * self.config.population / 3,
                evaluation_samples: 1,
                ..SpsaConfig::default()
            })
            .minimize(&objective, rng),
        }
        .map_err(CoreError::from)?;
        let strategy = problem.strategy_from_parameters(&result.best_point)?;
        Ok(Alg1Outcome {
            strategy,
            objective: result.best_value,
            optimization: result,
        })
    }

    /// Solves the recovery problem exactly with Incremental Pruning (the IP
    /// baseline of Table 2) and extracts the induced threshold strategy by
    /// scanning the greedy action over a belief grid.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve_with_incremental_pruning(
        &self,
        problem: &RecoveryProblem,
        discount: f64,
        horizon: Option<usize>,
    ) -> Result<Alg1Outcome> {
        let pomdp = problem.model().to_pomdp(problem.config().eta, discount)?;
        let solver = IncrementalPruning::new(IncrementalPruningConfig {
            max_vectors_per_stage: Some(32),
            ..IncrementalPruningConfig::default()
        });
        let start = std::time::Instant::now();
        let value_function = match horizon {
            Some(h) => solver.solve_finite_horizon(&pomdp, h)?,
            None => solver.solve_infinite_horizon(&pomdp, 1e-4, 200)?,
        };
        // Extract the belief threshold: the first grid point whose greedy
        // action is Recover.
        let grid = 200usize;
        let mut threshold = 1.0;
        for i in 0..=grid {
            let b = i as f64 / grid as f64;
            if value_function.greedy_action(&[1.0 - b, b]) == Some(1) {
                threshold = b;
                break;
            }
        }
        let strategy = ThresholdStrategy::new(vec![threshold], problem.config().delta_r)?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        let objective = problem.evaluate_strategy(
            &strategy,
            self.config.evaluation_episodes.max(20),
            self.config.horizon,
            &mut rng,
        );
        let optimization = OptimizationResult {
            best_point: vec![threshold],
            best_value: objective,
            evaluations: 0,
            history: vec![tolerance_optim::optimizer::ConvergencePoint {
                evaluations: 0,
                elapsed_seconds: start.elapsed().as_secs_f64(),
                best_value: objective,
            }],
        };
        Ok(Alg1Outcome {
            strategy,
            objective,
            optimization,
        })
    }

    /// Trains the PPO baseline of Table 2 on the recovery problem and
    /// evaluates the learned policy. Returns the mean objective of the
    /// learned policy together with the training history.
    ///
    /// # Errors
    ///
    /// Propagates PPO failures.
    pub fn solve_with_ppo(
        &self,
        problem: &RecoveryProblem,
        ppo_config: PpoConfig,
        rng: &mut dyn RngCore,
    ) -> Result<(f64, OptimizationResult)> {
        let mut environment = RecoveryEnvironment::new(problem.clone(), self.config.horizon);
        let trainer = Ppo::new(ppo_config);
        let trained = trainer
            .train(&mut environment, rng)
            .map_err(CoreError::from)?;
        // Evaluate the learned policy on fresh episodes.
        let mut eval_rng = rand::rngs::StdRng::seed_from_u64(self.config.seed.wrapping_add(17));
        let policy = trained.policy;
        let horizon = self.config.horizon;
        let episodes = self.config.evaluation_episodes.max(20);
        let mut total = 0.0;
        for _ in 0..episodes {
            let outcome = problem.simulate_policy(
                |belief, steps| {
                    let observation = RecoveryEnvironment::encode(belief, steps, horizon);
                    if policy.greedy_action(&observation) == 1 {
                        NodeAction::Recover
                    } else {
                        NodeAction::Wait
                    }
                },
                horizon,
                &mut eval_rng,
            );
            total += outcome.average_cost;
        }
        let objective = total / episodes as f64;
        let history = trained
            .history
            .iter()
            .map(|p| tolerance_optim::optimizer::ConvergencePoint {
                evaluations: p.evaluations,
                elapsed_seconds: p.elapsed_seconds,
                best_value: p.best_value,
            })
            .collect();
        let optimization = OptimizationResult {
            best_point: vec![],
            best_value: objective,
            evaluations: trained.environment_steps,
            history,
        };
        Ok((objective, optimization))
    }
}

/// The recovery POMDP wrapped as an episodic environment for the PPO
/// baseline: the observation is `[belief, normalized time since recovery]`
/// and the actions are wait / recover.
pub struct RecoveryEnvironment {
    problem: RecoveryProblem,
    horizon: u32,
    state: crate::node_model::NodeState,
    belief: f64,
    steps_since_recovery: u32,
    step: u32,
    previous_action: NodeAction,
}

impl RecoveryEnvironment {
    /// Creates the environment.
    pub fn new(problem: RecoveryProblem, horizon: u32) -> Self {
        RecoveryEnvironment {
            problem,
            horizon,
            state: crate::node_model::NodeState::Healthy,
            belief: 0.0,
            steps_since_recovery: 0,
            step: 0,
            previous_action: NodeAction::Wait,
        }
    }

    fn encode(belief: f64, steps_since_recovery: u32, horizon: u32) -> Vec<f64> {
        vec![
            belief,
            (steps_since_recovery as f64 / horizon.max(1) as f64).min(1.0),
        ]
    }
}

impl EpisodicEnvironment for RecoveryEnvironment {
    fn observation_dim(&self) -> usize {
        2
    }

    fn num_actions(&self) -> usize {
        2
    }

    fn reset(&mut self, rng: &mut dyn RngCore) -> Vec<f64> {
        use rand::Rng;
        let p_attack = self.problem.model().parameters().p_attack;
        self.state = if rng.random::<f64>() < p_attack {
            crate::node_model::NodeState::Compromised
        } else {
            crate::node_model::NodeState::Healthy
        };
        self.belief = p_attack;
        self.steps_since_recovery = 0;
        self.step = 0;
        self.previous_action = NodeAction::Wait;
        Self::encode(self.belief, self.steps_since_recovery, self.horizon)
    }

    fn step(&mut self, action: usize, rng: &mut dyn RngCore) -> StepOutcome {
        use crate::node_model::NodeState;
        let model = self.problem.model().clone();
        let eta = self.problem.config().eta;
        let node_action = if action == 1 {
            NodeAction::Recover
        } else {
            NodeAction::Wait
        };

        // Observe, update belief, pay the cost, transition.
        let alerts = model.observations().sample(self.state, rng);
        self.belief = model.belief_update(self.belief, self.previous_action, alerts);
        let cost = model.cost(self.state, node_action, eta);
        match node_action {
            NodeAction::Recover => {
                self.steps_since_recovery = 0;
                self.belief = model.parameters().p_attack;
            }
            NodeAction::Wait => self.steps_since_recovery += 1,
        }
        self.state = model.sample_transition(rng, self.state, node_action);
        self.previous_action = node_action;
        self.step += 1;
        // Enforce the BTR constraint as an episode boundary.
        let btr_exceeded = self
            .problem
            .config()
            .delta_r
            .map(|d| self.steps_since_recovery >= d)
            .unwrap_or(false);
        let done = self.state == NodeState::Crashed || self.step >= self.horizon || btr_exceeded;
        StepOutcome {
            observation: Self::encode(self.belief, self.steps_since_recovery, self.horizon),
            cost,
            done,
        }
    }
}

/// Algorithm 2: the LP solution of the replication CMDP. The heavy lifting
/// lives in [`ReplicationProblem::solve`]; this wrapper exists so the two
/// algorithms of the paper have first-class, symmetric entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct Alg2;

impl Alg2 {
    /// Solves the replication problem.
    ///
    /// # Errors
    ///
    /// Propagates LP failures and infeasibility.
    pub fn solve(&self, problem: &ReplicationProblem) -> Result<ReplicationStrategy> {
        problem.solve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_model::{NodeModel, NodeParameters};
    use crate::observation::ObservationModel;
    use crate::recovery::RecoveryConfig;
    use crate::replication::ReplicationConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(delta_r: Option<u32>) -> RecoveryProblem {
        let model =
            NodeModel::new(NodeParameters::default(), ObservationModel::paper_default()).unwrap();
        RecoveryProblem::new(model, RecoveryConfig { eta: 2.0, delta_r }).unwrap()
    }

    fn fast_config() -> Alg1Config {
        Alg1Config {
            evaluation_episodes: 10,
            horizon: 60,
            iterations: 10,
            population: 15,
            seed: 1,
        }
    }

    #[test]
    fn alg1_with_cem_finds_a_good_threshold() {
        let p = problem(None);
        let alg = Alg1::new(fast_config());
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = alg.solve(&p, OptimizerKind::Cem, &mut rng).unwrap();
        // The threshold must be interior (neither never- nor always-recover),
        // and the cost should be clearly below the never-recover cost (~2)
        // and the always-recover cost (~1).
        let threshold = outcome.strategy.threshold_at(0);
        assert!(threshold > 0.05 && threshold < 1.0, "threshold {threshold}");
        assert!(outcome.objective < 0.9, "objective {}", outcome.objective);
        assert!(!outcome.optimization.history.is_empty());
    }

    #[test]
    fn alg1_supports_all_optimizer_kinds() {
        let p = problem(None);
        let config = Alg1Config {
            evaluation_episodes: 5,
            horizon: 40,
            iterations: 4,
            population: 8,
            seed: 2,
        };
        let alg = Alg1::new(config);
        for kind in [
            OptimizerKind::Cem,
            OptimizerKind::De,
            OptimizerKind::Bo,
            OptimizerKind::Spsa,
        ] {
            let mut rng = StdRng::seed_from_u64(3);
            let outcome = alg.solve(&p, kind, &mut rng).unwrap();
            assert!(
                outcome.objective.is_finite(),
                "{} produced a non-finite objective",
                kind.name()
            );
            assert!(!outcome.strategy.thresholds().is_empty());
        }
        assert_eq!(OptimizerKind::Cem.name(), "cem");
        assert_eq!(OptimizerKind::Spsa.name(), "spsa");
    }

    #[test]
    fn alg1_with_btr_constraint_produces_time_dependent_thresholds() {
        let p = problem(Some(5));
        let alg = Alg1::new(fast_config());
        let mut rng = StdRng::seed_from_u64(7);
        let outcome = alg.solve(&p, OptimizerKind::De, &mut rng).unwrap();
        assert_eq!(outcome.strategy.thresholds().len(), 4);
        assert_eq!(outcome.strategy.delta_r(), Some(5));
    }

    #[test]
    fn incremental_pruning_baseline_agrees_with_cem() {
        let p = problem(None);
        let alg = Alg1::new(fast_config());
        let ip = alg
            .solve_with_incremental_pruning(&p, 0.95, Some(10))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let cem = alg.solve(&p, OptimizerKind::Cem, &mut rng).unwrap();
        // The two methods should produce strategies of comparable quality
        // (IP is exact on the discounted surrogate, CEM on the average-cost
        // simulation); allow a generous band.
        assert!(
            (ip.objective - cem.objective).abs() < 0.35,
            "ip {} vs cem {}",
            ip.objective,
            cem.objective
        );
        // IP's threshold must be interior as well.
        let threshold = ip.strategy.threshold_at(0);
        assert!(
            threshold > 0.01 && threshold < 1.0,
            "ip threshold {threshold}"
        );
    }

    #[test]
    fn ppo_baseline_trains_and_evaluates() {
        let p = problem(None);
        let alg = Alg1::new(Alg1Config {
            evaluation_episodes: 10,
            horizon: 50,
            ..fast_config()
        });
        let mut rng = StdRng::seed_from_u64(13);
        let ppo_config = PpoConfig {
            iterations: 4,
            batch_size: 256,
            hidden_layers: vec![16, 16],
            learning_rate: 0.005,
            max_episode_length: 50,
            ..PpoConfig::default()
        };
        let (objective, result) = alg.solve_with_ppo(&p, ppo_config, &mut rng).unwrap();
        assert!(objective.is_finite());
        assert!(
            objective < 2.5,
            "PPO objective {objective} unreasonably high"
        );
        assert_eq!(result.history.len(), 4);
    }

    #[test]
    fn alg2_wrapper_solves_the_replication_problem() {
        let problem = ReplicationProblem::new(ReplicationConfig {
            s_max: 10,
            fault_threshold: 2,
            availability_target: 0.9,
            node_survival_probability: 0.9,
        })
        .unwrap();
        let strategy = Alg2.solve(&problem).unwrap();
        assert!(strategy.availability() >= 0.9 - 1e-6);
    }
}
