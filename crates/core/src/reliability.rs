//! Reliability analysis of the replicated system (Fig. 6 / Appendix F).
//!
//! When no recoveries or replenishments take place, the number of healthy
//! nodes is a pure-death Markov chain; the system fails at the first time
//! `T(f)` at which fewer than `2f + k + 1` nodes remain (Proposition 1). The
//! mean time to failure is the mean hitting time of that failure set
//! (Fig. 6a) and the reliability function `R(t) = P[T(f) > t]` follows from
//! the Chapman–Kolmogorov equation (Fig. 6b).

use crate::error::{CoreError, Result};
use tolerance_markov::chain::MarkovChain;
use tolerance_markov::dist::{Binomial, DiscreteDistribution};

/// Reliability analysis of a system of `n1` initially healthy nodes whose
/// nodes fail (compromise or crash) independently with a per-step
/// probability, with no recoveries.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReliabilityAnalysis {
    initial_nodes: usize,
    fault_threshold: usize,
    parallel_recoveries: usize,
    per_step_failure_probability: f64,
}

impl ReliabilityAnalysis {
    /// Creates the analysis.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the failure probability is
    /// outside `(0, 1)` or there are no nodes.
    pub fn new(
        initial_nodes: usize,
        fault_threshold: usize,
        parallel_recoveries: usize,
        per_step_failure_probability: f64,
    ) -> Result<Self> {
        if initial_nodes == 0 {
            return Err(CoreError::InvalidParameter {
                name: "initial_nodes",
                reason: "at least one node is required".into(),
            });
        }
        if !(per_step_failure_probability > 0.0 && per_step_failure_probability < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "per_step_failure_probability",
                reason: format!("must lie in (0, 1), got {per_step_failure_probability}"),
            });
        }
        Ok(ReliabilityAnalysis {
            initial_nodes,
            fault_threshold,
            parallel_recoveries,
            per_step_failure_probability,
        })
    }

    /// The failure boundary: the system has failed once fewer than
    /// `2f + k + 1` healthy nodes remain.
    pub fn minimum_viable_nodes(&self) -> usize {
        2 * self.fault_threshold + self.parallel_recoveries + 1
    }

    /// Builds the pure-death chain over the number of healthy nodes
    /// `{0, ..., n1}` under independent per-node failures.
    fn chain(&self) -> Result<MarkovChain> {
        let n = self.initial_nodes;
        let p_fail = self.per_step_failure_probability;
        let mut rows = Vec::with_capacity(n + 1);
        for healthy in 0..=n {
            let mut row = vec![0.0; n + 1];
            if healthy == 0 {
                row[0] = 1.0;
            } else {
                let failures = Binomial::new(healthy as u64, p_fail)
                    .map_err(|e| CoreError::Markov(e.to_string()))?;
                for lost in 0..=healthy {
                    row[healthy - lost] = failures.pmf(lost as u64);
                }
            }
            rows.push(row);
        }
        Ok(MarkovChain::new(rows)?)
    }

    /// The failure states `{0, ..., 2f + k}` (clamped to the state space).
    fn failure_states(&self) -> Vec<usize> {
        let boundary = self.minimum_viable_nodes().min(self.initial_nodes + 1);
        (0..boundary).collect()
    }

    /// The mean time to failure `E[T(f)]` (Fig. 6a).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Markov`] if the chain computation fails and 0 if
    /// the system starts already failed.
    pub fn mean_time_to_failure(&self) -> Result<f64> {
        if self.initial_nodes < self.minimum_viable_nodes() {
            return Ok(0.0);
        }
        let chain = self.chain()?;
        let hitting = chain.mean_hitting_time(&self.failure_states())?;
        Ok(hitting[self.initial_nodes])
    }

    /// The reliability curve `R(t) = P[T(f) > t]` for `t = 0..=horizon`
    /// (Fig. 6b).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Markov`] if the chain computation fails.
    pub fn reliability_curve(&self, horizon: u32) -> Result<Vec<f64>> {
        if self.initial_nodes < self.minimum_viable_nodes() {
            return Ok(vec![0.0; horizon as usize + 1]);
        }
        let chain = self.chain()?;
        Ok(chain.reliability_curve(self.initial_nodes, &self.failure_states(), horizon)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_inputs() {
        assert!(ReliabilityAnalysis::new(0, 3, 1, 0.1).is_err());
        assert!(ReliabilityAnalysis::new(10, 3, 1, 0.0).is_err());
        assert!(ReliabilityAnalysis::new(10, 3, 1, 1.0).is_err());
        let analysis = ReliabilityAnalysis::new(10, 3, 1, 0.1).unwrap();
        assert_eq!(analysis.minimum_viable_nodes(), 8);
    }

    #[test]
    fn mttf_increases_with_more_initial_nodes() {
        // Fig. 6a: more nodes => longer time to failure.
        let mut previous = 0.0;
        for n1 in [10, 25, 50, 100] {
            let analysis = ReliabilityAnalysis::new(n1, 3, 1, 0.1).unwrap();
            let mttf = analysis.mean_time_to_failure().unwrap();
            assert!(
                mttf > previous,
                "MTTF should grow with N1 ({n1}): {mttf} <= {previous}"
            );
            previous = mttf;
        }
    }

    #[test]
    fn mttf_decreases_with_higher_attack_rate() {
        // Fig. 6a: the p_A = 0.1 curve lies below the p_A = 0.01 curve.
        let aggressive = ReliabilityAnalysis::new(50, 3, 1, 0.1).unwrap();
        let mild = ReliabilityAnalysis::new(50, 3, 1, 0.01).unwrap();
        assert!(mild.mean_time_to_failure().unwrap() > aggressive.mean_time_to_failure().unwrap());
    }

    #[test]
    fn already_failed_system_has_zero_mttf_and_reliability() {
        let analysis = ReliabilityAnalysis::new(5, 3, 1, 0.1).unwrap();
        assert_eq!(analysis.mean_time_to_failure().unwrap(), 0.0);
        let curve = analysis.reliability_curve(10).unwrap();
        assert!(curve.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn reliability_curve_is_monotone_and_ordered_by_n1() {
        // Fig. 6b: curves start at 1, decrease, and larger N1 dominates.
        let small = ReliabilityAnalysis::new(25, 3, 1, 0.05)
            .unwrap()
            .reliability_curve(60)
            .unwrap();
        let large = ReliabilityAnalysis::new(50, 3, 1, 0.05)
            .unwrap()
            .reliability_curve(60)
            .unwrap();
        assert!((small[0] - 1.0).abs() < 1e-9);
        for w in small.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        for t in [10usize, 20, 40, 60] {
            assert!(
                large[t] >= small[t] - 1e-9,
                "more nodes must be at least as reliable at t = {t}"
            );
        }
        // Eventually the system fails with high probability.
        assert!(small[60] < 0.5);
    }

    #[test]
    fn single_step_reliability_matches_binomial_tail() {
        // With n1 = 8, f = 3, k = 1 the system fails as soon as any node
        // fails; R(1) = (1 - p)^8.
        let p = 0.1;
        let analysis = ReliabilityAnalysis::new(8, 3, 1, p).unwrap();
        let curve = analysis.reliability_curve(1).unwrap();
        let expected = (1.0 - p_f(p)).powi(8);
        assert!((curve[1] - expected).abs() < 1e-9);

        fn p_f(p: f64) -> f64 {
            p
        }
    }
}
