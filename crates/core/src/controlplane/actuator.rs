//! The unified actuation interface of the two-level control plane.
//!
//! The controllers compute *decisions* (recover replica `i`, grow the
//! membership); a [`ClusterActuator`] turns them into *actions* on a
//! cluster. Two implementations ship:
//!
//! * the simulated [`MinBftCluster`] — direct method calls into the
//!   discrete-event cluster, fully deterministic, checked by the simnet
//!   invariant oracles, and
//! * the live [`ThreadedCluster`] — control messages delivered over the
//!   running service's transport
//!   ([`tolerance_consensus::minbft::ControlMessage`]), so recovery and
//!   reconfiguration act on real replica threads at wall-clock speed.
//!
//! The simnet executor wraps the simulated cluster in its own actuator to
//! add fault-schedule bookkeeping (restart-vs-rebuild choice, recovery
//! latency accounting); see `crate::simnet::executor`.

use tolerance_consensus::{MinBftCluster, NodeId, ThreadedCluster};

/// Actuation surface the [`crate::controlplane::ControlPlane`] drives: the
/// recovery path of the local control level plus the JOIN/EVICT
/// reconfiguration of the global level.
pub trait ClusterActuator {
    /// Number of replicas currently in the membership.
    fn replica_count(&self) -> usize;

    /// Whether `node` is currently a member.
    fn contains(&self, node: NodeId) -> bool;

    /// Actuates a recovery of `node` (rebuild + state transfer). Returns
    /// `false` when the recovery could not start (unknown node, or it was
    /// deferred because no state donor exists); the controller's BTR clock
    /// keeps standing and it re-actuates on a later tick.
    fn recover(&mut self, node: NodeId) -> bool;

    /// Actuates a JOIN reconfiguration; returns the new replica's id, or
    /// `None` when the platform refused.
    fn join(&mut self) -> Option<NodeId>;

    /// Actuates an EVICT reconfiguration; returns `false` when refused.
    fn evict(&mut self, node: NodeId) -> bool;
}

impl ClusterActuator for MinBftCluster {
    fn replica_count(&self) -> usize {
        self.num_replicas()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.membership().contains(&node)
    }

    fn recover(&mut self, node: NodeId) -> bool {
        if !self.membership().contains(&node) {
            return false;
        }
        self.recover_replica(node)
    }

    fn join(&mut self) -> Option<NodeId> {
        Some(self.add_replica())
    }

    fn evict(&mut self, node: NodeId) -> bool {
        if !self.membership().contains(&node) {
            return false;
        }
        self.evict_replica(node);
        true
    }
}

impl ClusterActuator for ThreadedCluster {
    fn replica_count(&self) -> usize {
        self.num_replicas()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.membership().contains(&node)
    }

    fn recover(&mut self, node: NodeId) -> bool {
        ThreadedCluster::recover(self, node)
    }

    fn join(&mut self) -> Option<NodeId> {
        Some(ThreadedCluster::join(self))
    }

    fn evict(&mut self, node: NodeId) -> bool {
        ThreadedCluster::evict(self, node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tolerance_consensus::{MinBftConfig, ThreadedServiceConfig};

    #[test]
    fn simulated_cluster_actuates_through_the_trait() {
        let mut cluster = MinBftCluster::new(MinBftConfig {
            initial_replicas: 4,
            ..MinBftConfig::default()
        });
        let actuator: &mut dyn ClusterActuator = &mut cluster;
        assert_eq!(actuator.replica_count(), 4);
        assert!(actuator.contains(0));
        assert!(!actuator.contains(99));
        assert!(!actuator.recover(99));
        let joined = actuator.join().expect("join succeeds");
        assert_eq!(actuator.replica_count(), 5);
        assert!(actuator.evict(joined));
        assert!(!actuator.evict(joined));
        assert_eq!(actuator.replica_count(), 4);
        assert!(actuator.recover(1), "recovery with live donors starts");
    }

    #[test]
    fn threaded_cluster_actuates_through_the_trait() {
        let mut cluster = ThreadedCluster::new(&ThreadedServiceConfig {
            replicas: 4,
            duration: 0.1,
            ..ThreadedServiceConfig::default()
        });
        {
            let actuator: &mut dyn ClusterActuator = &mut cluster;
            assert_eq!(actuator.replica_count(), 4);
            assert!(!actuator.recover(42));
            let joined = actuator.join().expect("join succeeds");
            assert_eq!(actuator.replica_count(), 5);
            assert!(actuator.evict(joined));
            assert_eq!(actuator.replica_count(), 4);
        }
        cluster.shutdown();
    }
}
