//! The transport-agnostic control runtime: one `tick` for both clusters.
//!
//! A [`ControlPlane`] owns the per-replica [`NodeController`]s and the
//! optional [`SystemController`], and advances both control levels by one
//! time-step per [`ControlPlane::tick`]: belief updates from the IDS
//! observation channel, the k-parallel-recovery constraint of
//! Proposition 1, crash eviction and the Algorithm-2 replication decision —
//! all actuated through a pluggable [`ClusterActuator`]. The simnet
//! executor calls the same `tick` (deterministic, against the simulated
//! cluster) as the live controlled scenarios (wall-clock, against the
//! threaded cluster), which is exactly the paper's claim that one control
//! architecture steers the real service.

use crate::controller::{NodeController, SystemController};
use crate::controlplane::actuator::ClusterActuator;
use crate::error::Result;
use crate::node_model::{NodeAction, NodeModel, NodeParameters};
use crate::observation::ObservationModel;
use crate::recovery::ThresholdStrategy;
use crate::replication::{ReplicationConfig, ReplicationProblem};
use rand::Rng;
use std::collections::BTreeMap;
use tolerance_consensus::NodeId;

/// Configuration of a [`ControlPlane`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControlPlaneConfig {
    /// Belief threshold of the node controllers.
    pub recovery_threshold: f64,
    /// BTR period `Δ_R` (maximum steps between recoveries of one node).
    pub delta_r: Option<u32>,
    /// Parallel-recovery constraint `k` of Proposition 1 (at most this
    /// many recoveries actuate per tick; the rest re-request next tick).
    pub parallel_recoveries: usize,
    /// Whether the global replication controller (Algorithm 2) runs.
    pub system_controller: bool,
    /// Smallest membership the system controller may shrink to.
    pub min_replicas: usize,
    /// Largest membership the system controller may grow to.
    pub max_replicas: usize,
    /// Fault threshold `f` the replication problem of Algorithm 2 is solved
    /// for (`N_t ≥ 2f + 1 + k`, Proposition 1).
    pub fault_threshold: usize,
    /// Availability target of the replication CMDP (its constraint).
    pub availability_target: f64,
    /// Per-step node survival probability of the replication CMDP.
    pub node_survival_probability: f64,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        ControlPlaneConfig {
            recovery_threshold: 0.76,
            delta_r: Some(12),
            parallel_recoveries: 1,
            system_controller: true,
            min_replicas: 4,
            max_replicas: 8,
            fault_threshold: 1,
            availability_target: 0.9,
            node_survival_probability: 0.95,
        }
    }
}

/// One node's observation input for a control tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NodeReport<'a> {
    /// The node failed to report (crashed); the system controller treats
    /// it as evictable (Section V-B).
    Silent,
    /// One weighted IDS-alert sample for the whole time-step (the simnet
    /// path — one deterministic draw per step).
    Sample(u64),
    /// The stream of weighted IDS-alert events observed since the previous
    /// tick (the live path — folded through the incremental belief tracker
    /// at `O(|S|)` per event).
    Events(&'a [u64]),
}

/// What one control tick did.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TickReport {
    /// Per-node compromise beliefs after the update — exactly the report
    /// vector the system controller consumed, so a node whose recovery was
    /// requested this tick already shows the post-recovery prior
    /// (`None` = no report).
    pub beliefs: Vec<(NodeId, Option<f64>)>,
    /// Nodes whose controllers requested a recovery this tick (before the
    /// k-truncation).
    pub requested: Vec<NodeId>,
    /// Nodes whose recovery was actuated successfully.
    pub recovered: Vec<NodeId>,
    /// Nodes evicted by the system controller (crash eviction).
    pub evicted: Vec<NodeId>,
    /// Replica joined by the system controller, if any.
    pub joined: Option<NodeId>,
    /// The expected-healthy estimate the system controller acted on.
    pub estimated_healthy: Option<usize>,
}

/// The two-level control runtime (see the module docs).
#[derive(Debug, Clone)]
pub struct ControlPlane {
    config: ControlPlaneConfig,
    node_model: NodeModel,
    strategy: ThresholdStrategy,
    controllers: BTreeMap<NodeId, NodeController>,
    system: Option<SystemController>,
}

impl ControlPlane {
    /// Builds a control plane over the paper's default node model and
    /// observation model.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and LP failures.
    pub fn new(config: ControlPlaneConfig) -> Result<Self> {
        let alert_model = ObservationModel::paper_default();
        let node_model = NodeModel::new(NodeParameters::default(), alert_model)?;
        Self::with_model(config, node_model)
    }

    /// Builds a control plane over an explicit node model (e.g. one whose
    /// observation model was estimated empirically).
    ///
    /// # Errors
    ///
    /// Propagates strategy-construction and LP failures.
    pub fn with_model(config: ControlPlaneConfig, node_model: NodeModel) -> Result<Self> {
        let strategy = ThresholdStrategy::new(vec![config.recovery_threshold], config.delta_r)?;
        let system = if config.system_controller {
            let strategy = ReplicationProblem::new(ReplicationConfig {
                s_max: config.max_replicas,
                fault_threshold: config.fault_threshold.max(1),
                availability_target: config.availability_target,
                node_survival_probability: config.node_survival_probability,
            })?
            .solve()?;
            Some(SystemController::new(strategy))
        } else {
            None
        };
        Ok(ControlPlane {
            config,
            node_model,
            strategy,
            controllers: BTreeMap::new(),
            system,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &ControlPlaneConfig {
        &self.config
    }

    /// The node controller of `node`, creating it on first access.
    pub fn controller(&mut self, node: NodeId) -> &mut NodeController {
        let node_model = &self.node_model;
        let strategy = &self.strategy;
        self.controllers
            .entry(node)
            .or_insert_with(|| NodeController::new(node_model.clone(), strategy.clone()))
    }

    /// Read-only view of a node's controller, if it exists.
    pub fn controller_of(&self, node: NodeId) -> Option<&NodeController> {
        self.controllers.get(&node)
    }

    /// Drops the controller of an evicted node.
    pub fn forget(&mut self, node: NodeId) {
        self.controllers.remove(&node);
    }

    /// Total recoveries requested across all node controllers so far.
    pub fn total_recoveries(&self) -> u64 {
        self.controllers.values().map(|c| c.recoveries()).sum()
    }

    /// The system controller, if one runs.
    pub fn system(&self) -> Option<&SystemController> {
        self.system.as_ref()
    }

    /// One control time-step across both levels.
    ///
    /// `observations` lists the current membership **in membership order**
    /// with each node's IDS input; ordering matters because the system
    /// controller's eviction decision indexes into it, and because the
    /// deterministic simnet path replays `rng` draws in this order.
    pub fn tick<A: ClusterActuator + ?Sized, R: Rng + ?Sized>(
        &mut self,
        observations: &[(NodeId, NodeReport<'_>)],
        actuator: &mut A,
        rng: &mut R,
    ) -> TickReport {
        let mut report = TickReport::default();
        let mut requests: Vec<(NodeId, f64)> = Vec::new();
        for &(id, observation) in observations {
            let action = match observation {
                NodeReport::Silent => {
                    report.beliefs.push((id, None));
                    continue;
                }
                NodeReport::Sample(alerts) => self.controller(id).observe_and_decide(alerts),
                NodeReport::Events(events) => self.controller(id).observe_events(events),
            };
            let controller = self.controllers.get(&id).expect("controller exists");
            let belief = controller.belief();
            report.beliefs.push((id, Some(belief)));
            if action == NodeAction::Recover {
                // Priority by the *deciding* belief: `belief()` was already
                // reset to the attack prior when the decision fired, which
                // would make every requester tie and degrade the k-slot
                // priority to node-id order.
                requests.push((id, controller.last_request_belief()));
            }
        }
        // Highest beliefs first; at most k recoveries actuate per tick
        // (Proposition 1). Requests beyond k — and requests the actuator
        // refused (e.g. no state donor) — are *deferred*: the controller's
        // deciding belief is restored so the request re-fires on the next
        // tick instead of waiting for the belief to re-climb or Δ_R to
        // elapse.
        requests.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        report.requested = requests.iter().map(|&(id, _)| id).collect();
        let slots = self.config.parallel_recoveries.max(1);
        for (id, _) in requests {
            // A refusal does not consume a slot: the next request in
            // priority order still gets its chance, so one un-actuatable
            // node (e.g. no frontier donor) cannot starve the others.
            if report.recovered.len() < slots && actuator.recover(id) {
                if let Some(controller) = self.controllers.get_mut(&id) {
                    controller.notify_recovered();
                }
                report.recovered.push(id);
            } else if let Some(controller) = self.controllers.get_mut(&id) {
                controller.notify_deferred();
            }
        }
        // Global control level: evict non-reporters, maybe grow. The
        // report vector (and the index base of the eviction decision) is
        // `report.beliefs` in observation order.
        if let Some(system) = &mut self.system {
            let reports: Vec<Option<f64>> =
                report.beliefs.iter().map(|&(_, belief)| belief).collect();
            let decision = system.decide(&reports, rng);
            report.estimated_healthy = Some(decision.estimated_healthy);
            let mut evict: Vec<NodeId> = decision
                .evict
                .iter()
                .filter_map(|&index| observations.get(index).map(|&(id, _)| id))
                .collect();
            evict.sort_unstable();
            for id in evict {
                if actuator.contains(id)
                    && actuator.replica_count() > self.config.min_replicas
                    && actuator.evict(id)
                {
                    self.controllers.remove(&id);
                    report.evicted.push(id);
                }
            }
            if decision.add_node && actuator.replica_count() < self.config.max_replicas {
                if let Some(id) = actuator.join() {
                    self.controller(id);
                    report.joined = Some(id);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    /// A scripted in-memory cluster: actuation becomes bookkeeping.
    struct FakeCluster {
        members: BTreeSet<NodeId>,
        next: NodeId,
        refuse_recovery: bool,
        recovered: Vec<NodeId>,
    }

    impl FakeCluster {
        fn new(n: NodeId) -> Self {
            FakeCluster {
                members: (0..n).collect(),
                next: n,
                refuse_recovery: false,
                recovered: Vec::new(),
            }
        }
    }

    impl ClusterActuator for FakeCluster {
        fn replica_count(&self) -> usize {
            self.members.len()
        }
        fn contains(&self, node: NodeId) -> bool {
            self.members.contains(&node)
        }
        fn recover(&mut self, node: NodeId) -> bool {
            if self.refuse_recovery || !self.members.contains(&node) {
                return false;
            }
            self.recovered.push(node);
            true
        }
        fn join(&mut self) -> Option<NodeId> {
            let id = self.next;
            self.next += 1;
            self.members.insert(id);
            Some(id)
        }
        fn evict(&mut self, node: NodeId) -> bool {
            self.members.remove(&node)
        }
    }

    fn observations(cluster: &FakeCluster, alerts: u64) -> Vec<(NodeId, u64)> {
        cluster.members.iter().map(|&id| (id, alerts)).collect()
    }

    #[test]
    fn sustained_alerts_trigger_a_recovery_through_the_actuator() {
        let mut plane = ControlPlane::new(ControlPlaneConfig {
            system_controller: false,
            delta_r: None,
            ..ControlPlaneConfig::default()
        })
        .unwrap();
        let mut cluster = FakeCluster::new(4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut recovered = false;
        for _ in 0..12 {
            let observed: Vec<(NodeId, NodeReport<'_>)> = observations(&cluster, 10)
                .into_iter()
                .map(|(id, alerts)| (id, NodeReport::Sample(alerts)))
                .collect();
            let tick = plane.tick(&observed, &mut cluster, &mut rng);
            assert!(
                tick.recovered.len() <= 1,
                "the k = 1 constraint bounds per-tick recoveries"
            );
            if !tick.recovered.is_empty() {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "max-priority alerts must actuate a recovery");
        assert_eq!(cluster.recovered.len(), 1);
        // The recovered node's belief reset to the attack prior.
        let id = cluster.recovered[0];
        assert!(plane.controller_of(id).unwrap().belief() < 0.2);
    }

    #[test]
    fn deferred_recoveries_keep_requesting() {
        let mut plane = ControlPlane::new(ControlPlaneConfig {
            system_controller: false,
            delta_r: Some(3),
            ..ControlPlaneConfig::default()
        })
        .unwrap();
        let mut cluster = FakeCluster::new(4);
        cluster.refuse_recovery = true;
        let mut rng = StdRng::seed_from_u64(2);
        let mut requested_ticks = 0;
        let mut first_request = None;
        for tick_index in 0..8 {
            let observed: Vec<(NodeId, NodeReport<'_>)> = cluster
                .members
                .iter()
                .map(|&id| (id, NodeReport::Sample(0)))
                .collect();
            let tick = plane.tick(&observed, &mut cluster, &mut rng);
            assert!(tick.recovered.is_empty(), "actuation was refused");
            if !tick.requested.is_empty() {
                first_request.get_or_insert(tick_index);
                requested_ticks += 1;
            }
        }
        // Deferral semantics: once a node's recovery request is refused it
        // stays due and re-fires on *every* subsequent tick (the belief /
        // BTR clock is restored by `notify_deferred`), not just every Δ_R.
        let first = first_request.expect("the BTR clock must force a request");
        assert_eq!(
            requested_ticks,
            8 - first,
            "a refused recovery must re-request on every subsequent tick"
        );
    }

    #[test]
    fn system_level_evicts_silent_nodes_and_restores_n_via_join() {
        let mut plane = ControlPlane::new(ControlPlaneConfig {
            system_controller: true,
            min_replicas: 3,
            max_replicas: 8,
            // f = 2 with a strict availability target: Algorithm 2 adds
            // with high probability whenever ≤ 3 nodes are estimated
            // healthy, which a 4-node cluster with one silent member
            // always hits.
            fault_threshold: 2,
            availability_target: 0.98,
            ..ControlPlaneConfig::default()
        })
        .unwrap();
        let mut cluster = FakeCluster::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        // Node 2 stops reporting: it must be evicted, and with few healthy
        // nodes the replication controller must eventually JOIN a fresh one.
        let mut evicted = false;
        let mut joined = false;
        for _ in 0..20 {
            let observed: Vec<(NodeId, NodeReport<'_>)> = cluster
                .members
                .iter()
                .map(|&id| {
                    if id == 2 && !evicted {
                        (id, NodeReport::Silent)
                    } else {
                        (id, NodeReport::Sample(2))
                    }
                })
                .collect();
            let tick = plane.tick(&observed, &mut cluster, &mut rng);
            if tick.evicted.contains(&2) {
                evicted = true;
                assert!(!cluster.contains(2));
                assert!(plane.controller_of(2).is_none(), "controller dropped");
            }
            if tick.joined.is_some() {
                joined = true;
            }
            if evicted && joined && cluster.replica_count() >= 4 {
                break;
            }
        }
        assert!(evicted, "the silent node must be evicted");
        assert!(joined, "the system controller must restore n via JOIN");
        assert!(cluster.replica_count() >= 4);
    }

    #[test]
    fn event_stream_reports_drive_the_same_loop() {
        let mut plane = ControlPlane::new(ControlPlaneConfig {
            system_controller: false,
            delta_r: None,
            ..ControlPlaneConfig::default()
        })
        .unwrap();
        let mut cluster = FakeCluster::new(4);
        let mut rng = StdRng::seed_from_u64(4);
        let burst = [10u64, 10, 10, 9, 10];
        let quiet = [0u64, 1];
        let mut recovered = false;
        for _ in 0..6 {
            let observed: Vec<(NodeId, NodeReport<'_>)> = cluster
                .members
                .iter()
                .map(|&id| {
                    if id == 1 {
                        (id, NodeReport::Events(&burst))
                    } else {
                        (id, NodeReport::Events(&quiet))
                    }
                })
                .collect();
            let tick = plane.tick(&observed, &mut cluster, &mut rng);
            if tick.recovered.contains(&1) {
                recovered = true;
                break;
            }
            assert!(
                !tick.recovered.iter().any(|&id| id != 1),
                "quiet nodes must not recover"
            );
        }
        assert!(recovered, "a dense alert burst must actuate recovery");
    }
}
