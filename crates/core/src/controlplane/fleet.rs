//! The fleet-level control plane of the sharded service: one global
//! recovery budget, one system controller, many MinBFT groups.
//!
//! Each shard keeps its own per-node belief controllers (the local control
//! level is unchanged), but the **k-parallel-recovery budget of
//! Proposition 1 is allocated fleet-wide**: every tick the recovery
//! requests of all shards compete for the same `k` slots, prioritized by
//! the *deciding* belief — so an intrusion burst in shard A cannot starve
//! recovery in shard B beyond the shared budget, and a deferred request
//! (lost the priority sort, or refused by the actuator) genuinely re-fires
//! on the next tick through [`NodeController::notify_deferred`], exactly
//! like the single-cluster [`ControlPlane`](super::ControlPlane).
//!
//! The global level likewise runs **one** [`SystemController`] per fleet:
//! it sees the concatenated belief report of every shard, evicts
//! non-reporting (crashed) replicas wherever they live, and allocates
//! JOIN spares to the *neediest* shard — the one with the fewest healthy
//! replicas — subject to per-shard and fleet-wide membership bounds.

use crate::controller::{NodeController, SystemController};
use crate::controlplane::actuator::ClusterActuator;
use crate::controlplane::runtime::NodeReport;
use crate::error::Result;
use crate::node_model::{NodeAction, NodeModel, NodeParameters};
use crate::observation::ObservationModel;
use crate::recovery::ThresholdStrategy;
use crate::replication::{ReplicationConfig, ReplicationProblem};
use rand::Rng;
use std::collections::BTreeMap;
use tolerance_consensus::NodeId;

/// Configuration of a [`FleetControlPlane`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FleetConfig {
    /// Belief threshold of the node controllers.
    pub recovery_threshold: f64,
    /// BTR period `Δ_R` (maximum steps between recoveries of one node).
    pub delta_r: Option<u32>,
    /// The **global** parallel-recovery budget `k`: at most this many
    /// recoveries actuate per tick across the whole fleet.
    pub parallel_recoveries: usize,
    /// Whether the fleet-level system controller (Algorithm 2 over the
    /// concatenated belief report) runs.
    pub system_controller: bool,
    /// Smallest membership any single shard may shrink to.
    pub min_replicas_per_shard: usize,
    /// Largest membership any single shard may grow to.
    pub max_replicas_per_shard: usize,
    /// The fleet's spare budget: JOINs stop once the total replica count
    /// across shards reaches this.
    pub max_total_replicas: usize,
    /// Fault threshold `f` the replication problem is solved for.
    pub fault_threshold: usize,
    /// Availability target of the replication CMDP.
    pub availability_target: f64,
    /// Per-step node survival probability of the replication CMDP.
    pub node_survival_probability: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            recovery_threshold: 0.76,
            delta_r: Some(12),
            parallel_recoveries: 1,
            system_controller: true,
            min_replicas_per_shard: 4,
            max_replicas_per_shard: 8,
            max_total_replicas: 16,
            fault_threshold: 1,
            availability_target: 0.9,
            node_survival_probability: 0.95,
        }
    }
}

/// What one fleet tick did. Nodes are addressed as `(shard, node)`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FleetTickReport {
    /// Per-shard, per-node beliefs after the update, in observation order
    /// (`None` = the node failed to report).
    pub beliefs: Vec<Vec<(NodeId, Option<f64>)>>,
    /// Recovery requests this tick (before the global k-truncation), in
    /// deciding-belief priority order.
    pub requested: Vec<(usize, NodeId)>,
    /// Recoveries actuated within the global budget.
    pub recovered: Vec<(usize, NodeId)>,
    /// Requests deferred to the next tick (budget exhausted or actuator
    /// refused).
    pub deferred: Vec<(usize, NodeId)>,
    /// Nodes evicted by the system controller.
    pub evicted: Vec<(usize, NodeId)>,
    /// The shard that received a JOIN this tick, with the new replica.
    pub joined: Option<(usize, NodeId)>,
    /// The fleet-wide expected-healthy estimate the system controller
    /// acted on.
    pub estimated_healthy: Option<usize>,
}

/// The fleet control runtime (see the module docs).
#[derive(Debug, Clone)]
pub struct FleetControlPlane {
    config: FleetConfig,
    node_model: NodeModel,
    strategy: ThresholdStrategy,
    controllers: BTreeMap<(usize, NodeId), NodeController>,
    system: Option<SystemController>,
}

impl FleetControlPlane {
    /// Builds a fleet control plane over the paper's default node and
    /// observation models.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and LP failures.
    pub fn new(config: FleetConfig) -> Result<Self> {
        let alert_model = ObservationModel::paper_default();
        let node_model = NodeModel::new(NodeParameters::default(), alert_model)?;
        Self::with_model(config, node_model)
    }

    /// Builds a fleet control plane over an explicit node model.
    ///
    /// # Errors
    ///
    /// Propagates strategy-construction and LP failures.
    pub fn with_model(config: FleetConfig, node_model: NodeModel) -> Result<Self> {
        let strategy = ThresholdStrategy::new(vec![config.recovery_threshold], config.delta_r)?;
        let system = if config.system_controller {
            let strategy = ReplicationProblem::new(ReplicationConfig {
                s_max: config.max_total_replicas,
                fault_threshold: config.fault_threshold.max(1),
                availability_target: config.availability_target,
                node_survival_probability: config.node_survival_probability,
            })?
            .solve()?;
            Some(SystemController::new(strategy))
        } else {
            None
        };
        Ok(FleetControlPlane {
            config,
            node_model,
            strategy,
            controllers: BTreeMap::new(),
            system,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The node controller of `(shard, node)`, creating it on first access.
    pub fn controller(&mut self, shard: usize, node: NodeId) -> &mut NodeController {
        let node_model = &self.node_model;
        let strategy = &self.strategy;
        self.controllers
            .entry((shard, node))
            .or_insert_with(|| NodeController::new(node_model.clone(), strategy.clone()))
    }

    /// Read-only view of a node's controller, if it exists.
    pub fn controller_of(&self, shard: usize, node: NodeId) -> Option<&NodeController> {
        self.controllers.get(&(shard, node))
    }

    /// Drops the controller of an evicted node.
    pub fn forget(&mut self, shard: usize, node: NodeId) {
        self.controllers.remove(&(shard, node));
    }

    /// One control time-step across the whole fleet.
    ///
    /// `observations[s]` lists shard `s`'s membership in membership order
    /// with each node's IDS input; `actuators[s]` is that shard's actuation
    /// surface. The two slices must have the same length (one entry per
    /// shard).
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths disagree.
    pub fn tick<R: Rng + ?Sized>(
        &mut self,
        observations: &[Vec<(NodeId, NodeReport<'_>)>],
        actuators: &mut [&mut dyn ClusterActuator],
        rng: &mut R,
    ) -> FleetTickReport {
        assert_eq!(
            observations.len(),
            actuators.len(),
            "one actuator per shard"
        );
        let mut report = FleetTickReport::default();
        // Local level: fold every shard's observations through its node
        // controllers and collect the fleet-wide recovery requests with
        // their deciding beliefs.
        let mut requests: Vec<(usize, NodeId, f64)> = Vec::new();
        for (shard, shard_observations) in observations.iter().enumerate() {
            let mut beliefs: Vec<(NodeId, Option<f64>)> =
                Vec::with_capacity(shard_observations.len());
            for &(id, observation) in shard_observations {
                let action = match observation {
                    NodeReport::Silent => {
                        beliefs.push((id, None));
                        continue;
                    }
                    NodeReport::Sample(alerts) => {
                        self.controller(shard, id).observe_and_decide(alerts)
                    }
                    NodeReport::Events(events) => self.controller(shard, id).observe_events(events),
                };
                let controller = self
                    .controllers
                    .get(&(shard, id))
                    .expect("controller exists");
                beliefs.push((id, Some(controller.belief())));
                if action == NodeAction::Recover {
                    requests.push((shard, id, controller.last_request_belief()));
                }
            }
            report.beliefs.push(beliefs);
        }
        // Global budget: highest deciding beliefs first, fleet-wide; at
        // most k recoveries actuate per tick, refusals do not consume a
        // slot, and everything else is deferred (re-fires next tick).
        requests.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
        });
        report.requested = requests.iter().map(|&(shard, id, _)| (shard, id)).collect();
        let slots = self.config.parallel_recoveries.max(1);
        for (shard, id, _) in requests {
            if report.recovered.len() < slots && actuators[shard].recover(id) {
                if let Some(controller) = self.controllers.get_mut(&(shard, id)) {
                    controller.notify_recovered();
                }
                report.recovered.push((shard, id));
            } else {
                if let Some(controller) = self.controllers.get_mut(&(shard, id)) {
                    controller.notify_deferred();
                }
                report.deferred.push((shard, id));
            }
        }
        // Global level: one system controller over the concatenated belief
        // report. Evictions route back to the owning shard; the JOIN spare
        // goes to the neediest shard.
        if let Some(system) = &mut self.system {
            let mut index_map: Vec<(usize, NodeId)> = Vec::new();
            let mut reports: Vec<Option<f64>> = Vec::new();
            for (shard, beliefs) in report.beliefs.iter().enumerate() {
                for &(id, belief) in beliefs {
                    index_map.push((shard, id));
                    reports.push(belief);
                }
            }
            let decision = system.decide(&reports, rng);
            report.estimated_healthy = Some(decision.estimated_healthy);
            let mut evict: Vec<(usize, NodeId)> = decision
                .evict
                .iter()
                .filter_map(|&index| index_map.get(index).copied())
                .collect();
            evict.sort_unstable();
            for (shard, id) in evict {
                if actuators[shard].contains(id)
                    && actuators[shard].replica_count() > self.config.min_replicas_per_shard
                    && actuators[shard].evict(id)
                {
                    self.controllers.remove(&(shard, id));
                    report.evicted.push((shard, id));
                }
            }
            if decision.add_node {
                let total: usize = actuators.iter().map(|a| a.replica_count()).sum();
                if total < self.config.max_total_replicas {
                    // Neediest shard: fewest healthy-looking reporters,
                    // ties broken by smallest membership then shard index.
                    let target = report
                        .beliefs
                        .iter()
                        .enumerate()
                        .filter(|&(shard, _)| {
                            actuators[shard].replica_count() < self.config.max_replicas_per_shard
                        })
                        .min_by_key(|&(shard, beliefs)| {
                            let healthy = beliefs
                                .iter()
                                .filter(|(_, b)| b.is_some_and(|b| b < 0.5))
                                .count();
                            (healthy, actuators[shard].replica_count(), shard)
                        })
                        .map(|(shard, _)| shard);
                    if let Some(shard) = target {
                        if let Some(id) = actuators[shard].join() {
                            self.controller(shard, id);
                            report.joined = Some((shard, id));
                        }
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    struct FakeShard {
        members: BTreeSet<NodeId>,
        next: NodeId,
        refuse_recovery: bool,
        recovered: Vec<NodeId>,
    }

    impl FakeShard {
        fn new(n: NodeId) -> Self {
            FakeShard {
                members: (0..n).collect(),
                next: n,
                refuse_recovery: false,
                recovered: Vec::new(),
            }
        }
    }

    impl ClusterActuator for FakeShard {
        fn replica_count(&self) -> usize {
            self.members.len()
        }
        fn contains(&self, node: NodeId) -> bool {
            self.members.contains(&node)
        }
        fn recover(&mut self, node: NodeId) -> bool {
            if self.refuse_recovery || !self.members.contains(&node) {
                return false;
            }
            self.recovered.push(node);
            true
        }
        fn join(&mut self) -> Option<NodeId> {
            let id = self.next;
            self.next += 1;
            self.members.insert(id);
            Some(id)
        }
        fn evict(&mut self, node: NodeId) -> bool {
            self.members.remove(&node)
        }
    }

    fn fleet(k: usize, system: bool) -> FleetControlPlane {
        FleetControlPlane::new(FleetConfig {
            parallel_recoveries: k,
            system_controller: system,
            delta_r: None,
            ..FleetConfig::default()
        })
        .unwrap()
    }

    /// Events observations for a two-shard fleet: shard 0 node 1 sees a
    /// dense burst, shard 1 node 2 a slightly sparser one; everyone else is
    /// quiet.
    fn two_shard_observations<'a>(
        shards: &[FakeShard],
        hot: &'a [u64],
        warm: &'a [u64],
        quiet: &'a [u64],
    ) -> Vec<Vec<(NodeId, NodeReport<'a>)>> {
        shards
            .iter()
            .enumerate()
            .map(|(shard, fake)| {
                fake.members
                    .iter()
                    .map(|&id| {
                        let report = if shard == 0 && id == 1 {
                            NodeReport::Events(hot)
                        } else if shard == 1 && id == 2 {
                            NodeReport::Events(warm)
                        } else {
                            NodeReport::Events(quiet)
                        };
                        (id, report)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn global_budget_prioritizes_the_higher_belief_shard_and_defers_the_other() {
        // Global k = 1 with simultaneous compromises in two shards: the
        // shard whose controller decided on the higher belief recovers
        // first; the deferred shard's request genuinely re-fires on the
        // next tick (the cross-shard extension of PR 4's notify_deferred
        // coverage).
        let mut plane = fleet(1, false);
        let mut shards = [FakeShard::new(4), FakeShard::new(4)];
        let mut rng = StdRng::seed_from_u64(7);
        let hot = [10u64, 10, 10, 10, 10, 10];
        let warm = [10u64, 10, 10, 10];
        let quiet = [0u64];
        let mut first: Option<FleetTickReport> = None;
        for _ in 0..10 {
            let observations = two_shard_observations(&shards, &hot, &warm, &quiet);
            let (left, right) = shards.split_at_mut(1);
            let mut actuators: Vec<&mut dyn ClusterActuator> = vec![&mut left[0], &mut right[0]];
            let tick = plane.tick(&observations, &mut actuators, &mut rng);
            if tick.requested.len() >= 2 {
                first = Some(tick);
                break;
            }
            assert!(
                tick.recovered.len() <= 1,
                "the global k = 1 budget bounds per-tick recoveries"
            );
        }
        let first = first.expect("both compromises must eventually request");
        // Priority order: the denser burst (shard 0, node 1) decided on a
        // higher belief and wins the single slot.
        assert_eq!(first.requested[0], (0, 1));
        assert_eq!(first.recovered, vec![(0, 1)]);
        assert!(first.deferred.contains(&(1, 2)), "{first:?}");

        // The deferred shard re-fires immediately on the next tick and now
        // wins the freed slot.
        let observations = two_shard_observations(&shards, &quiet, &quiet, &quiet);
        let (left, right) = shards.split_at_mut(1);
        let mut actuators: Vec<&mut dyn ClusterActuator> = vec![&mut left[0], &mut right[0]];
        let tick = plane.tick(&observations, &mut actuators, &mut rng);
        assert!(
            tick.recovered.contains(&(1, 2)),
            "the deferred shard must recover next tick: {tick:?}"
        );
        assert_eq!(shards[0].recovered, vec![1]);
        assert_eq!(shards[1].recovered, vec![2]);
    }

    #[test]
    fn refused_recoveries_do_not_consume_the_global_budget() {
        let mut plane = fleet(1, false);
        let mut shards = [FakeShard::new(4), FakeShard::new(4)];
        shards[0].refuse_recovery = true;
        let mut rng = StdRng::seed_from_u64(9);
        let hot = [10u64, 10, 10, 10, 10, 10];
        let warm = [10u64, 10, 10, 10];
        let quiet = [0u64];
        let mut recovered_other = false;
        for _ in 0..10 {
            let observations = two_shard_observations(&shards, &hot, &warm, &quiet);
            let (left, right) = shards.split_at_mut(1);
            let mut actuators: Vec<&mut dyn ClusterActuator> = vec![&mut left[0], &mut right[0]];
            let tick = plane.tick(&observations, &mut actuators, &mut rng);
            if tick.recovered.contains(&(1, 2)) {
                // Shard 0's refusal must not have eaten the only slot.
                recovered_other = true;
                assert!(tick.deferred.contains(&(0, 1)), "{tick:?}");
                break;
            }
        }
        assert!(
            recovered_other,
            "a refused recovery must hand the slot to the next shard"
        );
        assert!(shards[0].recovered.is_empty());
    }

    #[test]
    fn fleet_system_level_evicts_across_shards_and_joins_the_neediest() {
        let mut plane = FleetControlPlane::new(FleetConfig {
            system_controller: true,
            min_replicas_per_shard: 3,
            max_replicas_per_shard: 8,
            max_total_replicas: 12,
            // f = 4 over the 8-replica fleet with a strict availability
            // target: Algorithm 2 adds whenever ≤ 6 nodes are estimated
            // healthy — exactly the fleet's state once one replica stops
            // reporting — and never at ≥ 7, so the spare allocation is
            // prompt and drift-free.
            fault_threshold: 4,
            availability_target: 0.98,
            ..FleetConfig::default()
        })
        .unwrap();
        let mut shards = [FakeShard::new(4), FakeShard::new(4)];
        let mut rng = StdRng::seed_from_u64(3);
        // Shard 1's node 2 stops reporting: the fleet controller must evict
        // it from shard 1 (not shard 0) and route the JOIN spare to the
        // shard that lost a member.
        let mut evicted = false;
        let mut joined_shard = None;
        for _ in 0..25 {
            let observations: Vec<Vec<(NodeId, NodeReport<'_>)>> = shards
                .iter()
                .enumerate()
                .map(|(shard, fake)| {
                    fake.members
                        .iter()
                        .map(|&id| {
                            if shard == 1 && id == 2 && !evicted {
                                (id, NodeReport::Silent)
                            } else {
                                (id, NodeReport::Sample(2))
                            }
                        })
                        .collect()
                })
                .collect();
            let (left, right) = shards.split_at_mut(1);
            let mut actuators: Vec<&mut dyn ClusterActuator> = vec![&mut left[0], &mut right[0]];
            let tick = plane.tick(&observations, &mut actuators, &mut rng);
            if tick.evicted.contains(&(1, 2)) {
                evicted = true;
                assert!(plane.controller_of(1, 2).is_none(), "controller dropped");
            }
            if let Some((shard, _)) = tick.joined {
                joined_shard = Some(shard);
            }
            if evicted && joined_shard.is_some() {
                break;
            }
        }
        assert!(evicted, "the silent node must be evicted from its shard");
        assert!(!shards[1].contains(2));
        assert!(shards[0].contains(2), "shard 0's node 2 must be untouched");
        assert_eq!(
            joined_shard,
            Some(1),
            "the JOIN spare must go to the shard that lost a member"
        );
    }
}
