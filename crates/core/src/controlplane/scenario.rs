//! The `controlled/*` scenarios: the live two-level loop as a sweepable
//! workload.
//!
//! [`ControlledServiceScenario`] runs the **threaded** MinBFT service under
//! a scripted intrusion schedule while the [`ControlPlane`] closes the loop
//! in real time: every `control_interval` seconds each replica's IDS
//! observation channel emits a batch of weighted alert events (sampled from
//! the paper's [`ObservationModel`] distributions — compromised replicas
//! draw from the compromised distribution), the node controllers fold the
//! events through the incremental belief tracker and actuate live recovery,
//! and the system controller evicts crashed replicas and restores `n`
//! through JOIN — all over the running cluster's transport.
//!
//! The simnet twin (`controlled/sim-intrusion-burst`, registered by
//! [`register_controlled_scenarios`]) exercises the *same*
//! [`ControlPlane::tick`] against the simulated cluster under the full
//! agreement/validity/recovery-bound oracle suite, which is what makes the
//! live loop trustworthy.

use crate::controlplane::runtime::{ControlPlane, ControlPlaneConfig, NodeReport};
use crate::error::Result;
use crate::metrics::MetricReport;
use crate::node_model::NodeState;
use crate::observation::ObservationModel;
use crate::runtime::{AsMetricReport, MetricScenario, Scenario, ScenarioRegistry};
use crate::simnet::{FaultKind, ScheduleConfig, SimnetScenario};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};
use tolerance_consensus::{
    ByzantineMode, ClientDriver, NodeId, ThreadedCluster, ThreadedServiceConfig,
};

/// How an injected intrusion manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum IntrusionMode {
    /// The replica is compromised (goes Silent) but keeps reporting: the
    /// *node controller* must detect it through the shifted IDS stream and
    /// actuate a live recovery.
    Compromise,
    /// The replica crashes outright (Silent + no belief reports): the
    /// *system controller* must evict it and restore `n` via JOIN.
    Crash,
}

/// One scripted intrusion of the workload generator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IntrusionEvent {
    /// Seconds into the run at which the intrusion lands.
    pub at: f64,
    /// Index into the membership (at injection time) of the target.
    pub replica_index: usize,
    /// What the intrusion does.
    pub mode: IntrusionMode,
}

/// Configuration of a controlled threaded-service run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControlledServiceConfig {
    /// The underlying threaded service (replicas, clients, batching, …).
    pub service: ThreadedServiceConfig,
    /// Whether the control plane runs at all (`false` = uncontrolled
    /// baseline: intrusions land and nothing repairs them).
    pub controller: bool,
    /// Wall-clock seconds between control ticks.
    pub control_interval: f64,
    /// IDS events sampled per replica per tick (the observation channel's
    /// event rate).
    pub events_per_tick: usize,
    /// The control-plane parameters (thresholds, `Δ_R`, `k`, system level).
    pub control: ControlPlaneConfig,
    /// The scripted intrusion schedule.
    pub intrusions: Vec<IntrusionEvent>,
}

impl Default for ControlledServiceConfig {
    fn default() -> Self {
        ControlledServiceConfig {
            service: ThreadedServiceConfig {
                // n = 5 tolerates f = 2, so a simultaneous compromise and
                // crash leave a serving majority while both control levels
                // repair the damage.
                replicas: 5,
                duration: 1.2,
                ..ThreadedServiceConfig::default()
            },
            controller: true,
            control_interval: 0.02,
            events_per_tick: 3,
            control: ControlPlaneConfig {
                // Wall-clock ticks are much denser than simnet steps, so
                // the BTR clock is correspondingly longer.
                delta_r: Some(200),
                min_replicas: 4,
                max_replicas: 8,
                // f = 2 with a strict availability target: Algorithm 2
                // adds with probability 0.9 per tick whenever ≤ 3 nodes
                // are estimated healthy — exactly the state after the
                // crashed replica is evicted (n = 4) — and never at ≥ 4,
                // so the JOIN restoration is prompt and the cluster does
                // not drift upward while healthy.
                fault_threshold: 2,
                availability_target: 0.98,
                ..ControlPlaneConfig::default()
            },
            intrusions: vec![
                IntrusionEvent {
                    at: 0.25,
                    replica_index: 1,
                    mode: IntrusionMode::Compromise,
                },
                IntrusionEvent {
                    at: 0.5,
                    replica_index: 2,
                    mode: IntrusionMode::Crash,
                },
            ],
        }
    }
}

/// Outcome of one controlled run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ControlledServiceReport {
    /// Whether the control plane was enabled.
    pub controller: bool,
    /// Requests completed by an f+1 reply quorum.
    pub completed_requests: u64,
    /// Wall-clock duration of the run.
    pub duration: f64,
    /// Completed requests per second.
    pub requests_per_second: f64,
    /// Mean request latency in seconds.
    pub mean_latency: f64,
    /// Intrusions injected (compromises + crashes).
    pub intrusions: usize,
    /// Node-controller recoveries actuated on the live cluster.
    pub recoveries: u64,
    /// Mean seconds from compromise injection to actuated recovery
    /// (`None` when nothing was recovered).
    pub mean_recovery_latency: Option<f64>,
    /// Compromised replicas never recovered by run end.
    pub unrecovered: usize,
    /// System-controller evictions actuated on the live cluster.
    pub evictions: u64,
    /// System-controller JOINs actuated on the live cluster.
    pub joins: u64,
    /// Membership size at run end.
    pub final_replicas: usize,
    /// Whether the final replica logs were prefix-consistent.
    pub consistent: bool,
}

impl AsMetricReport for ControlledServiceReport {
    fn metric_report(&self) -> MetricReport {
        MetricReport {
            availability: if self.consistent && self.completed_requests > 0 {
                1.0
            } else {
                0.0
            },
            time_to_recovery: self.mean_recovery_latency.unwrap_or(0.0),
            recovery_frequency: if self.duration > 0.0 {
                self.recoveries as f64 / self.duration
            } else {
                0.0
            },
            steps: self.completed_requests,
        }
    }
}

/// A sweepable controlled threaded-service scenario.
#[derive(Debug, Clone)]
pub struct ControlledServiceScenario {
    label: String,
    config: ControlledServiceConfig,
}

impl ControlledServiceScenario {
    /// Wraps a configuration under a label.
    pub fn new(label: impl Into<String>, config: ControlledServiceConfig) -> Self {
        ControlledServiceScenario {
            label: label.into(),
            config,
        }
    }

    /// The run configuration.
    pub fn config(&self) -> &ControlledServiceConfig {
        &self.config
    }
}

impl Scenario for ControlledServiceScenario {
    type Output = ControlledServiceReport;

    fn label(&self) -> String {
        self.label.clone()
    }

    fn run(&self, seed: u64) -> Result<ControlledServiceReport> {
        run_controlled_service(&self.config, seed)
    }
}

/// Runs the threaded service under the scripted intrusion schedule with the
/// control plane (optionally) closing the loop live. See the module docs.
///
/// # Errors
///
/// Propagates control-plane construction failures.
pub fn run_controlled_service(
    config: &ControlledServiceConfig,
    seed: u64,
) -> Result<ControlledServiceReport> {
    let service = ThreadedServiceConfig {
        seed,
        ..config.service
    };
    let mut cluster = ThreadedCluster::new(&service);
    let mut driver = ClientDriver::new(&mut cluster, service.clients);
    let duration = service.duration;
    let driver_thread = std::thread::spawn(move || {
        driver.run_for(duration);
        let _ = driver.drain(2.0);
        driver
    });

    let mut plane = ControlPlane::new(config.control.clone())?;
    let alert_model = ObservationModel::paper_default();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc011_7201_b1a4_e5e3);
    let mut pending: Vec<IntrusionEvent> = config.intrusions.clone();
    pending.sort_by(|a, b| a.at.partial_cmp(&b.at).unwrap_or(std::cmp::Ordering::Equal));
    let mut pending = pending.into_iter().peekable();

    let mut compromised: BTreeMap<NodeId, f64> = BTreeMap::new();
    let mut crashed: BTreeSet<NodeId> = BTreeSet::new();
    let mut recovery_latencies: Vec<f64> = Vec::new();
    let mut recoveries: u64 = 0;
    let mut evictions: u64 = 0;
    let mut joins: u64 = 0;
    let mut intrusions = 0usize;

    let start = Instant::now();
    while start.elapsed().as_secs_f64() < duration {
        std::thread::sleep(Duration::from_secs_f64(config.control_interval.max(1e-3)));
        let now = start.elapsed().as_secs_f64();
        // Inject due intrusions (the workload generator's fault channel).
        while let Some(event) = pending.peek().copied() {
            if event.at > now {
                break;
            }
            pending.next();
            let members = cluster.membership();
            if members.is_empty() {
                continue;
            }
            let node = members[event.replica_index % members.len()];
            if cluster.compromise(node, ByzantineMode::Silent) {
                intrusions += 1;
                match event.mode {
                    IntrusionMode::Compromise => {
                        compromised.entry(node).or_insert(now);
                    }
                    IntrusionMode::Crash => {
                        crashed.insert(node);
                    }
                }
            }
        }
        if !config.controller {
            continue;
        }
        // The IDS observation channel: per replica, a batch of weighted
        // alert events sampled from the state-conditional distribution.
        let members = cluster.membership();
        let events: Vec<Vec<u64>> = members
            .iter()
            .map(|id| {
                if crashed.contains(id) {
                    return Vec::new();
                }
                let state = if compromised.contains_key(id) {
                    NodeState::Compromised
                } else {
                    NodeState::Healthy
                };
                (0..config.events_per_tick.max(1))
                    .map(|_| alert_model.sample(state, &mut rng))
                    .collect()
            })
            .collect();
        let observations: Vec<(NodeId, NodeReport<'_>)> = members
            .iter()
            .enumerate()
            .map(|(index, &id)| {
                if crashed.contains(&id) {
                    (id, NodeReport::Silent)
                } else {
                    (id, NodeReport::Events(&events[index]))
                }
            })
            .collect();
        let tick = plane.tick(&observations, &mut cluster, &mut rng);
        recoveries += tick.recovered.len() as u64;
        for id in &tick.recovered {
            if let Some(injected_at) = compromised.remove(id) {
                recovery_latencies.push(now - injected_at);
            }
        }
        for id in &tick.evicted {
            evictions += 1;
            crashed.remove(id);
            compromised.remove(id);
        }
        if tick.joined.is_some() {
            joins += 1;
        }
    }

    // The submission window closes here; the drain below only collects
    // replies to requests submitted within it, so throughput divides by
    // the window, not by drain wall-time (which differs between the
    // controlled and the uncontrolled cell and would bias their ratio).
    let serving_window = start.elapsed().as_secs_f64().min(duration.max(1e-9));
    let mut driver = driver_thread.join().expect("driver thread finishes");
    let _ = driver.drain(1.0);
    let client_report = driver.report();
    let final_replicas = cluster.num_replicas();
    let snapshots = cluster.shutdown();
    let consistent = tolerance_consensus::threaded::snapshots_consistent(&snapshots);
    let mean_recovery_latency = if recovery_latencies.is_empty() {
        None
    } else {
        Some(recovery_latencies.iter().sum::<f64>() / recovery_latencies.len() as f64)
    };
    Ok(ControlledServiceReport {
        controller: config.controller,
        completed_requests: client_report.completed,
        duration: serving_window,
        requests_per_second: client_report.completed as f64 / serving_window,
        mean_latency: client_report.mean_latency(),
        intrusions,
        recoveries,
        mean_recovery_latency,
        unrecovered: compromised.len(),
        evictions,
        joins,
        final_replicas,
        consistent,
    })
}

/// The simnet twin: the same control logic (node + system controllers via
/// [`ControlPlane::tick`]) against the simulated cluster under an
/// intrusion-heavy chaos schedule, checked by the full oracle suite.
pub fn sim_intrusion_burst_config() -> ScheduleConfig {
    ScheduleConfig {
        horizon: 40,
        intensity: 0.5,
        system_controller: true,
        enabled: vec![
            FaultKind::IntrusionBurst,
            FaultKind::CrashReplica,
            FaultKind::ByzantineFlip,
            FaultKind::ClientBurst,
        ],
        ..ScheduleConfig::default()
    }
}

/// Registers the built-in controlled scenarios:
///
/// * `controlled/intrusion-burst` — the live loop on ThreadedTransport:
///   intrusion + crash injections, node controller recovering, system
///   controller restoring `n` via JOIN (wall-clock).
/// * `controlled/uncontrolled-baseline` — the same injections with the
///   control plane off (the comparison cell of the `control_loop` bench).
/// * `controlled/sim-intrusion-burst` — the deterministic twin on
///   SimNetwork under the full simnet oracle suite.
pub fn register_controlled_scenarios(registry: &mut ScenarioRegistry) {
    registry.register_wall_clock("controlled/intrusion-burst", || {
        Ok(Box::new(ControlledServiceScenario::new(
            "controlled/intrusion-burst",
            ControlledServiceConfig::default(),
        )) as Box<dyn MetricScenario>)
    });
    registry.register_wall_clock("controlled/uncontrolled-baseline", || {
        Ok(Box::new(ControlledServiceScenario::new(
            "controlled/uncontrolled-baseline",
            ControlledServiceConfig {
                controller: false,
                ..ControlledServiceConfig::default()
            },
        )) as Box<dyn MetricScenario>)
    });
    registry.register("controlled/sim-intrusion-burst", || {
        Ok(Box::new(SimnetScenario::new(
            "controlled/sim-intrusion-burst",
            sim_intrusion_burst_config(),
        )) as Box<dyn MetricScenario>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runner;

    #[test]
    fn controlled_scenarios_register() {
        let mut registry = ScenarioRegistry::new();
        register_controlled_scenarios(&mut registry);
        for name in [
            "controlled/intrusion-burst",
            "controlled/uncontrolled-baseline",
            "controlled/sim-intrusion-burst",
        ] {
            assert!(registry.contains(name), "missing {name}");
        }
    }

    #[test]
    fn sim_twin_passes_the_oracles_in_a_quick_sweep() {
        let mut registry = ScenarioRegistry::new();
        register_controlled_scenarios(&mut registry);
        let run = registry
            .run("controlled/sim-intrusion-burst", &Runner::serial(), &[0, 1])
            .expect("oracle-checked controlled runs pass");
        assert_eq!(run.reports.len(), 2);
    }

    #[test]
    fn live_loop_recovers_compromise_and_restores_n() {
        // The acceptance scenario in miniature: on ThreadedTransport, the
        // node controller must recover the compromised replica and the
        // system controller must evict the crashed one and restore n via
        // JOIN — while the service keeps completing requests. Wall-clock
        // runs race the OS scheduler, so a loaded host gets up to three
        // attempts before the expectations are treated as a product bug
        // (the deterministic twin gates the same behaviour seed-exactly).
        let config = ControlledServiceConfig::default();
        let mut report = run_controlled_service(&config, 7).expect("controlled run");
        for retry_seed in [8, 9] {
            let repaired = report.recoveries >= 1
                && report.unrecovered == 0
                && report.evictions >= 1
                && report.joins >= 1;
            if repaired {
                break;
            }
            eprintln!("wall-clock attempt incomplete, retrying: {report:?}");
            report = run_controlled_service(&config, retry_seed).expect("controlled run");
        }
        assert!(report.controller);
        assert_eq!(report.intrusions, 2);
        assert!(
            report.completed_requests > 0,
            "the service must keep serving: {report:?}"
        );
        assert!(report.consistent, "logs diverged: {report:?}");
        assert!(
            report.recoveries >= 1,
            "the node controller must actuate a live recovery: {report:?}"
        );
        assert_eq!(
            report.unrecovered, 0,
            "compromise left standing: {report:?}"
        );
        assert!(
            report.evictions >= 1,
            "the crashed replica must be evicted: {report:?}"
        );
        assert!(
            report.joins >= 1,
            "the system controller must restore n via JOIN: {report:?}"
        );
        assert!(
            report.final_replicas >= config.control.min_replicas,
            "n must be restored: {report:?}"
        );
        assert!(report.mean_recovery_latency.unwrap_or(f64::MAX) < 2.0);
    }

    #[test]
    fn uncontrolled_baseline_leaves_the_compromise_standing() {
        let config = ControlledServiceConfig {
            controller: false,
            ..ControlledServiceConfig::default()
        };
        let report = run_controlled_service(&config, 9).expect("baseline run");
        assert!(!report.controller);
        assert_eq!(report.recoveries, 0);
        assert_eq!(report.joins, 0);
        assert!(report.unrecovered >= 1, "nothing repairs the compromise");
    }
}
