//! The online two-level control plane: one runtime, two transports.
//!
//! Until PR 4, the paper's feedback controllers
//! ([`crate::controller::NodeController`] per replica,
//! [`crate::controller::SystemController`] globally) only steered the
//! *simulated* cluster inside the simnet harness, while the fast threaded
//! data plane ran uncontrolled. This module closes the loop on the live
//! service:
//!
//! * [`actuator::ClusterActuator`] — the unified actuation interface of
//!   both control levels: per-node **recovery** (restart + state transfer)
//!   and system-level **JOIN/EVICT** reconfiguration. Implemented by the
//!   simulated [`tolerance_consensus::MinBftCluster`] (direct method calls,
//!   deterministic, oracle-checked by simnet) and by the live
//!   [`tolerance_consensus::ThreadedCluster`] (control messages on the
//!   transport, wall-clock).
//! * [`runtime::ControlPlane`] — the transport-agnostic control runtime:
//!   per-replica belief tracking (single alert samples or whole IDS event
//!   streams through the incremental tracker of
//!   [`tolerance_pomdp::IncrementalBelief`]), the k-parallel-recovery
//!   constraint of Proposition 1, and the Algorithm-2 replication decision,
//!   all actuated through whichever [`actuator::ClusterActuator`] is
//!   plugged in. The simnet executor drives the *same* `tick` as the live
//!   threaded scenario.
//! * [`scenario::ControlledServiceScenario`] — the `controlled/*` registry
//!   scenarios: a threaded MinBFT service under a scripted intrusion burst
//!   with the control plane closing the loop live, plus the simnet twin
//!   that passes the full oracle suite.
//! * [`fleet::FleetControlPlane`] — the sharded-fleet runtime: per-shard
//!   node controllers competing for one **global** recovery budget `k`
//!   (priority by deciding belief across shards), and one system
//!   controller per fleet evicting crashed replicas wherever they live and
//!   allocating JOIN spares to the neediest shard.
//! * [`autotune::AutotuneController`] — the *third* feedback loop, on the
//!   data plane itself: AIMD on leader batching and client concurrency
//!   (re-clamped online through the batch-fragmentation floor), retry
//!   budgets against retransmit storms, and mailbox-depth backpressure
//!   deciding admission. Deterministic per-window ticks in simnet, a real
//!   [`autotune::AutotuneLoop`] thread on the live planes.

pub mod actuator;
pub mod autotune;
pub mod fleet;
pub mod runtime;
pub mod scenario;

pub use actuator::ClusterActuator;
pub use autotune::{
    Admission, AutotuneConfig, AutotuneController, AutotuneDecision, AutotuneLoop,
    AutotuneObservation,
};
pub use fleet::{FleetConfig, FleetControlPlane, FleetTickReport};
pub use runtime::{ControlPlane, ControlPlaneConfig, NodeReport, TickReport};
pub use scenario::{
    register_controlled_scenarios, run_controlled_service, sim_intrusion_burst_config,
    ControlledServiceConfig, ControlledServiceReport, ControlledServiceScenario, IntrusionEvent,
    IntrusionMode,
};
