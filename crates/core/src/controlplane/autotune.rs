//! The third feedback loop: data-plane self-tuning.
//!
//! The paper's two control levels steer *security* state — which replica to
//! recover, when to change the replication factor. Every data-plane knob
//! (leader batch size, batch flush delay, client concurrency) stayed a
//! static constant, even though throughput is sharply batch-sensitive. This
//! module closes a third loop in the same Observe → Decide → Act shape:
//!
//! | law          | observes                 | actuates                     |
//! |--------------|--------------------------|------------------------------|
//! | AIMD         | windowed p99 latency     | `batch_size` + `batch_delay` |
//! | AIMD         | windowed p99 + depth     | client concurrency cap       |
//! | retry budget | completions per client   | retransmission rate          |
//! | backpressure | replica mailbox depth    | admission (delay / shed)     |
//!
//! The controller itself ([`AutotuneController`]) is a pure deterministic
//! state machine: the same observation sequence yields the same decision
//! sequence, so the simnet executor ticks it per window inside the
//! per-shard sub-executor (seeded, byte-identical across workers,
//! shrinkable), while the live planes run it on a real thread
//! ([`AutotuneLoop`]) fed by [`SharedTuning`] metrics.
//!
//! **The online clamp.** Whatever the AIMD laws do, the actuated pair is
//! re-clamped through the batching fragmentation floor
//! (`batch_delay ≥ batch_size × (processing_time + signature_time)`,
//! [`MinBftConfig::min_batch_delay`]): a flush window shorter than the time
//! to fill the batch silently degrades every batch to a partial flush. The
//! controller therefore can never emit a pair
//! [`MinBftConfig::validate`] rejects — property-checked across the
//! reachable state space in `tests/properties.rs`.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use tolerance_consensus::metrics::SharedTuning;
use tolerance_consensus::MinBftConfig;

/// Configuration of the data-plane autotune controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutotuneConfig {
    /// The p99 latency target in seconds: additive increase below it,
    /// multiplicative decrease above it.
    pub p99_target: f64,
    /// Initial and bounding batch sizes.
    pub initial_batch: usize,
    /// Lower batch-size bound (≥ 1).
    pub min_batch: usize,
    /// Upper batch-size bound.
    pub max_batch: usize,
    /// Additive batch-size increase per calm window.
    pub batch_step: usize,
    /// Initial client concurrency cap.
    pub initial_concurrency: usize,
    /// Lower concurrency bound (≥ 1).
    pub min_concurrency: usize,
    /// Upper concurrency bound.
    pub max_concurrency: usize,
    /// Additive concurrency increase per calm window.
    pub concurrency_step: usize,
    /// Multiplicative decrease factor applied on overload, in `(0, 1)`.
    pub decrease_factor: f64,
    /// Queue depth at which admission switches from accept to delay (and
    /// the AIMD laws treat the window as overloaded).
    pub delay_watermark: u64,
    /// Queue depth at which admission sheds instead of delaying.
    pub shed_watermark: u64,
    /// The configured flush delay floor: the actuated `batch_delay` is
    /// `max(base_batch_delay, fragmentation floor)`.
    pub base_batch_delay: f64,
    /// Per-request processing cost of the plane being tuned (the
    /// fragmentation-floor term; must match the cluster's config).
    pub processing_time: f64,
    /// Per-signature cost of the plane being tuned (the other floor term).
    pub signature_time: f64,
    /// Simnet: steps per observation window (the per-shard tick cadence).
    pub window_steps: u32,
    /// Live planes: seconds per observation window.
    pub window_seconds: f64,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        AutotuneConfig {
            p99_target: 0.25,
            initial_batch: 1,
            min_batch: 1,
            max_batch: 256,
            batch_step: 4,
            initial_concurrency: 4,
            min_concurrency: 1,
            max_concurrency: 64,
            concurrency_step: 1,
            decrease_factor: 0.5,
            delay_watermark: 64,
            shed_watermark: 256,
            base_batch_delay: 0.005,
            processing_time: 0.0008,
            signature_time: 0.0,
            window_steps: 2,
            window_seconds: 0.05,
        }
    }
}

impl AutotuneConfig {
    /// A sanitized copy: bounds ordered, factors finite and in range. The
    /// controller only ever runs on sanitized configurations, which is what
    /// makes the online-clamp property hold for arbitrary inputs.
    pub fn sanitized(&self) -> AutotuneConfig {
        let finite = |value: f64, fallback: f64| if value.is_finite() { value } else { fallback };
        let min_batch = self.min_batch.max(1);
        let max_batch = self.max_batch.max(min_batch);
        let min_concurrency = self.min_concurrency.max(1);
        let max_concurrency = self.max_concurrency.max(min_concurrency);
        AutotuneConfig {
            p99_target: finite(self.p99_target, 0.25).max(1e-6),
            initial_batch: self.initial_batch.clamp(min_batch, max_batch),
            min_batch,
            max_batch,
            batch_step: self.batch_step.max(1),
            initial_concurrency: self
                .initial_concurrency
                .clamp(min_concurrency, max_concurrency),
            min_concurrency,
            max_concurrency,
            concurrency_step: self.concurrency_step.max(1),
            decrease_factor: finite(self.decrease_factor, 0.5).clamp(0.05, 0.95),
            delay_watermark: self.delay_watermark.max(1),
            shed_watermark: self.shed_watermark.max(self.delay_watermark.max(1)),
            base_batch_delay: finite(self.base_batch_delay, 0.005).max(0.0),
            processing_time: finite(self.processing_time, 0.0).max(0.0),
            signature_time: finite(self.signature_time, 0.0).max(0.0),
            window_steps: self.window_steps.max(1),
            window_seconds: finite(self.window_seconds, 0.05).max(0.001),
        }
    }
}

/// What the admission control law tells the router to do with new demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Admission {
    /// Queue depth below the delay watermark: admit everything.
    Accept,
    /// Depth between the watermarks: defer new demand to the backlog
    /// instead of submitting it (it retries next step/window).
    Delay,
    /// Depth at or above the shed watermark: drop new demand outright.
    Shed,
}

/// One observation window, as seen by the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutotuneObservation {
    /// Requests completed during the window.
    pub completed: u64,
    /// The window's p99 latency in seconds (0.0 when no sample).
    pub p99: f64,
    /// Queue depth at the window boundary (replica mailbox depth on the
    /// live planes, network in-flight count in the simulation).
    pub queue_depth: u64,
    /// Retransmissions the retry budget suppressed during the window.
    pub suppressed: u64,
}

/// The actuated knob set a window tick produces (serialized into the
/// sharded run report, so decision replay is part of the determinism
/// contract).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutotuneDecision {
    /// The actuated leader batch size.
    pub batch_size: usize,
    /// The actuated flush delay (already clamped to the fragmentation
    /// floor).
    pub batch_delay: f64,
    /// The actuated client concurrency cap.
    pub concurrency: usize,
    /// The admission verdict for the next window.
    pub admission: Admission,
    /// Whether the window was judged overloaded (the multiplicative
    /// branch).
    pub overloaded: bool,
}

/// The deterministic AIMD + backpressure controller.
#[derive(Debug, Clone, PartialEq)]
pub struct AutotuneController {
    config: AutotuneConfig,
    batch_size: usize,
    concurrency: usize,
    admission: Admission,
}

impl AutotuneController {
    /// Builds a controller from a (sanitized copy of the) configuration.
    pub fn new(config: &AutotuneConfig) -> Self {
        let config = config.sanitized();
        AutotuneController {
            batch_size: config.initial_batch,
            concurrency: config.initial_concurrency,
            admission: Admission::Accept,
            config,
        }
    }

    /// The sanitized configuration in force.
    pub fn config(&self) -> &AutotuneConfig {
        &self.config
    }

    /// The currently actuated batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// The currently actuated flush delay: the configured base, raised to
    /// the fragmentation floor of the current batch size. By construction
    /// this pair always passes [`MinBftConfig::validate`].
    pub fn batch_delay(&self) -> f64 {
        let floor = if self.batch_size <= 1 {
            0.0
        } else {
            self.batch_size as f64 * (self.config.processing_time + self.config.signature_time)
        };
        self.config.base_batch_delay.max(floor)
    }

    /// The currently actuated client concurrency cap.
    pub fn concurrency(&self) -> usize {
        self.concurrency
    }

    /// The admission verdict currently in force.
    pub fn admission(&self) -> Admission {
        self.admission
    }

    /// The current knob set as a decision record.
    pub fn decision(&self, overloaded: bool) -> AutotuneDecision {
        AutotuneDecision {
            batch_size: self.batch_size,
            batch_delay: self.batch_delay(),
            concurrency: self.concurrency,
            admission: self.admission,
            overloaded,
        }
    }

    /// Consumes one observation window and produces the next knob set.
    ///
    /// * **Overloaded** (p99 above target, or queue past the delay
    ///   watermark): multiplicative decrease on batch size and concurrency.
    /// * **Calm with traffic**: additive increase on both.
    /// * **Idle** (no completions, shallow queue): hold — an empty window
    ///   is no evidence in either direction.
    pub fn observe(&mut self, observation: AutotuneObservation) -> AutotuneDecision {
        let config = &self.config;
        let overloaded = (observation.completed > 0 && observation.p99 > config.p99_target)
            || observation.queue_depth >= config.delay_watermark;
        if overloaded {
            let decrease = |value: usize, min: usize| {
                (((value as f64) * config.decrease_factor).floor() as usize).max(min)
            };
            self.batch_size = decrease(self.batch_size, config.min_batch);
            self.concurrency = decrease(self.concurrency, config.min_concurrency);
        } else if observation.completed > 0 {
            self.batch_size = (self.batch_size + config.batch_step).min(config.max_batch);
            self.concurrency =
                (self.concurrency + config.concurrency_step).min(config.max_concurrency);
        }
        self.admission = if observation.queue_depth >= config.shed_watermark {
            Admission::Shed
        } else if observation.queue_depth >= config.delay_watermark {
            Admission::Delay
        } else {
            Admission::Accept
        };
        self.decision(overloaded)
    }

    /// Whether the actuated pair passes the cluster's validation with the
    /// matching cost model — the online-clamp invariant (also asserted in
    /// debug builds on every decision via the sharded executor).
    pub fn actuation_validates(&self) -> bool {
        MinBftConfig {
            batch_size: self.batch_size,
            batch_delay: self.batch_delay(),
            processing_time: self.config.processing_time,
            signature_time: self.config.signature_time,
            ..MinBftConfig::default()
        }
        .validate()
        .is_ok()
    }
}

/// The live-plane autotune thread: every `window_seconds` it drains the
/// [`SharedTuning`] observation window, reads the mailbox-depth gauge,
/// ticks the controller and publishes the actuated knobs back through the
/// shared atomics (which the replica event loops and client drivers
/// re-read each iteration).
pub struct AutotuneLoop {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<Vec<AutotuneDecision>>>,
}

impl AutotuneLoop {
    /// Spawns the loop. `depth` is the queue-depth gauge (e.g.
    /// `TransportHandle::mailbox_depth`); the initial knob set is published
    /// before the thread starts so the planes never observe untuned
    /// atomics.
    pub fn spawn<D>(mut controller: AutotuneController, tuning: Arc<SharedTuning>, depth: D) -> Self
    where
        D: Fn() -> u64 + Send + 'static,
    {
        tuning.apply(
            controller.batch_size(),
            controller.batch_delay(),
            controller.concurrency(),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let window = Duration::from_secs_f64(controller.config().window_seconds);
        let thread = std::thread::spawn(move || {
            let mut decisions = Vec::new();
            'ticks: loop {
                // Sleep in short slices so stop() returns promptly even
                // with long windows.
                let mut slept = Duration::ZERO;
                while slept < window {
                    if stop_flag.load(Ordering::Relaxed) {
                        break 'ticks;
                    }
                    let slice = Duration::from_millis(1).min(window - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
                let observed = tuning.take_window();
                let decision = controller.observe(AutotuneObservation {
                    completed: observed.completed,
                    p99: observed.latencies.quantile(0.99),
                    queue_depth: depth(),
                    suppressed: observed.suppressed,
                });
                tuning.apply(
                    decision.batch_size,
                    decision.batch_delay,
                    decision.concurrency,
                );
                decisions.push(decision);
            }
            decisions
        });
        AutotuneLoop {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the loop and returns the decision trace.
    pub fn stop(mut self) -> Vec<AutotuneDecision> {
        self.stop.store(true, Ordering::Relaxed);
        self.thread
            .take()
            .map(|thread| thread.join().expect("autotune loop panicked"))
            .unwrap_or_default()
    }
}

impl Drop for AutotuneLoop {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn calm(completed: u64) -> AutotuneObservation {
        AutotuneObservation {
            completed,
            p99: 0.01,
            queue_depth: 0,
            suppressed: 0,
        }
    }

    #[test]
    fn aimd_increases_additively_and_decreases_multiplicatively() {
        let mut controller = AutotuneController::new(&AutotuneConfig {
            initial_batch: 8,
            batch_step: 4,
            initial_concurrency: 8,
            concurrency_step: 2,
            decrease_factor: 0.5,
            p99_target: 0.1,
            ..AutotuneConfig::default()
        });
        let calm_decision = controller.observe(calm(10));
        assert_eq!(calm_decision.batch_size, 12);
        assert_eq!(calm_decision.concurrency, 10);
        assert!(!calm_decision.overloaded);
        let overload = controller.observe(AutotuneObservation {
            completed: 10,
            p99: 0.5,
            queue_depth: 0,
            suppressed: 0,
        });
        assert!(overload.overloaded);
        assert_eq!(overload.batch_size, 6);
        assert_eq!(overload.concurrency, 5);
    }

    #[test]
    fn idle_windows_hold_the_knobs() {
        let mut controller = AutotuneController::new(&AutotuneConfig {
            initial_batch: 16,
            ..AutotuneConfig::default()
        });
        let decision = controller.observe(calm(0));
        assert_eq!(decision.batch_size, 16);
        assert!(!decision.overloaded);
    }

    #[test]
    fn admission_follows_the_watermarks() {
        let mut controller = AutotuneController::new(&AutotuneConfig {
            delay_watermark: 10,
            shed_watermark: 20,
            ..AutotuneConfig::default()
        });
        for (depth, expected) in [
            (0, Admission::Accept),
            (10, Admission::Delay),
            (25, Admission::Shed),
            (3, Admission::Accept),
        ] {
            let decision = controller.observe(AutotuneObservation {
                completed: 1,
                p99: 0.01,
                queue_depth: depth,
                suppressed: 0,
            });
            assert_eq!(decision.admission, expected, "depth {depth}");
        }
    }

    #[test]
    fn actuation_always_validates_under_growth() {
        // Drive the controller to its maximum batch with a visible
        // signature cost: the clamp must track the growing floor.
        let mut controller = AutotuneController::new(&AutotuneConfig {
            max_batch: 256,
            batch_step: 16,
            processing_time: 0.001,
            signature_time: 0.002,
            base_batch_delay: 0.001,
            p99_target: 10.0,
            ..AutotuneConfig::default()
        });
        for _ in 0..64 {
            let decision = controller.observe(calm(100));
            assert!(controller.actuation_validates(), "{decision:?}");
            assert!(decision.batch_delay >= decision.batch_size as f64 * 0.003 - 1e-12);
        }
        assert_eq!(controller.batch_size(), 256);
    }

    #[test]
    fn controller_is_deterministic_in_the_observation_sequence() {
        let config = AutotuneConfig::default();
        let mut a = AutotuneController::new(&config);
        let mut b = AutotuneController::new(&config);
        for step in 0u64..50 {
            let observation = AutotuneObservation {
                completed: step % 7,
                p99: 0.01 * (step % 40) as f64,
                queue_depth: (step * 13) % 300,
                suppressed: step % 3,
            };
            assert_eq!(a.observe(observation), b.observe(observation));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn autotune_loop_publishes_decisions_to_shared_tuning() {
        let config = AutotuneConfig {
            window_seconds: 0.005,
            initial_batch: 1,
            batch_step: 8,
            p99_target: 10.0,
            ..AutotuneConfig::default()
        };
        let tuning = Arc::new(SharedTuning::new(1, 0.0, 1));
        let controller = AutotuneController::new(&config);
        let autotune = AutotuneLoop::spawn(controller, Arc::clone(&tuning), || 0);
        // Feed calm windows until the loop has demonstrably acted.
        for _ in 0..400 {
            tuning.observe_latency(0.001);
            if tuning.batch_size() > 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let decisions = autotune.stop();
        assert!(!decisions.is_empty(), "the loop must have ticked");
        assert!(
            tuning.batch_size() > 1,
            "calm traffic must grow the batch: {decisions:?}"
        );
    }
}
