//! Registry integration: fault-injection runs as ordinary scenarios.
//!
//! A [`SimnetScenario`] generates a schedule from the seed and executes it,
//! so the PR-1 runtime can sweep fault intensity across seed grids exactly
//! like any other workload — and an invariant violation surfaces as a run
//! error carrying the violated oracle.

use crate::error::{CoreError, Result};
use crate::runtime::{Scenario, ScenarioRegistry};
use crate::simnet::executor::{run_schedule, RunReport};
use crate::simnet::schedule::{FaultKind, FaultSchedule, ScheduleConfig};

/// A randomized fault-injection scenario: seed → schedule → run.
#[derive(Debug, Clone)]
pub struct SimnetScenario {
    label: String,
    config: ScheduleConfig,
}

impl SimnetScenario {
    /// Wraps a schedule configuration under a label.
    pub fn new(label: impl Into<String>, config: ScheduleConfig) -> Self {
        SimnetScenario {
            label: label.into(),
            config,
        }
    }

    /// The run configuration.
    pub fn config(&self) -> &ScheduleConfig {
        &self.config
    }
}

impl Scenario for SimnetScenario {
    type Output = RunReport;

    fn label(&self) -> String {
        self.label.clone()
    }

    fn run(&self, seed: u64) -> Result<RunReport> {
        let schedule = FaultSchedule::generate(seed, &self.config);
        let report = run_schedule(&schedule, &self.config)?;
        if let Some(violation) = &report.violation {
            return Err(CoreError::Invariant(format!(
                "{violation} (seed {seed}; regenerate the schedule with \
                 FaultSchedule::generate({seed}, config) to reproduce)"
            )));
        }
        Ok(report)
    }
}

/// A chaos grid point: scales the default schedule intensity.
fn chaos_config(intensity: f64) -> ScheduleConfig {
    ScheduleConfig {
        intensity,
        ..ScheduleConfig::default()
    }
}

/// Registers the built-in simnet scenarios:
///
/// * `simnet/chaos-light` — sparse faults (≈1 event per 5 steps),
/// * `simnet/chaos-heavy` — dense faults (≈4 events per 5 steps),
/// * `simnet/partition-churn` — partitions and membership churn only.
pub fn register_simnet_scenarios(registry: &mut ScenarioRegistry) {
    registry.register("simnet/chaos-light", || {
        Ok(Box::new(SimnetScenario::new(
            "simnet/chaos-light",
            chaos_config(0.2),
        )))
    });
    registry.register("simnet/chaos-heavy", || {
        Ok(Box::new(SimnetScenario::new(
            "simnet/chaos-heavy",
            chaos_config(0.8),
        )))
    });
    registry.register("simnet/partition-churn", || {
        Ok(Box::new(SimnetScenario::new(
            "simnet/partition-churn",
            ScheduleConfig {
                intensity: 0.6,
                enabled: vec![
                    FaultKind::Partition,
                    FaultKind::AddReplica,
                    FaultKind::EvictReplica,
                    FaultKind::ClientBurst,
                ],
                ..ScheduleConfig::default()
            },
        )))
    });
}
