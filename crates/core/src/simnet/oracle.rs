//! Invariant oracles: the correctness conditions checked after every step.
//!
//! The oracles encode the guarantees of Proposition 1 and of the node-level
//! controllers:
//!
//! * **Agreement** — no two live replicas hold different operation digests
//!   at the same log position: every pair of executed logs must agree on
//!   their common prefix. The check runs over the *current* logs (not the
//!   historical commit trace) because a legitimate recovery resets a
//!   replica's log; crashed replicas are skipped until they are recovered
//!   or evicted.
//! * **Validity** — every digest in any live log corresponds to a request
//!   some client actually submitted.
//! * **Recovery bound** — a compromised replica is recovered at the latest
//!   `Δ_R` steps (plus the `k`-parallel-recovery queueing slack) after the
//!   compromise: the BTR constraint of Problem 1.
//! * **Network accounting** — the network neither loses nor invents
//!   messages beyond its declared drop semantics.
//! * **Liveness** — once all faults are healed and at most `f` replicas
//!   are faulty, a probe request completes and all replicas converge
//!   (checked by the executor's settle phase).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use tolerance_consensus::crypto::Digest;
use tolerance_consensus::{MinBftCluster, NodeId};

/// The invariant that a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvariantKind {
    /// Two live replicas hold different digests at one log position.
    Agreement,
    /// A replica holds a digest no client submitted.
    Validity,
    /// A compromise outlived the BTR recovery bound.
    RecoveryBound,
    /// Network counters stopped adding up.
    NetworkAccounting,
    /// The settle-phase probe did not complete or replicas diverged.
    Liveness,
    /// A committed request surfaced on a shard that does not own its key,
    /// or was executed more than once fleet-wide (the multi-shard routing
    /// oracle).
    Routing,
    /// A cross-shard MultiPut was observable half-applied after the settle
    /// phase (some keys held the transaction's values while others did
    /// not, despite roll-forward of interrupted commit rounds).
    Atomicity,
    /// Under a GST schedule, a request submitted before GST was still
    /// uncommitted more than `post_gst_liveness_steps` steps after the
    /// network stabilized (partial-synchrony liveness).
    LivenessAfterGst,
}

impl std::fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            InvariantKind::Agreement => "agreement",
            InvariantKind::Validity => "validity",
            InvariantKind::RecoveryBound => "recovery-bound",
            InvariantKind::NetworkAccounting => "network-accounting",
            InvariantKind::Liveness => "liveness",
            InvariantKind::Routing => "routing",
            InvariantKind::Atomicity => "atomicity",
            InvariantKind::LivenessAfterGst => "liveness-after-gst",
        };
        write!(f, "{name}")
    }
}

/// A detected invariant violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// The broken invariant.
    pub kind: InvariantKind,
    /// The step after which the violation was detected (`u32::MAX` for the
    /// settle phase).
    pub step: u32,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.step == u32::MAX {
            write!(f, "{} in the settle phase: {}", self.kind, self.detail)
        } else {
            write!(f, "{} at step {}: {}", self.kind, self.step, self.detail)
        }
    }
}

/// The step-by-step invariant checker.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    /// Digests of every request submitted through the harness.
    submitted: HashSet<Digest>,
    /// Absolute log position up to which each replica has already been
    /// validity-checked (reset when a log shrinks, i.e. the replica was
    /// recovered).
    validity_scanned: BTreeMap<NodeId, u64>,
    /// Commit-trace records already folded into `sequence_digests`.
    trace_scanned: usize,
    /// First digest observed per committed sequence number (the
    /// sequence-level agreement ground truth).
    sequence_digests: BTreeMap<u64, (NodeId, Digest)>,
}

impl InvariantChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        InvariantChecker::default()
    }

    /// Registers a submitted request digest (the ground truth of validity).
    pub fn record_submission(&mut self, digest: Digest) {
        self.submitted.insert(digest);
    }

    /// Checks agreement and validity over the current executed logs of all
    /// live (non-crashed) replicas; `step` tags any violation.
    pub fn check_logs(&mut self, cluster: &MinBftCluster, step: u32) -> Option<Violation> {
        // Logs are retained suffixes since each replica's stable checkpoint:
        // `(replica, absolute offset of the first entry, suffix)`.
        let logs: Vec<(NodeId, u64, &[Digest])> = cluster
            .membership()
            .iter()
            .copied()
            .filter(|&id| !cluster.is_crashed(id))
            .filter_map(|id| {
                let log = cluster.executed_log(id)?;
                let start = cluster.executed_log_start(id)?;
                Some((id, start, log))
            })
            .collect();
        // Agreement, positional: pairwise equality on the log positions both
        // replicas retain (compaction truncates prefixes, so the overlap
        // window is compared instead of the raw prefixes).
        for (i, &(id_a, start_a, log_a)) in logs.iter().enumerate() {
            for &(id_b, start_b, log_b) in logs.iter().skip(i + 1) {
                if let Some(position) = tolerance_consensus::minbft::first_log_divergence(
                    start_a, log_a, start_b, log_b,
                ) {
                    let digest_a = log_a[(position - start_a) as usize];
                    let digest_b = log_b[(position - start_b) as usize];
                    return Some(Violation {
                        kind: InvariantKind::Agreement,
                        step,
                        detail: format!(
                            "replicas {id_a} and {id_b} committed different digests at log \
                             position {}: {digest_a:?} vs {digest_b:?}",
                            position + 1,
                        ),
                    });
                }
            }
        }
        // Agreement, per sequence number: empty-batch gap fills mean log
        // *positions* no longer identify sequence numbers, so a renumbering
        // split (the same requests re-committed under different sequences,
        // leaving positionally identical logs) is only visible in the
        // commit trace.
        for record in
            &cluster.commit_trace()[self.trace_scanned.min(cluster.commit_trace().len())..]
        {
            match self.sequence_digests.get(&record.sequence) {
                Some(&(other, digest)) if digest != record.digest => {
                    return Some(Violation {
                        kind: InvariantKind::Agreement,
                        step,
                        detail: format!(
                            "replicas {other} and {} committed different digests at sequence {}: \
                             {digest:?} vs {:?}",
                            record.replica, record.sequence, record.digest
                        ),
                    });
                }
                Some(_) => {}
                None => {
                    self.sequence_digests
                        .insert(record.sequence, (record.replica, record.digest));
                }
            }
        }
        self.trace_scanned = cluster.commit_trace().len();
        // Validity: every (newly appended) digest was submitted. Gap-filling
        // view changes commit *empty* batches, so every logged digest must
        // trace back to a client request.
        let check_position = |position: u64, digest: Digest, id: NodeId| {
            (!self.submitted.contains(&digest)).then(|| Violation {
                kind: InvariantKind::Validity,
                step,
                detail: format!(
                    "replica {id} committed digest {digest:?} at log position {} that no \
                     client submitted",
                    position + 1
                ),
            })
        };
        for &(id, start, log) in &logs {
            let mut scanned = self.validity_scanned.get(&id).copied().unwrap_or(0);
            let absolute_len = start + log.len() as u64;
            if absolute_len < scanned {
                scanned = start; // the replica was recovered and its log reset
            }
            // Compaction (or a fresh state adoption) may have truncated
            // positions this oracle never scanned on this replica: validate
            // them from any replica that still retains them — the positional
            // agreement check above makes any holder's copy authoritative.
            // Positions no live replica retains were executed *and*
            // compacted by a stable f+1 checkpoint within a single step and
            // are no longer observable.
            for position in scanned..start {
                let held_elsewhere = logs.iter().find_map(|&(_, other_start, other_log)| {
                    (other_start <= position && position < other_start + other_log.len() as u64)
                        .then(|| other_log[(position - other_start) as usize])
                });
                if let Some(digest) = held_elsewhere {
                    if let Some(violation) = check_position(position, digest, id) {
                        return Some(violation);
                    }
                }
            }
            for position in scanned.max(start)..absolute_len {
                let digest = log[(position - start) as usize];
                if let Some(violation) = check_position(position, digest, id) {
                    return Some(violation);
                }
            }
            self.validity_scanned.insert(id, absolute_len);
        }
        None
    }

    /// Checks that the network's counters add up exactly: everything handed
    /// to the network is delivered, dropped or still in flight — a message
    /// silently lost (or double-counted) breaks the equation in either
    /// direction.
    pub fn check_network(&self, cluster: &MinBftCluster, step: u32) -> Option<Violation> {
        let stats = cluster.network_stats();
        let accounted = stats.delivered + stats.dropped + cluster.network_in_flight() as u64;
        if accounted != stats.sent {
            return Some(Violation {
                kind: InvariantKind::NetworkAccounting,
                step,
                detail: format!(
                    "delivered {} + dropped {} + in-flight {} != sent {}",
                    stats.delivered,
                    stats.dropped,
                    cluster.network_in_flight(),
                    stats.sent
                ),
            });
        }
        None
    }

    /// Removes the validity bookkeeping of an evicted replica.
    pub fn forget_replica(&mut self, replica: NodeId) {
        self.validity_scanned.remove(&replica);
    }

    /// The highest executed log length among live replicas (the number of
    /// operations the service as a whole has committed).
    pub fn committed_sequences(cluster: &MinBftCluster) -> u64 {
        cluster
            .membership()
            .iter()
            .filter_map(|&id| cluster.executed_len(id))
            .max()
            .unwrap_or(0)
    }
}

/// The cross-shard **routing oracle** of the multi-shard harness: every
/// committed request must be executed by exactly the shard owning its key,
/// and exactly once fleet-wide. The checker scans each shard's retained
/// executed logs incrementally (per-request digests, so batching does not
/// obscure individual requests) and flags:
///
/// * a digest surfacing on a shard other than the one it was routed to
///   (misrouting — the partitioner and the router disagreed, or a request
///   leaked across groups),
/// * the same digest surfacing on two different shards, or at two different
///   log positions of one shard (double execution fleet-wide).
#[derive(Debug, Default)]
pub struct RoutingChecker {
    /// Owning shard of every digest submitted through the router.
    owners: HashMap<Digest, usize>,
    /// Where each digest was first observed executing:
    /// `(shard, absolute log position)`.
    executed_at: HashMap<Digest, (usize, u64)>,
}

impl RoutingChecker {
    /// A fresh checker.
    pub fn new() -> Self {
        RoutingChecker::default()
    }

    /// Registers a routed submission: `digest` was submitted to `shard`
    /// (which the router chose as the key's owner).
    pub fn record_submission(&mut self, digest: Digest, shard: usize) {
        self.owners.insert(digest, shard);
    }

    /// Scans shard `shard`'s current logs; `step` tags any violation. Call
    /// once per shard per step, in shard index order.
    ///
    /// Every replica's **whole retained log** is rescanned each call:
    /// tracking a scanned high-water mark would open a false-negative
    /// window when a log rolls back *and* regrows past the mark within one
    /// step (a re-execution at a reused position below the mark would
    /// never be revisited — exactly the double-execution class this oracle
    /// exists to catch). Retained logs are compaction-bounded, so the
    /// rescan stays cheap; re-observing a digest at its recorded
    /// `(shard, position)` is consistent and never flags.
    pub fn check_shard(
        &mut self,
        shard: usize,
        cluster: &MinBftCluster,
        step: u32,
    ) -> Option<Violation> {
        for &replica in cluster.membership() {
            if cluster.is_crashed(replica) {
                continue;
            }
            let (Some(log), Some(start)) = (
                cluster.executed_log(replica),
                cluster.executed_log_start(replica),
            ) else {
                continue;
            };
            for (offset, &digest) in log.iter().enumerate() {
                let position = start + offset as u64;
                if let Some(&owner) = self.owners.get(&digest) {
                    if owner != shard {
                        return Some(Violation {
                            kind: InvariantKind::Routing,
                            step,
                            detail: format!(
                                "shard {shard} replica {replica} executed digest {digest:?} \
                                 routed to shard {owner}"
                            ),
                        });
                    }
                }
                match self.executed_at.get(&digest) {
                    Some(&(other_shard, other_position))
                        if other_shard != shard || other_position != position =>
                    {
                        return Some(Violation {
                            kind: InvariantKind::Routing,
                            step,
                            detail: format!(
                                "digest {digest:?} executed twice fleet-wide: shard \
                                 {other_shard} position {other_position} and shard {shard} \
                                 position {position}"
                            ),
                        });
                    }
                    Some(_) => {}
                    None => {
                        self.executed_at.insert(digest, (shard, position));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tolerance_consensus::minbft::{MinBftCluster, MinBftConfig, Operation};
    use tolerance_consensus::NetworkConfig;

    fn cluster() -> MinBftCluster {
        MinBftCluster::new(MinBftConfig {
            initial_replicas: 4,
            network: NetworkConfig {
                latency: 0.002,
                jitter: 0.001,
                loss_rate: 0.0,
            },
            ..MinBftConfig::default()
        })
    }

    #[test]
    fn clean_runs_pass_agreement_and_validity() {
        let mut cluster = cluster();
        let mut checker = InvariantChecker::new();
        let client = cluster.add_client();
        for value in [1u64, 2, 3] {
            let request = cluster.submit(client, Operation::Write(value));
            checker.record_submission(request.digest());
            cluster.run_until_quiet(60.0);
            assert_eq!(checker.check_logs(&cluster, value as u32), None);
            assert_eq!(checker.check_network(&cluster, value as u32), None);
        }
        assert_eq!(InvariantChecker::committed_sequences(&cluster), 3);
    }

    #[test]
    fn injected_corruption_breaks_agreement() {
        let mut cluster = cluster();
        let mut checker = InvariantChecker::new();
        let client = cluster.add_client();
        let request = cluster.submit(client, Operation::Write(1));
        checker.record_submission(request.digest());
        cluster.run_until_quiet(10.0);
        assert_eq!(checker.check_logs(&cluster, 0), None);

        cluster.inject_double_commit(2);
        let request = cluster.submit(client, Operation::Write(2));
        checker.record_submission(request.digest());
        cluster.run_until_quiet(20.0);
        let violation = checker.check_logs(&cluster, 1).expect("must be caught");
        assert_eq!(violation.kind, InvariantKind::Agreement);
        assert!(
            violation.detail.contains("log position 2") || violation.detail.contains("sequence 2"),
            "unexpected detail: {}",
            violation.detail
        );
    }

    #[test]
    fn routing_oracle_catches_misrouting_and_fleet_wide_double_execution() {
        // Shard 0 executes a request the router recorded as owned by shard
        // 1: the misrouting arm fires.
        let mut shard0 = cluster();
        let mut checker = RoutingChecker::new();
        let client = shard0.add_client();
        let request = shard0.submit(client, Operation::Put { key: 9, value: 5 });
        checker.record_submission(request.digest(), 1);
        shard0.run_until_quiet(10.0);
        let violation = checker
            .check_shard(0, &shard0, 0)
            .expect("misrouting must be caught");
        assert_eq!(violation.kind, InvariantKind::Routing);
        assert!(violation.detail.contains("routed to shard 1"));

        // Two shards executing the *same* digest (identical client id,
        // request id and operation): the exactly-once arm fires. The
        // digest is deliberately left unowned so the misrouting arm (which
        // takes precedence) stays quiet.
        let mut checker = RoutingChecker::new();
        assert_eq!(checker.check_shard(0, &shard0, 1), None);
        let mut shard1 = cluster();
        let client1 = shard1.add_client();
        let duplicate = shard1.submit(client1, Operation::Put { key: 9, value: 5 });
        assert_eq!(duplicate.digest(), request.digest());
        shard1.run_until_quiet(10.0);
        let violation = checker
            .check_shard(1, &shard1, 2)
            .expect("double execution must be caught");
        assert_eq!(violation.kind, InvariantKind::Routing);
        assert!(violation.detail.contains("twice fleet-wide"));
        assert!(violation.to_string().contains("routing"));
    }

    #[test]
    fn unsubmitted_digests_break_validity() {
        let mut cluster = cluster();
        let mut checker = InvariantChecker::new();
        let client = cluster.add_client();
        // Deliberately do NOT record the submission.
        cluster.submit(client, Operation::Write(7));
        cluster.run_until_quiet(10.0);
        let violation = checker.check_logs(&cluster, 0).expect("must be caught");
        assert_eq!(violation.kind, InvariantKind::Validity);
        assert!(violation.to_string().contains("validity"));
    }
}
