//! The deterministic executor: drives the full two-level stack through a
//! fault schedule.
//!
//! One run wires together the three layers of the reproduction:
//!
//! * a [`MinBftCluster`] over the discrete-event network (consensus layer),
//! * one [`NodeController`] per replica with the BTR threshold strategy of
//!   Theorem 1 (local control level), fed by alert samples from the paper's
//!   observation model, and
//! * optionally the [`SystemController`] of Algorithm 2 (global control
//!   level), which evicts crashed replicas and grows the membership.
//!
//! The executor applies the schedule's fault events step by step, runs the
//! invariant oracles after every step, and records a [`TraceRecord`] per
//! step. Everything — schedule generation, alert sampling, network jitter,
//! controller decisions — is derived from the schedule's seed, so the same
//! `(seed, config)` pair produces a byte-identical trace on every run,
//! regardless of how many runs execute in parallel around it.

use crate::controlplane::{ClusterActuator, ControlPlane, ControlPlaneConfig, NodeReport};
use crate::error::Result;
use crate::metrics::MetricReport;
use crate::node_model::{NodeModel, NodeParameters, NodeState};
use crate::observation::ObservationModel;
use crate::runtime::AsMetricReport;
use crate::simnet::adversary;
use crate::simnet::oracle::{InvariantChecker, InvariantKind, Violation};
use crate::simnet::schedule::{FaultEvent, FaultSchedule, ScheduleConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use tolerance_consensus::minbft::{MinBftCluster, Operation};
use tolerance_consensus::{ByzantineMode, NodeId};

/// The per-step snapshot that makes up the run's event trace. Two runs are
/// considered identical exactly when their serialized traces are identical;
/// the simulated clock is recorded via its IEEE-754 bits so the comparison
/// is exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The step this record closes.
    pub step: u32,
    /// `f64::to_bits` of the simulated time after the step.
    pub time_bits: u64,
    /// Membership after the step.
    pub membership: Vec<NodeId>,
    /// Total commit records so far.
    pub commits: u64,
    /// View changes so far.
    pub view_changes: u64,
    /// Completed client requests so far.
    pub completed: u64,
    /// Messages handed to the network so far.
    pub net_sent: u64,
    /// Replicas currently marked faulty by the schedule.
    pub faulty: Vec<NodeId>,
}

/// Aggregate outcome of a run (the scenario-facing summary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimnetOutcome {
    /// Steps actually executed (less than the horizon when a violation
    /// stopped the run early).
    pub steps: u64,
    /// Client requests issued.
    pub issued: u64,
    /// Client requests completed.
    pub completed: u64,
    /// Replica recoveries performed (controller-driven and scheduled).
    pub recoveries: u64,
    /// Mean steps from compromise to recovery (0 when no compromise).
    pub mean_recovery_steps: f64,
    /// Distinct sequence numbers committed.
    pub committed_sequences: u64,
    /// Completed / issued.
    pub availability: f64,
}

impl AsMetricReport for SimnetOutcome {
    fn metric_report(&self) -> MetricReport {
        MetricReport {
            availability: self.availability,
            time_to_recovery: self.mean_recovery_steps,
            recovery_frequency: if self.steps == 0 {
                0.0
            } else {
                self.recoveries as f64 / self.steps as f64
            },
            steps: self.steps,
        }
    }
}

/// The result of executing one schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Aggregate outcome.
    pub outcome: SimnetOutcome,
    /// The per-step event trace.
    pub trace: Vec<TraceRecord>,
    /// The first invariant violation, if any (the run stops there).
    pub violation: Option<Violation>,
}

impl AsMetricReport for RunReport {
    fn metric_report(&self) -> MetricReport {
        self.outcome.metric_report()
    }
}

/// Per-replica supervision state maintained by the harness (the ground
/// truth of the fault schedule; the belief-tracking controllers live in the
/// shared [`ControlPlane`]). Shared with the multi-shard harness
/// (`crate::simnet::sharded`), which keeps one supervisor map per shard.
pub(crate) struct Supervisor {
    pub(crate) state: NodeState,
    pub(crate) compromised_at: Option<u32>,
    pub(crate) schedule_crashed: bool,
    /// IDS-signature degradation of the current compromise: `0.0` samples
    /// the full compromised alert distribution, larger values mix it toward
    /// healthy (protocol-aware attackers are quieter, see
    /// [`crate::simnet::adversary::attacker_ids_lambda`]).
    pub(crate) ids_lambda: f64,
}

impl Supervisor {
    pub(crate) fn new() -> Self {
        Supervisor {
            state: NodeState::Healthy,
            compromised_at: None,
            schedule_crashed: false,
            ids_lambda: 0.0,
        }
    }
}

/// Executes `schedule` against a freshly built stack configured by `config`.
///
/// # Errors
///
/// Propagates model-construction and LP failures; invariant violations are
/// reported inside the [`RunReport`], not as errors (the shrinker needs
/// them as data).
pub fn run_schedule(schedule: &FaultSchedule, config: &ScheduleConfig) -> Result<RunReport> {
    SimHarness::new(schedule, config)?.run()
}

/// The harness-side actuator: the shared [`ControlPlane`] actuates through
/// this view, which adds the fault-schedule bookkeeping (restart-vs-rebuild
/// choice, recovery-latency accounting, supervisor lifecycle) on top of the
/// simulated cluster. The multi-shard harness wraps one per shard.
pub(crate) struct HarnessActuator<'a> {
    pub(crate) cluster: &'a mut MinBftCluster,
    pub(crate) supervisors: &'a mut BTreeMap<NodeId, Supervisor>,
    pub(crate) added_stack: &'a mut Vec<NodeId>,
    pub(crate) recoveries: &'a mut u64,
    pub(crate) recovery_delays: &'a mut Vec<u32>,
    pub(crate) step: u32,
}

impl HarnessActuator<'_> {
    pub(crate) fn recover_node(&mut self, node: NodeId) -> bool {
        if !self.cluster.membership().contains(&node) {
            return false;
        }
        // Fail-stop crashes restart with their state intact; everything
        // else (compromise, Byzantine behaviour, BTR refresh) is the full
        // rebuild + state transfer.
        let crashed_only = self
            .supervisors
            .get(&node)
            .map(|s| s.schedule_crashed && s.state == NodeState::Crashed)
            .unwrap_or(false);
        let recovered = if crashed_only {
            self.cluster.restart_replica(node);
            true
        } else {
            self.cluster.recover_replica(node)
        };
        if !recovered {
            // Deferred: no state donor existed. The supervisor stays marked
            // (compromised/crashed), so the next BTR tick or schedule event
            // retries and the recovery-bound oracle keeps watching.
            return false;
        }
        *self.recoveries += 1;
        if let Some(supervisor) = self.supervisors.get_mut(&node) {
            supervisor.state = NodeState::Healthy;
            supervisor.schedule_crashed = false;
            supervisor.ids_lambda = 0.0;
            if let Some(at) = supervisor.compromised_at.take() {
                self.recovery_delays.push(self.step.saturating_sub(at));
            }
        }
        true
    }
}

impl ClusterActuator for HarnessActuator<'_> {
    fn replica_count(&self) -> usize {
        self.cluster.num_replicas()
    }

    fn contains(&self, node: NodeId) -> bool {
        self.cluster.membership().contains(&node)
    }

    fn recover(&mut self, node: NodeId) -> bool {
        self.recover_node(node)
    }

    fn join(&mut self) -> Option<NodeId> {
        let id = self.cluster.add_replica();
        self.supervisors.insert(id, Supervisor::new());
        self.added_stack.push(id);
        Some(id)
    }

    fn evict(&mut self, node: NodeId) -> bool {
        if !self.cluster.membership().contains(&node) {
            return false;
        }
        self.cluster.evict_replica(node);
        self.supervisors.remove(&node);
        self.added_stack.retain(|&n| n != node);
        true
    }
}

struct SimHarness<'a> {
    schedule: &'a FaultSchedule,
    config: &'a ScheduleConfig,
    cluster: MinBftCluster,
    supervisors: BTreeMap<NodeId, Supervisor>,
    controlplane: ControlPlane,
    alert_model: ObservationModel,
    /// Per-λ degraded alert models (see [`adversary::degraded_model_table`]).
    degraded_models: Vec<(u64, ObservationModel)>,
    rng: StdRng,
    checker: InvariantChecker,
    clients: Vec<NodeId>,
    /// Step at which each client's currently outstanding request was
    /// submitted (entries are pruned once the request completes) — the
    /// bookkeeping of the liveness-after-GST oracle.
    outstanding_since: BTreeMap<NodeId, u32>,
    pending_bursts: u32,
    added_stack: Vec<NodeId>,
    issued: u64,
    recoveries: u64,
    recovery_delays: Vec<u32>,
    trace: Vec<TraceRecord>,
}

impl<'a> SimHarness<'a> {
    fn new(schedule: &'a FaultSchedule, config: &'a ScheduleConfig) -> Result<Self> {
        let cluster = MinBftCluster::new(config.minbft_config(schedule.seed));
        let alert_model = ObservationModel::paper_default();
        let node_model = NodeModel::new(NodeParameters::default(), alert_model.clone())?;
        let controlplane = ControlPlane::with_model(
            ControlPlaneConfig {
                recovery_threshold: config.recovery_threshold,
                delta_r: Some(config.delta_r),
                parallel_recoveries: config.parallel_recoveries,
                system_controller: config.system_controller,
                min_replicas: 4,
                max_replicas: config.max_replicas,
                fault_threshold: config.fault_threshold().max(1),
                availability_target: 0.9,
                node_survival_probability: 0.95,
            },
            node_model,
        )?;
        let degraded_models = adversary::degraded_model_table(&alert_model)?;
        let mut harness = SimHarness {
            schedule,
            config,
            cluster,
            supervisors: BTreeMap::new(),
            controlplane,
            alert_model,
            degraded_models,
            rng: StdRng::seed_from_u64(schedule.seed ^ 0x51e7_c0de_0bad_cafe),
            checker: InvariantChecker::new(),
            clients: Vec::new(),
            outstanding_since: BTreeMap::new(),
            pending_bursts: 0,
            added_stack: Vec::new(),
            issued: 0,
            recoveries: 0,
            recovery_delays: Vec::new(),
            trace: Vec::new(),
        };
        for id in 0..config.initial_replicas as NodeId {
            harness.supervisors.insert(id, Supervisor::new());
        }
        // One primary closed-loop client plus a small pool for bursts.
        for _ in 0..4 {
            let id = harness.cluster.add_client();
            harness.clients.push(id);
        }
        Ok(harness)
    }

    fn submit(&mut self, client: NodeId, operation: Operation, step: u32) {
        let request = self.cluster.submit(client, operation);
        self.checker.record_submission(request.digest());
        self.issued += 1;
        // Clients submit at most one request at a time, so per-client
        // tracking of the submission step is exact.
        self.outstanding_since.insert(client, step);
    }

    fn recover_node(&mut self, node: NodeId, step: u32) {
        let mut actuator = HarnessActuator {
            cluster: &mut self.cluster,
            supervisors: &mut self.supervisors,
            added_stack: &mut self.added_stack,
            recoveries: &mut self.recoveries,
            recovery_delays: &mut self.recovery_delays,
            step,
        };
        if actuator.recover_node(node) {
            // Schedule-driven recoveries reset the node controller too
            // (tick-driven ones are reset inside `ControlPlane::tick`; the
            // reset is idempotent).
            self.controlplane.controller(node).notify_recovered();
        }
    }

    fn apply_event(&mut self, event: &FaultEvent, step: u32) -> Result<()> {
        match event {
            FaultEvent::Partition { group_a, group_b } => {
                self.cluster.partition_network(group_a, group_b);
            }
            FaultEvent::Heal => self.cluster.heal_network(),
            FaultEvent::LossStorm { loss_rate } => {
                // Storms perturb the *ambient* profile of the step (the
                // asynchronous profile before GST), and RestoreNetwork
                // restores it, so a storm never ends the pre-GST phase.
                let mut network = self.config.ambient_network(step);
                network.loss_rate = network.loss_rate.max(*loss_rate);
                self.cluster.set_network_config(network.clamped());
            }
            FaultEvent::DelayStorm { latency, jitter } => {
                let mut network = self.config.ambient_network(step);
                network.latency = network.latency.max(*latency);
                network.jitter = network.jitter.max(*jitter);
                self.cluster.set_network_config(network.clamped());
            }
            FaultEvent::RestoreNetwork => {
                self.cluster
                    .set_network_config(self.config.ambient_network(step));
            }
            FaultEvent::CrashReplica { node } => {
                if self.cluster.membership().contains(node) {
                    self.cluster.crash_replica(*node);
                    if let Some(supervisor) = self.supervisors.get_mut(node) {
                        supervisor.schedule_crashed = true;
                        supervisor.state = NodeState::Crashed;
                    }
                }
            }
            FaultEvent::RecoverReplica { node } => self.recover_node(*node, step),
            FaultEvent::ByzantineFlip { node, mode } => {
                if self.cluster.membership().contains(node) && !self.cluster.is_crashed(*node) {
                    self.cluster.set_byzantine(*node, *mode);
                    // A flipped replica perturbs the IDS observation stream
                    // too (with a heavily degraded signature) — it is
                    // misbehaving, not invisible.
                    if let Some(supervisor) = self.supervisors.get_mut(node) {
                        supervisor.state = NodeState::Compromised;
                        supervisor.compromised_at.get_or_insert(step);
                        supervisor.ids_lambda = adversary::BYZANTINE_FLIP_IDS_LAMBDA;
                    }
                }
            }
            FaultEvent::IntrusionBurst { node, mode } => {
                if self.cluster.membership().contains(node) && !self.cluster.is_crashed(*node) {
                    self.cluster.set_byzantine(*node, *mode);
                    if let Some(supervisor) = self.supervisors.get_mut(node) {
                        supervisor.state = NodeState::Compromised;
                        supervisor.compromised_at.get_or_insert(step);
                        // A full compromise has the loudest signature.
                        supervisor.ids_lambda = 0.0;
                    }
                }
            }
            FaultEvent::AdoptAttacker { node, attacker } => {
                if self.cluster.membership().contains(node) && !self.cluster.is_crashed(*node) {
                    self.cluster.set_attacker(*node, Some(*attacker));
                    if let Some(supervisor) = self.supervisors.get_mut(node) {
                        supervisor.state = NodeState::Compromised;
                        supervisor.compromised_at.get_or_insert(step);
                        supervisor.ids_lambda = adversary::attacker_ids_lambda(*attacker);
                    }
                }
            }
            FaultEvent::AddReplica => {
                if self.cluster.num_replicas() < self.config.max_replicas {
                    let id = self.cluster.add_replica();
                    self.supervisors.insert(id, Supervisor::new());
                    self.added_stack.push(id);
                }
            }
            FaultEvent::EvictReplica { node } => {
                let target = node.or_else(|| self.added_stack.pop());
                if let Some(target) = target {
                    if self.cluster.membership().contains(&target)
                        && self.cluster.num_replicas() > 3
                    {
                        self.cluster.evict_replica(target);
                        self.supervisors.remove(&target);
                        self.controlplane.forget(target);
                    }
                }
            }
            FaultEvent::ClientBurst { requests } => {
                self.pending_bursts += requests;
            }
            FaultEvent::InjectDoubleCommit { node } => {
                self.cluster.inject_double_commit(*node);
            }
        }
        Ok(())
    }

    /// One control tick of both levels, delegated to the shared
    /// [`ControlPlane`] — the *same* runtime the live threaded scenarios
    /// drive. The harness contributes the deterministic IDS sampling (one
    /// weighted-alert draw per reporting replica, in membership order) and
    /// the ground-truth crash/compromise state; the plane contributes
    /// belief tracking, the k-parallel-recovery constraint and the
    /// Algorithm-2 replication decision, actuated through
    /// [`HarnessActuator`].
    fn control_tick(&mut self, step: u32) {
        let membership: Vec<NodeId> = self.cluster.membership().to_vec();
        let mut observations: Vec<(NodeId, NodeReport<'_>)> = Vec::with_capacity(membership.len());
        for &id in &membership {
            let report = match self.supervisors.get(&id) {
                None => NodeReport::Silent,
                Some(supervisor) if supervisor.schedule_crashed => NodeReport::Silent,
                Some(supervisor) => {
                    let sample_state = match supervisor.state {
                        NodeState::Compromised => NodeState::Compromised,
                        _ => NodeState::Healthy,
                    };
                    // Protocol-aware attackers sample from a degraded
                    // compromise signature (the λ set by their event). The
                    // model choice never changes how many RNG draws happen,
                    // so schedules that never set a λ keep byte-identical
                    // traces.
                    let model = adversary::degraded_model(
                        &self.degraded_models,
                        &self.alert_model,
                        supervisor.ids_lambda,
                    );
                    NodeReport::Sample(model.sample(sample_state, &mut self.rng))
                }
            };
            observations.push((id, report));
        }
        let mut actuator = HarnessActuator {
            cluster: &mut self.cluster,
            supervisors: &mut self.supervisors,
            added_stack: &mut self.added_stack,
            recoveries: &mut self.recoveries,
            recovery_delays: &mut self.recovery_delays,
            step,
        };
        self.controlplane
            .tick(&observations, &mut actuator, &mut self.rng);
    }

    fn drive_clients(&mut self, step: u32) {
        let primary = self.clients[0];
        if !self.cluster.has_outstanding_request(primary) {
            self.submit(primary, Operation::Write(u64::from(step) + 1), step);
        }
        let burst_pool: Vec<NodeId> = self.clients[1..].to_vec();
        for client in burst_pool {
            if self.pending_bursts == 0 {
                break;
            }
            if !self.cluster.has_outstanding_request(client) {
                self.pending_bursts -= 1;
                self.submit(
                    client,
                    Operation::Write(
                        0x1000_0000 + u64::from(step) * 16 + u64::from(self.pending_bursts),
                    ),
                    step,
                );
            }
        }
    }

    fn completed_total(&self) -> u64 {
        self.clients
            .iter()
            .map(|&c| self.cluster.completed_requests(c))
            .sum()
    }

    fn check_invariants(&mut self, step: u32) -> Option<Violation> {
        if let Some(violation) = self.checker.check_logs(&self.cluster, step) {
            return Some(violation);
        }
        if let Some(violation) = self.checker.check_network(&self.cluster, step) {
            return Some(violation);
        }
        // Recovery bound: Δ_R steps of BTR slack plus the queueing delay of
        // the k-parallel-recovery constraint.
        let bound = self.config.delta_r + self.config.initial_replicas as u32 + 1;
        for (&id, supervisor) in &self.supervisors {
            if let Some(at) = supervisor.compromised_at {
                if step.saturating_sub(at) > bound {
                    return Some(Violation {
                        kind: InvariantKind::RecoveryBound,
                        step,
                        detail: format!(
                            "replica {id} compromised at step {at} still unrecovered at step \
                             {step} (bound {bound})"
                        ),
                    });
                }
            }
        }
        // Liveness after GST: under partial synchrony, every request
        // submitted before the network stabilized must complete within the
        // bounded post-GST window.
        let cluster = &self.cluster;
        self.outstanding_since
            .retain(|&client, _| cluster.has_outstanding_request(client));
        if let Some(gst) = self.config.gst {
            if step >= gst && step - gst > self.config.post_gst_liveness_steps {
                for (&client, &since) in &self.outstanding_since {
                    if since < gst {
                        return Some(Violation {
                            kind: InvariantKind::LivenessAfterGst,
                            step,
                            detail: format!(
                                "client {client}'s request from step {since} (before GST at \
                                 step {gst}) still uncommitted {} steps after stabilization \
                                 (bound {})",
                                step - gst,
                                self.config.post_gst_liveness_steps
                            ),
                        });
                    }
                }
            }
        }
        None
    }

    fn push_trace(&mut self, step: u32) {
        let faulty: Vec<NodeId> = self
            .supervisors
            .iter()
            .filter(|(_, s)| s.schedule_crashed || s.state != NodeState::Healthy)
            .map(|(&id, _)| id)
            .collect();
        self.trace.push(TraceRecord {
            step,
            time_bits: self.cluster.now().to_bits(),
            membership: self.cluster.membership().to_vec(),
            commits: self.cluster.commit_trace().len() as u64,
            view_changes: self.cluster.view_changes(),
            completed: self.completed_total(),
            net_sent: self.cluster.network_stats().sent,
            faulty,
        });
    }

    /// Re-triggers state transfer for replicas whose transfer was lost to a
    /// storm or partition and for replicas whose log lags behind (in-flight
    /// quorums they missed cannot be replayed; recovery is how the
    /// architecture catches such replicas up, cf. the BTR constraint).
    fn catch_up_stragglers(&mut self) {
        let members: Vec<NodeId> = self.cluster.membership().to_vec();
        let longest = members
            .iter()
            .filter_map(|&id| self.cluster.executed_len(id))
            .max()
            .unwrap_or(0);
        for id in members {
            let lagging = self
                .cluster
                .executed_len(id)
                .map(|len| len + 2 < longest)
                .unwrap_or(false);
            if self.cluster.needs_state(id) || lagging {
                self.cluster.recover_replica(id);
            }
        }
    }

    /// The settle phase: heal everything, recover every still-marked
    /// replica, then require the service to come back (a probe request must
    /// complete and the logs must be consistent). This is the operational
    /// form of the eventual-service-liveness guarantee.
    fn settle(&mut self) -> Option<Violation> {
        self.cluster.heal_network();
        self.cluster.set_network_config(self.config.network);
        let members: Vec<NodeId> = self.cluster.membership().to_vec();
        for id in members {
            let marked = self
                .supervisors
                .get(&id)
                .map(|s| s.schedule_crashed || s.state != NodeState::Healthy)
                .unwrap_or(false);
            if marked
                || self.cluster.byzantine_mode(id) != Some(ByzantineMode::Correct)
                || self.cluster.is_crashed(id)
            {
                self.recover_node(id, self.config.horizon);
            }
        }
        let settle_window = 5.0_f64.max(self.config.step_duration * 4.0);
        for round in 0..10 {
            self.cluster.run_until(self.cluster.now() + settle_window);
            self.catch_up_stragglers();
            if std::env::var_os("SIMNET_DEBUG").is_some() {
                for &id in &self.cluster.membership().to_vec() {
                    eprintln!(
                        "  settle round {round} replica {id}: view {:?} leader {:?} len {} \
                         crashed {} needs_state {} byz {:?}",
                        self.cluster.replica_view(id),
                        self.cluster.leader_of(id),
                        self.cluster.executed_len(id).unwrap_or(0),
                        self.cluster.is_crashed(id),
                        self.cluster.needs_state(id),
                        self.cluster.byzantine_mode(id),
                    );
                }
                for &id in &self.cluster.membership().to_vec() {
                    eprintln!("    {}", self.cluster.debug_replica(id));
                }
                let outstanding: Vec<_> = self
                    .clients
                    .iter()
                    .filter(|&&c| self.cluster.has_outstanding_request(c))
                    .collect();
                eprintln!("  settle round {round}: outstanding {outstanding:?}");
            }
            let outstanding = self
                .clients
                .iter()
                .any(|&c| self.cluster.has_outstanding_request(c));
            if !outstanding && round > 0 {
                break;
            }
        }
        let outstanding: Vec<NodeId> = self
            .clients
            .iter()
            .copied()
            .filter(|&c| self.cluster.has_outstanding_request(c))
            .collect();
        if !outstanding.is_empty() {
            return Some(Violation {
                kind: InvariantKind::Liveness,
                step: u32::MAX,
                detail: format!(
                    "clients {outstanding:?} still have unanswered requests after all faults \
                     were healed"
                ),
            });
        }
        // Probe: a fresh request must complete now that faults are ≤ f.
        let primary = self.clients[0];
        self.submit(primary, Operation::Write(0xdead_beef), self.config.horizon);
        for _ in 0..10 {
            self.cluster.run_until(self.cluster.now() + settle_window);
            self.catch_up_stragglers();
            if !self.cluster.has_outstanding_request(primary) {
                break;
            }
        }
        if self.cluster.has_outstanding_request(primary) {
            return Some(Violation {
                kind: InvariantKind::Liveness,
                step: u32::MAX,
                detail: "the settle-phase probe request never completed".into(),
            });
        }
        if let Some(violation) = self.check_invariants(self.config.horizon) {
            return Some(violation);
        }
        if !self.cluster.logs_are_consistent() {
            return Some(Violation {
                kind: InvariantKind::Agreement,
                step: u32::MAX,
                detail: "healthy logs diverged by the end of the settle phase".into(),
            });
        }
        None
    }

    fn run(mut self) -> Result<RunReport> {
        let mut violation: Option<Violation> = None;
        let mut events = self.schedule.events.iter().peekable();
        let mut steps_run: u64 = 0;
        // A GST schedule starts in the asynchronous phase.
        self.cluster
            .set_network_config(self.config.ambient_network(0));
        for step in 0..self.config.horizon {
            steps_run = u64::from(step) + 1;
            if self.config.gst == Some(step) {
                // Global stabilization: partitions heal and the bounded
                // delay profile holds from here on (the generator draws no
                // network faults past this step).
                self.cluster.heal_network();
                self.cluster.set_network_config(self.config.network);
            }
            while let Some(fault) = events.peek() {
                if fault.step > step {
                    break;
                }
                let fault = events.next().expect("peeked");
                self.apply_event(&fault.event, step)?;
            }
            self.control_tick(step);
            self.drive_clients(step);
            self.cluster
                .run_until(f64::from(step + 1) * self.config.step_duration);
            violation = self.check_invariants(step);
            if std::env::var_os("SIMNET_DEBUG").is_some() {
                let members: Vec<NodeId> = self.cluster.membership().to_vec();
                for &id in &members {
                    let log = self.cluster.executed_log(id).unwrap_or(&[]);
                    let tail: Vec<u64> = log.iter().rev().take(3).map(|d| d.0 % 1000).collect();
                    eprintln!(
                        "  step {step} replica {id}: len {} tail {:?} crashed {} needs_state {}",
                        self.cluster.executed_len(id).unwrap_or(0),
                        tail,
                        self.cluster.is_crashed(id),
                        self.cluster.needs_state(id),
                    );
                }
                if violation.is_some() {
                    for r in self.cluster.commit_trace() {
                        eprintln!(
                            "  commit: replica {} view {} seq {} digest {}",
                            r.replica,
                            r.view,
                            r.sequence,
                            r.digest.0 % 100000
                        );
                    }
                }
            }
            self.push_trace(step);
            if violation.is_some() {
                break;
            }
        }
        if violation.is_none() {
            violation = self.settle();
            self.push_trace(self.config.horizon);
        }
        let completed = self.completed_total();
        let mean_recovery_steps = if self.recovery_delays.is_empty() {
            0.0
        } else {
            self.recovery_delays
                .iter()
                .map(|&d| f64::from(d))
                .sum::<f64>()
                / self.recovery_delays.len() as f64
        };
        Ok(RunReport {
            outcome: SimnetOutcome {
                // The steps actually executed (a violation stops the run
                // early, and the recovery-frequency metric divides by this).
                steps: steps_run,
                issued: self.issued,
                completed,
                recoveries: self.recoveries,
                mean_recovery_steps,
                committed_sequences: InvariantChecker::committed_sequences(&self.cluster),
                availability: if self.issued == 0 {
                    1.0
                } else {
                    completed as f64 / self.issued as f64
                },
            },
            trace: self.trace,
            violation,
        })
    }
}
