//! The fleet-scale simulation engine: deterministic chaos over many MinBFT
//! groups behind a key router, scheduled event-driven per shard.
//!
//! One fleet run wires together:
//!
//! * a [`ShardedSimService`] — S independent simulated MinBFT groups, each
//!   over its own deterministic network seeded from a **split stream** of
//!   the fleet seed ([`shard_seed`]);
//! * per-shard chaos: one [`FaultSchedule`] per shard, generated from the
//!   same split streams, so every shard sees its own partitions, storms,
//!   crashes, intrusion bursts and churn while the whole fleet stays a
//!   pure function of `(seed, config)`;
//! * the [`FleetControlPlane`] — per-shard node controllers competing for
//!   one **global** recovery budget `k`, plus (optionally) one system
//!   controller per fleet;
//! * a routed client workload — either the closed-loop driver (one keyed
//!   request per shard per step) or, with
//!   [`ShardedScheduleConfig::workload`], a seeded **open-loop trace
//!   workload** ([`TraceWorkload`]: diurnal arrival rate, Zipf key
//!   popularity, bounded backlog, no trace files) — and a cross-shard
//!   **MultiPut driver** that launches two-round transactions and
//!   deliberately abandons some of them mid-protocol;
//! * the full oracle suite per shard (agreement, validity, recovery bound,
//!   network accounting, settle-phase liveness) **plus** the fleet-level
//!   [`RoutingChecker`] and an **atomicity** check over every MultiPut.
//!
//! # The event-driven scheduler
//!
//! Each shard is an independent **sub-executor**: its own cluster, RNG
//! stream, fault-schedule cursor, oracle state and trace buffer. Shards
//! free-run on the persistent [`WorkerPool`] and synchronize only at
//! deterministic **barrier points**:
//!
//! ```text
//!   barrier step b (every `fleet_tick_interval` steps)
//!   ─ A ─ per shard ∥ : GST restore · due fault events (plane effects
//!                        buffered as notes)
//!   ─ B ─ serial      : drain plane notes (shard-major) · fleet
//!                        controller tick (global budget k)
//!   ─ C ─ per shard ∥ : routed client driving (routing records buffered)
//!   ─ D ─ serial      : merge routing records (shard-major) · cross-shard
//!                        MultiPut rounds
//!   ─ E ─ per shard ∥ : free-run steps b..b+interval — events, clients,
//!                        simulation, local oracles, trace
//!   ─ F ─ serial      : canonical violation resolution · routing oracle
//! ```
//!
//! **Determinism contract.** Every phase either runs serially in shard
//! index order or touches exclusively per-shard state, and buffered
//! cross-shard effects are drained shard-major at the next barrier — so
//! which worker ran which shard is invisible. The trace is byte-identical
//! across 1/2/4/8 workers, and with `fleet_tick_interval = 1` (the
//! default) the barrier cadence reproduces the original lockstep executor
//! *exactly*: same RNG draws, same submission order, same violation and
//! step, byte-identical trace. [`FleetEngine::Lockstep`] is literally the
//! engine pinned to one worker — one implementation, two schedules.
//!
//! On violation, [`find_sharded_counterexample`] shrinks the fleet's
//! schedules by greedy drop-one-event search across all shards and
//! packages a replayable [`ShardedCounterexample`] (seed + per-shard
//! schedules + config as JSON). Same seed → byte-identical trace,
//! regardless of surrounding parallelism.

use crate::controlplane::autotune::{
    Admission, AutotuneConfig, AutotuneController, AutotuneDecision, AutotuneObservation,
};
use crate::controlplane::fleet::{FleetConfig, FleetControlPlane};
use crate::controlplane::{ClusterActuator, NodeReport};
use crate::error::{CoreError, Result};
use crate::metrics::MetricReport;
use crate::node_model::{NodeModel, NodeParameters, NodeState};
use crate::observation::ObservationModel;
use crate::runtime::{AsMetricReport, MetricScenario, Scenario, ScenarioRegistry, WorkerPool};
use crate::simnet::adversary;
use crate::simnet::executor::{HarnessActuator, SimnetOutcome, Supervisor, TraceRecord};
use crate::simnet::oracle::{InvariantChecker, InvariantKind, RoutingChecker, Violation};
use crate::simnet::schedule::{FaultEvent, FaultSchedule, ScheduleConfig, ScheduledFault};
use crate::simnet::shrink::decode;
use crate::simnet::workload::{TraceWorkload, TraceWorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use tolerance_consensus::crypto::Digest;
use tolerance_consensus::metrics::LatencyHistogram;
use tolerance_consensus::minbft::{MinBftCluster, Operation};
use tolerance_consensus::sharded::{
    shard_seed, KeyPartitioner, ShardedSimConfig, ShardedSimService,
};
use tolerance_consensus::{ByzantineMode, NodeId};

/// Configuration of a multi-shard run: the per-shard chaos/cluster knobs
/// plus the fleet-level routing and MultiPut workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedScheduleConfig {
    /// Number of independent MinBFT groups.
    pub shards: usize,
    /// The per-shard schedule/cluster configuration. `parallel_recoveries`
    /// is interpreted as the fleet's **global** recovery budget and
    /// `system_controller` enables the fleet-level controller.
    pub base: ScheduleConfig,
    /// Key space of the routed client workload (each shard's drivers use
    /// the keys it owns within this range).
    pub key_space: u32,
    /// Steps between MultiPut launches (`0` disables the MultiPut driver).
    pub multi_put_interval: u32,
    /// Keys per MultiPut transaction (spanning at least two shards when
    /// the fleet has them).
    pub multi_put_keys: usize,
    /// Steps between fleet barriers: the fleet controller ticks and the
    /// cross-shard MultiPut rounds advance only at barrier steps, and
    /// shards free-run in between. `1` (the default) is the original
    /// lockstep cadence; larger windows trade control-plane reaction time
    /// for per-shard parallelism. Part of the *configuration* — the trace
    /// depends on it, never on the engine or worker count.
    pub fleet_tick_interval: u32,
    /// Open-loop trace workload; `None` keeps the closed-loop driver (one
    /// keyed request per shard per step plus burst backlog).
    pub workload: Option<TraceWorkloadConfig>,
    /// Data-plane self-tuning: when set, every shard runs its own
    /// deterministic [`AutotuneController`] ticked at
    /// `window_steps`-aligned steps — AIMD on the shard's leader batch
    /// knobs (re-clamped online through the fragmentation floor),
    /// concurrency capping the routed pool scan, and backpressure deciding
    /// admission from the shard's simulated-network depth. The decision
    /// trace is part of the run report, so AIMD determinism is pinned by
    /// the same byte-identity contract as the event trace.
    pub autotune: Option<AutotuneConfig>,
}

impl Default for ShardedScheduleConfig {
    fn default() -> Self {
        ShardedScheduleConfig {
            shards: 2,
            base: ScheduleConfig {
                horizon: 24,
                ..ScheduleConfig::default()
            },
            key_space: 64,
            multi_put_interval: 6,
            multi_put_keys: 2,
            fleet_tick_interval: 1,
            workload: None,
            autotune: None,
        }
    }
}

impl ShardedScheduleConfig {
    fn fleet_config(&self) -> FleetConfig {
        FleetConfig {
            recovery_threshold: self.base.recovery_threshold,
            delta_r: Some(self.base.delta_r),
            parallel_recoveries: self.base.parallel_recoveries,
            system_controller: self.base.system_controller,
            min_replicas_per_shard: 4,
            max_replicas_per_shard: self.base.max_replicas,
            max_total_replicas: self.base.max_replicas * self.shards.max(1),
            fault_threshold: self.base.fault_threshold().max(1),
            availability_target: 0.9,
            node_survival_probability: 0.95,
        }
    }
}

/// How [`run_sharded_schedule_with`] schedules the fleet's shards. The
/// engine choice changes wall-clock time only — the trace is identical for
/// every variant (the determinism suite in `tests/fleet.rs` pins this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEngine {
    /// Every shard stepped serially on the calling thread (the original
    /// executor; equivalent to `EventDriven` with one worker).
    Lockstep,
    /// Shards free-run between barriers on the persistent [`WorkerPool`]
    /// (`None` = one worker per available CPU).
    EventDriven {
        /// Scheduler worker count; `None` picks the available parallelism.
        workers: Option<usize>,
    },
}

impl Default for FleetEngine {
    fn default() -> Self {
        FleetEngine::EventDriven { workers: None }
    }
}

impl FleetEngine {
    /// The number of concurrent shard sub-executors this engine uses.
    pub fn workers(self) -> usize {
        match self {
            FleetEngine::Lockstep => 1,
            FleetEngine::EventDriven { workers: Some(n) } => n.max(1),
            FleetEngine::EventDriven { workers: None } => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// The fleet's chaos input: one per-shard schedule drawn from each shard's
/// split stream of the fleet seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedFaultSchedule {
    /// The fleet seed.
    pub seed: u64,
    /// One schedule per shard (index = shard).
    pub shards: Vec<FaultSchedule>,
}

impl ShardedFaultSchedule {
    /// Generates the per-shard schedules from the fleet seed's split
    /// streams (same seed → same fleet of schedules).
    pub fn generate(seed: u64, config: &ShardedScheduleConfig) -> Self {
        ShardedFaultSchedule {
            seed,
            shards: (0..config.shards.max(1))
                .map(|shard| FaultSchedule::generate(shard_seed(seed, shard), &config.base))
                .collect(),
        }
    }

    /// Total scheduled events across all shards.
    pub fn total_events(&self) -> usize {
        self.shards.iter().map(|s| s.events.len()).sum()
    }
}

/// One autotune window tick of one shard: the step it fired at and the
/// knob set it actuated. Serialized into the run report so controller
/// determinism is replay-checkable exactly like the event trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutotuneTickRecord {
    /// The step the window tick fired at.
    pub step: u32,
    /// The decision the controller actuated for the window.
    pub decision: AutotuneDecision,
}

/// The result of executing one fleet schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedRunReport {
    /// Fleet-wide aggregate outcome.
    pub outcome: SimnetOutcome,
    /// Per-shard event traces (`trace[shard][step]`), byte-identical for
    /// identical `(seed, config)` pairs — regardless of engine or workers.
    pub trace: Vec<Vec<TraceRecord>>,
    /// MultiPut transactions launched / fully committed.
    pub multi_puts: (u64, u64),
    /// Per-shard autotune decision traces (`autotune[shard][tick]`); empty
    /// vectors when [`ShardedScheduleConfig::autotune`] is off. Part of the
    /// report's equality, so the determinism suite pins AIMD decisions
    /// across engines and worker counts.
    pub autotune: Vec<Vec<AutotuneTickRecord>>,
    /// The first invariant violation, if any (the run stops there).
    pub violation: Option<Violation>,
}

impl AsMetricReport for ShardedRunReport {
    fn metric_report(&self) -> MetricReport {
        self.outcome.metric_report()
    }
}

/// Executes `schedule` against a freshly built fleet configured by
/// `config`, on the default engine (event-driven, one worker per CPU).
///
/// # Errors
///
/// Propagates model-construction and LP failures; invariant violations are
/// reported inside the [`ShardedRunReport`] (the shrinker needs them as
/// data).
pub fn run_sharded_schedule(
    schedule: &ShardedFaultSchedule,
    config: &ShardedScheduleConfig,
) -> Result<ShardedRunReport> {
    run_sharded_schedule_with(schedule, config, FleetEngine::default())
}

/// Executes `schedule` on an explicit [`FleetEngine`]. Every engine
/// produces the identical report — choose by wall-clock needs only.
///
/// # Errors
///
/// Propagates model-construction and LP failures.
pub fn run_sharded_schedule_with(
    schedule: &ShardedFaultSchedule,
    config: &ShardedScheduleConfig,
    engine: FleetEngine,
) -> Result<ShardedRunReport> {
    ShardedHarness::new(schedule, config)?.run(engine.workers())
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum OpState {
    InFlight,
    Done,
}

/// How a MultiPut transaction's driving client "crashes" mid-protocol
/// (derived deterministically from the transaction id, so the chaos is
/// replayable).
#[derive(Debug, Clone, Copy, PartialEq)]
enum TxAbandon {
    /// The client survives the whole protocol.
    None,
    /// The client crashes after every reserve completed, before any
    /// commit: nothing may ever become observable.
    BeforeCommit,
    /// The client crashes after committing the first key only: the settle
    /// phase must roll the remaining idempotent commits forward.
    MidCommit,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum TxPhase {
    Reserving,
    /// All reserves landed, the client crashed before any commit.
    AbandonedReserved,
    Committing,
    /// The first commit landed, the client crashed before the rest.
    AbandonedMidCommit,
    Done,
}

struct MultiPutTx {
    tx: u64,
    pairs: Vec<(u32, u64)>,
    phase: TxPhase,
    abandon: TxAbandon,
    /// In-flight operations: `(operation, shard, client, state)` — each on
    /// its own dedicated client, so completion is exactly "the client has
    /// no outstanding request".
    ops: Vec<(Operation, usize, NodeId, OpState)>,
}

/// A control-plane side effect raised inside a parallel per-shard phase,
/// buffered and drained shard-major at the next barrier (the
/// [`FleetControlPlane`] must only ever be touched serially).
enum PlaneNote {
    /// A replica recovered on schedule; its controller resets.
    Recovered(NodeId),
    /// A replica was evicted; its controller is dropped.
    Forget(NodeId),
}

/// One shard's sub-executor state: everything a shard mutates while
/// free-running between barriers lives here (or in its
/// [`MinBftCluster`]) — nothing else, which is what makes the parallel
/// phases deterministic.
struct ShardState {
    supervisors: BTreeMap<NodeId, Supervisor>,
    checker: InvariantChecker,
    added_stack: Vec<NodeId>,
    recoveries: u64,
    recovery_delays: Vec<u32>,
    pending_bursts: u32,
    owned_keys: Vec<u32>,
    /// The shard's general routed client pool (fixed at construction; the
    /// free-client scan runs over it in pool order).
    pool: Vec<NodeId>,
    /// Every client whose completions this shard contributes (general pool
    /// plus transaction clients created on it).
    clients: Vec<NodeId>,
    /// Step at which each client's currently outstanding request was
    /// submitted (pruned on completion) — the per-shard bookkeeping of the
    /// liveness-after-GST oracle.
    outstanding_since: BTreeMap<NodeId, u32>,
    /// Cursor into the shard's fault schedule (events are step-sorted).
    cursor: usize,
    /// Routed submissions made inside a parallel phase; merged into the
    /// fleet [`RoutingChecker`] shard-major at the next barrier.
    routing_pending: Vec<Digest>,
    /// Control-plane effects raised inside a parallel phase.
    plane_notes: Vec<PlaneNote>,
    /// The earliest local oracle violation of the current free-run window:
    /// `(step, kind-rank, violation)` with rank 0 = pre-barrier oracles
    /// (logs / network / recovery bound) and rank 1 = GST liveness.
    window_violation: Option<(u32, u8, Violation)>,
    /// Requests this shard issued from parallel phases.
    issued: u64,
    /// The shard's slice of the fleet trace.
    trace: Vec<TraceRecord>,
    /// The seeded open-loop workload generator, when configured.
    workload: Option<TraceWorkload>,
    /// The shard's data-plane autotune controller, when configured.
    tuner: Option<AutotuneController>,
    /// The admission verdict in force (always `Accept` untuned).
    admission: Admission,
    /// The concurrency cap on the routed pool scan (`None` = whole pool).
    concurrency: Option<usize>,
    /// Cumulative suppressed-retransmission count at the last tick (the
    /// tick feeds the controller the per-window delta).
    last_suppressed: u64,
    /// The shard's autotune decision trace (one record per window tick).
    decisions: Vec<AutotuneTickRecord>,
}

struct ShardedHarness<'a> {
    schedule: &'a ShardedFaultSchedule,
    config: &'a ShardedScheduleConfig,
    service: ShardedSimService,
    states: Vec<ShardState>,
    plane: FleetControlPlane,
    alert_model: ObservationModel,
    /// Per-λ degraded alert models (see [`adversary::degraded_model_table`]).
    degraded_models: Vec<(u64, ObservationModel)>,
    rng: StdRng,
    routing: RoutingChecker,
    transactions: Vec<MultiPutTx>,
    next_tx: u64,
    /// Requests issued from serial (barrier/settle) phases; the fleet
    /// total adds every shard's own counter.
    issued: u64,
    /// The step currently executing (the horizon during the settle phase);
    /// serial submission helpers stamp `outstanding_since` with it.
    current_step: u32,
}

impl<'a> ShardedHarness<'a> {
    fn new(schedule: &'a ShardedFaultSchedule, config: &'a ShardedScheduleConfig) -> Result<Self> {
        let service = ShardedSimService::new(&ShardedSimConfig {
            shards: config.shards.max(1),
            cluster: config.base.minbft_config(schedule.seed),
            clients_per_shard: 4,
        });
        let alert_model = ObservationModel::paper_default();
        let node_model = NodeModel::new(NodeParameters::default(), alert_model.clone())?;
        let plane = FleetControlPlane::with_model(config.fleet_config(), node_model)?;
        let partitioner = *service.partitioner();
        let states: Vec<ShardState> = (0..service.num_shards())
            .map(|shard| {
                let mut supervisors = BTreeMap::new();
                for id in 0..config.base.initial_replicas as NodeId {
                    supervisors.insert(id, Supervisor::new());
                }
                let owned_keys = partitioner.owned_keys(shard, config.key_space.max(1));
                let workload = config.workload.as_ref().map(|workload_config| {
                    TraceWorkload::new(
                        shard_seed(schedule.seed, shard),
                        &owned_keys,
                        workload_config,
                    )
                });
                ShardState {
                    supervisors,
                    checker: InvariantChecker::new(),
                    added_stack: Vec::new(),
                    recoveries: 0,
                    recovery_delays: Vec::new(),
                    pending_bursts: 0,
                    owned_keys,
                    pool: service.pool_clients(shard).to_vec(),
                    clients: service.pool_clients(shard).to_vec(),
                    outstanding_since: BTreeMap::new(),
                    cursor: 0,
                    routing_pending: Vec::new(),
                    plane_notes: Vec::new(),
                    window_violation: None,
                    issued: 0,
                    trace: Vec::new(),
                    workload,
                    tuner: config.autotune.as_ref().map(AutotuneController::new),
                    admission: Admission::Accept,
                    concurrency: None,
                    last_suppressed: 0,
                    decisions: Vec::new(),
                }
            })
            .collect();
        let degraded_models = adversary::degraded_model_table(&alert_model)?;
        Ok(ShardedHarness {
            schedule,
            config,
            service,
            states,
            plane,
            alert_model,
            degraded_models,
            rng: StdRng::seed_from_u64(schedule.seed ^ 0x51e7_c0de_0bad_cafe),
            routing: RoutingChecker::new(),
            transactions: Vec::new(),
            next_tx: 1,
            issued: 0,
            current_step: 0,
        })
    }

    /// Runs `f(shard, cluster, state)` for every shard — inline in shard
    /// index order when `workers <= 1` (the lockstep schedule), otherwise
    /// across the persistent [`WorkerPool`]. Every parallel phase of the
    /// engine and of the settle drain goes through here, so the lockstep
    /// and event-driven paths are one implementation.
    fn for_each_shard<F>(
        service: &mut ShardedSimService,
        states: &mut [ShardState],
        workers: usize,
        f: F,
    ) where
        F: Fn(usize, &mut MinBftCluster, &mut ShardState) + Sync,
    {
        let mut shards: Vec<(&mut MinBftCluster, &mut ShardState)> = service
            .shards_mut()
            .iter_mut()
            .zip(states.iter_mut())
            .collect();
        if workers <= 1 || shards.len() <= 1 {
            for (shard, pair) in shards.iter_mut().enumerate() {
                f(shard, pair.0, pair.1);
            }
        } else {
            WorkerPool::global().for_each_mut(&mut shards, workers, |shard, pair| {
                f(shard, pair.0, pair.1);
            });
        }
    }

    /// Records a routed submission in the owning shard's validity oracle
    /// and the fleet routing oracle (serial phases only).
    fn record(&mut self, shard: usize, digest: Digest) {
        self.states[shard].checker.record_submission(digest);
        self.routing.record_submission(digest, shard);
        self.issued += 1;
    }

    /// Submits an operation on a freshly created dedicated client of the
    /// owning shard and returns `(shard, client)` (serial phases only).
    fn submit_dedicated(&mut self, operation: Operation) -> (usize, NodeId) {
        let key = operation.key().expect("transaction operations are keyed");
        let shard = self.service.owner(key);
        let client = self.service.add_client(shard);
        self.states[shard].clients.push(client);
        let request = self.service.submit_on(shard, client, operation);
        if std::env::var_os("SIMNET_DEBUG").is_some() {
            eprintln!(
                "  submit(tx) shard {shard} client {client} id {} op {:?} digest {}",
                request.id,
                request.operation,
                request.digest().0 % 100_000
            );
        }
        self.record(shard, request.digest());
        self.states[shard]
            .outstanding_since
            .insert(client, self.current_step);
        (shard, client)
    }

    /// Recovery of one shard's node through the shared actuator; returns
    /// whether the node actually recovered. Safe in parallel phases — the
    /// caller is responsible for the control-plane notification (directly
    /// when serial, via a [`PlaneNote`] otherwise).
    fn recover_node_local(
        cluster: &mut MinBftCluster,
        state: &mut ShardState,
        node: NodeId,
        step: u32,
    ) -> bool {
        let mut actuator = HarnessActuator {
            cluster,
            supervisors: &mut state.supervisors,
            added_stack: &mut state.added_stack,
            recoveries: &mut state.recoveries,
            recovery_delays: &mut state.recovery_delays,
            step,
        };
        actuator.recover_node(node)
    }

    /// Serial-phase recovery: actuate and notify the control plane.
    fn recover_shard_node(&mut self, shard: usize, node: NodeId, step: u32) {
        let state = &mut self.states[shard];
        let cluster = &mut self.service.shards_mut()[shard];
        if Self::recover_node_local(cluster, state, node, step) {
            self.plane.controller(shard, node).notify_recovered();
        }
    }

    /// Applies one scheduled fault to one shard's sub-executor.
    /// Control-plane effects are buffered as [`PlaneNote`]s.
    fn apply_shard_event(
        config: &ShardedScheduleConfig,
        cluster: &mut MinBftCluster,
        state: &mut ShardState,
        event: &FaultEvent,
        step: u32,
    ) {
        // Storms perturb the *ambient* profile of the step (the asynchronous
        // profile before GST) and RestoreNetwork restores it, mirroring the
        // single-group executor.
        let ambient_network = config.base.ambient_network(step);
        let max_replicas = config.base.max_replicas;
        match event {
            FaultEvent::Partition { group_a, group_b } => {
                cluster.partition_network(group_a, group_b);
            }
            FaultEvent::Heal => cluster.heal_network(),
            FaultEvent::LossStorm { loss_rate } => {
                let mut network = ambient_network;
                network.loss_rate = network.loss_rate.max(*loss_rate);
                cluster.set_network_config(network.clamped());
            }
            FaultEvent::DelayStorm { latency, jitter } => {
                let mut network = ambient_network;
                network.latency = network.latency.max(*latency);
                network.jitter = network.jitter.max(*jitter);
                cluster.set_network_config(network.clamped());
            }
            FaultEvent::RestoreNetwork => {
                cluster.set_network_config(ambient_network);
            }
            FaultEvent::CrashReplica { node } => {
                if cluster.membership().contains(node) {
                    cluster.crash_replica(*node);
                    if let Some(supervisor) = state.supervisors.get_mut(node) {
                        supervisor.schedule_crashed = true;
                        supervisor.state = NodeState::Crashed;
                    }
                }
            }
            FaultEvent::RecoverReplica { node } => {
                if Self::recover_node_local(cluster, state, *node, step) {
                    state.plane_notes.push(PlaneNote::Recovered(*node));
                }
            }
            FaultEvent::ByzantineFlip { node, mode } => {
                if cluster.membership().contains(node) && !cluster.is_crashed(*node) {
                    cluster.set_byzantine(*node, *mode);
                    // The flip perturbs the IDS observation stream too,
                    // with a heavily degraded signature.
                    if let Some(supervisor) = state.supervisors.get_mut(node) {
                        supervisor.state = NodeState::Compromised;
                        supervisor.compromised_at.get_or_insert(step);
                        supervisor.ids_lambda = adversary::BYZANTINE_FLIP_IDS_LAMBDA;
                    }
                }
            }
            FaultEvent::IntrusionBurst { node, mode } => {
                if cluster.membership().contains(node) && !cluster.is_crashed(*node) {
                    cluster.set_byzantine(*node, *mode);
                    if let Some(supervisor) = state.supervisors.get_mut(node) {
                        supervisor.state = NodeState::Compromised;
                        supervisor.compromised_at.get_or_insert(step);
                        supervisor.ids_lambda = 0.0;
                    }
                }
            }
            FaultEvent::AdoptAttacker { node, attacker } => {
                if cluster.membership().contains(node) && !cluster.is_crashed(*node) {
                    cluster.set_attacker(*node, Some(*attacker));
                    if let Some(supervisor) = state.supervisors.get_mut(node) {
                        supervisor.state = NodeState::Compromised;
                        supervisor.compromised_at.get_or_insert(step);
                        supervisor.ids_lambda = adversary::attacker_ids_lambda(*attacker);
                    }
                }
            }
            FaultEvent::AddReplica => {
                if cluster.num_replicas() < max_replicas {
                    let id = cluster.add_replica();
                    state.supervisors.insert(id, Supervisor::new());
                    state.added_stack.push(id);
                }
            }
            FaultEvent::EvictReplica { node } => {
                let target = node.or_else(|| state.added_stack.pop());
                if let Some(target) = target {
                    if cluster.membership().contains(&target) && cluster.num_replicas() > 3 {
                        cluster.evict_replica(target);
                        state.supervisors.remove(&target);
                        state.checker.forget_replica(target);
                        state.plane_notes.push(PlaneNote::Forget(target));
                    }
                }
            }
            FaultEvent::ClientBurst { requests } => {
                state.pending_bursts += requests;
            }
            FaultEvent::InjectDoubleCommit { node } => {
                cluster.inject_double_commit(*node);
            }
        }
    }

    /// Applies every fault event of this shard due at `step`, advancing
    /// the shard's schedule cursor.
    fn apply_due_events(
        config: &ShardedScheduleConfig,
        events: &[ScheduledFault],
        cluster: &mut MinBftCluster,
        state: &mut ShardState,
        step: u32,
    ) {
        while let Some(fault) = events.get(state.cursor) {
            if fault.step > step {
                break;
            }
            state.cursor += 1;
            Self::apply_shard_event(config, cluster, state, &fault.event, step);
        }
    }

    /// Global stabilization of one shard: partitions heal and the
    /// bounded-delay profile holds from here on.
    fn restore_gst(config: &ShardedScheduleConfig, cluster: &mut MinBftCluster) {
        cluster.heal_network();
        cluster.set_network_config(config.base.network);
    }

    /// Drains the plane notes buffered by the parallel phases, shard-major
    /// — the same order the lockstep loop raised them in.
    fn drain_plane_notes(&mut self) {
        for shard in 0..self.states.len() {
            let notes = std::mem::take(&mut self.states[shard].plane_notes);
            for note in notes {
                match note {
                    PlaneNote::Recovered(node) => {
                        self.plane.controller(shard, node).notify_recovered();
                    }
                    PlaneNote::Forget(node) => self.plane.forget(shard, node),
                }
            }
        }
    }

    /// Merges the routed-submission records buffered by the parallel
    /// phases into the fleet routing oracle, shard-major — the same global
    /// sequence the lockstep loop produced.
    fn merge_routing_records(&mut self) {
        for (shard, state) in self.states.iter_mut().enumerate() {
            for digest in state.routing_pending.drain(..) {
                self.routing.record_submission(digest, shard);
            }
        }
    }

    /// One fleet control tick: per-shard IDS observations (one weighted
    /// draw per reporting replica, shard-major in membership order) through
    /// the shared [`FleetControlPlane`].
    fn control_tick(&mut self, step: u32) {
        let mut observations: Vec<Vec<(NodeId, NodeReport<'_>)>> = Vec::new();
        for shard in 0..self.service.num_shards() {
            let membership: Vec<NodeId> = self.service.shard(shard).membership().to_vec();
            let mut shard_observations = Vec::with_capacity(membership.len());
            for id in membership {
                let report = match self.states[shard].supervisors.get(&id) {
                    None => NodeReport::Silent,
                    Some(supervisor) if supervisor.schedule_crashed => NodeReport::Silent,
                    Some(supervisor) => {
                        let sample_state = match supervisor.state {
                            NodeState::Compromised => NodeState::Compromised,
                            _ => NodeState::Healthy,
                        };
                        // Per-variant degraded compromise signatures; the
                        // model choice never changes the RNG draw count.
                        let model = adversary::degraded_model(
                            &self.degraded_models,
                            &self.alert_model,
                            supervisor.ids_lambda,
                        );
                        NodeReport::Sample(model.sample(sample_state, &mut self.rng))
                    }
                };
                shard_observations.push((id, report));
            }
            observations.push(shard_observations);
        }
        let mut storage: Vec<HarnessActuator<'_>> = self
            .service
            .shards_mut()
            .iter_mut()
            .zip(self.states.iter_mut())
            .map(|(cluster, state)| HarnessActuator {
                cluster,
                supervisors: &mut state.supervisors,
                added_stack: &mut state.added_stack,
                recoveries: &mut state.recoveries,
                recovery_delays: &mut state.recovery_delays,
                step,
            })
            .collect();
        let mut actuators: Vec<&mut dyn ClusterActuator> = storage
            .iter_mut()
            .map(|actuator| actuator as &mut dyn ClusterActuator)
            .collect();
        self.plane
            .tick(&observations, &mut actuators, &mut self.rng);
    }

    /// Submits a keyed operation on the first free pool client of this
    /// shard, recording it locally (validity oracle + routing buffer). The
    /// scan covers the pool's autotuned concurrency prefix — the AIMD
    /// concurrency law caps how many pool clients may hold an outstanding
    /// request at once.
    fn submit_shard_put(
        shard: usize,
        cluster: &mut MinBftCluster,
        state: &mut ShardState,
        operation: Operation,
        step: u32,
    ) -> bool {
        let cap = state.concurrency.unwrap_or(state.pool.len()).max(1);
        let Some(client) = state
            .pool
            .iter()
            .take(cap)
            .copied()
            .find(|&c| !cluster.has_outstanding_request(c))
        else {
            return false;
        };
        let request = cluster.submit(client, operation);
        if std::env::var_os("SIMNET_DEBUG").is_some() {
            eprintln!(
                "  submit shard {shard} client {client} id {} op {:?} digest {}",
                request.id,
                request.operation,
                request.digest().0 % 100_000
            );
        }
        state.checker.record_submission(request.digest());
        state.routing_pending.push(request.digest());
        state.issued += 1;
        state.outstanding_since.insert(client, step);
        true
    }

    /// The deterministic per-window autotune tick of one shard: at
    /// `window_steps`-aligned steps the controller observes the drained
    /// completion latencies (p99 over the window), the simulated network's
    /// in-flight depth and the suppressed-retransmission delta, then
    /// actuates the shard's batch knobs — re-clamped through the cluster's
    /// own [`tolerance_consensus::MinBftConfig::validate`] floor — and the
    /// concurrency/admission verdicts the client driving below obeys.
    /// Pure per-shard state, so the parallel phases stay deterministic.
    fn autotune_tick(cluster: &mut MinBftCluster, state: &mut ShardState, step: u32) {
        let window = match state.tuner.as_ref() {
            Some(tuner) => tuner.config().window_steps.max(1),
            None => return,
        };
        if !step.is_multiple_of(window) {
            return;
        }
        let latencies = cluster.take_latencies();
        let mut histogram = LatencyHistogram::new();
        for &latency in &latencies {
            histogram.record(latency);
        }
        let (_, suppressed_total) = cluster.retransmission_stats();
        let suppressed = suppressed_total.saturating_sub(state.last_suppressed);
        state.last_suppressed = suppressed_total;
        let tuner = state.tuner.as_mut().expect("checked above");
        let decision = tuner.observe(AutotuneObservation {
            completed: latencies.len() as u64,
            p99: histogram.quantile(0.99),
            queue_depth: cluster.network_in_flight() as u64,
            suppressed,
        });
        debug_assert!(tuner.actuation_validates());
        cluster.set_batch_config(decision.batch_size, decision.batch_delay);
        state.admission = decision.admission;
        state.concurrency = Some(decision.concurrency);
        state.decisions.push(AutotuneTickRecord { step, decision });
    }

    /// Drives one shard's routed clients for one step: the closed-loop
    /// driver (one keyed request plus burst backlog), or the open-loop
    /// [`TraceWorkload`] when configured. The autotune tick (when
    /// configured) runs first, so a window's decision governs the window's
    /// own demand.
    fn drive_shard_clients(
        shard: usize,
        cluster: &mut MinBftCluster,
        state: &mut ShardState,
        step: u32,
    ) {
        Self::autotune_tick(cluster, state, step);
        if let Some(mut workload) = state.workload.take() {
            // Open loop: the offered arrivals (plus any deferred demand and
            // scheduled bursts) are submitted while pool clients are free;
            // the rest queues up to the backlog cap and beyond it is shed.
            // Backpressure intervenes first: `Delay` defers the whole
            // step's demand to the backlog, `Shed` drops it outright.
            let mut demand = workload.arrivals(step).saturating_add(state.pending_bursts);
            match state.admission {
                Admission::Shed => demand = 0,
                Admission::Delay => {}
                Admission::Accept => {
                    while demand > 0 {
                        let key = workload.draw_key();
                        let value = 0x2000_0000 + u64::from(step) * 64 + u64::from(demand);
                        if !Self::submit_shard_put(
                            shard,
                            cluster,
                            state,
                            Operation::Put { key, value },
                            step,
                        ) {
                            break;
                        }
                        demand -= 1;
                    }
                }
            }
            state.pending_bursts = demand.min(workload.backlog_cap());
            state.workload = Some(workload);
            return;
        }
        match state.admission {
            Admission::Shed => {
                state.pending_bursts = 0;
                return;
            }
            Admission::Delay => return,
            Admission::Accept => {}
        }
        let key = state.owned_keys[step as usize % state.owned_keys.len()];
        let submitted = Self::submit_shard_put(
            shard,
            cluster,
            state,
            Operation::Put {
                key,
                value: u64::from(step) + 1,
            },
            step,
        );
        let mut bursts = state.pending_bursts;
        if !submitted {
            return;
        }
        while bursts > 0 {
            let key = state.owned_keys[(step as usize + bursts as usize) % state.owned_keys.len()];
            if !Self::submit_shard_put(
                shard,
                cluster,
                state,
                Operation::Put {
                    key,
                    value: 0x1000_0000 + u64::from(step) * 16 + u64::from(bursts),
                },
                step,
            ) {
                break;
            }
            bursts -= 1;
        }
        state.pending_bursts = bursts;
    }

    /// The keys of transaction `tx`: a fresh, transaction-private range
    /// (so the atomicity oracle can compare against 0/value without a
    /// linearizability checker), spanning at least two shards when the
    /// fleet has them.
    fn tx_keys(partitioner: &KeyPartitioner, tx: u64, count: usize) -> Vec<u32> {
        let base = 0x4000_0000u32 + (tx as u32) * 1024;
        let count = count.max(1);
        let mut keys: Vec<u32> = (0..count as u32).map(|j| base + j).collect();
        if partitioner.shards() > 1 && count > 1 {
            let first_owner = partitioner.owner(keys[0]);
            if keys.iter().all(|&k| partitioner.owner(k) == first_owner) {
                let mut probe = base + count as u32;
                loop {
                    if partitioner.owner(probe) != first_owner {
                        *keys.last_mut().expect("count >= 1") = probe;
                        break;
                    }
                    probe += 1;
                }
            }
        }
        keys
    }

    fn launch_multi_put(&mut self) {
        let tx = self.next_tx;
        self.next_tx += 1;
        let keys = Self::tx_keys(self.service.partitioner(), tx, self.config.multi_put_keys);
        let pairs: Vec<(u32, u64)> = keys
            .iter()
            .enumerate()
            .map(|(index, &key)| (key, tx * 1_000 + index as u64 + 1))
            .collect();
        // The client-crash chaos, deterministic in the transaction id.
        let abandon = match tx % 3 {
            1 => TxAbandon::BeforeCommit,
            2 => TxAbandon::MidCommit,
            _ => TxAbandon::None,
        };
        let ops: Vec<(Operation, usize, NodeId, OpState)> = pairs
            .iter()
            .map(|&(key, value)| {
                let op = Operation::TxReserve { tx, key, value };
                let (shard, client) = self.submit_dedicated(op);
                (op, shard, client, OpState::InFlight)
            })
            .collect();
        self.transactions.push(MultiPutTx {
            tx,
            pairs,
            phase: TxPhase::Reserving,
            abandon,
            ops,
        });
    }

    /// Advances every active MultiPut transaction's state machine (the
    /// client half of the two-round protocol, including the scripted
    /// mid-protocol "crashes"). Barrier phases only — transactions span
    /// shards.
    fn step_multi_puts(&mut self, step: u32) {
        if self.config.multi_put_interval > 0
            && step > 0
            && step.is_multiple_of(self.config.multi_put_interval)
        {
            self.launch_multi_put();
        }
        for index in 0..self.transactions.len() {
            // Completion: a dedicated client with no outstanding request
            // has had its (only) request answered.
            let mut all_done = true;
            for op_index in 0..self.transactions[index].ops.len() {
                let (_, shard, client, state) = self.transactions[index].ops[op_index];
                if state == OpState::InFlight {
                    if self.service.shard(shard).has_outstanding_request(client) {
                        all_done = false;
                    } else {
                        self.transactions[index].ops[op_index].3 = OpState::Done;
                    }
                }
            }
            if !all_done {
                continue;
            }
            let (phase, abandon, tx) = {
                let t = &self.transactions[index];
                (t.phase, t.abandon, t.tx)
            };
            match phase {
                TxPhase::Reserving => {
                    if abandon == TxAbandon::BeforeCommit {
                        self.transactions[index].phase = TxPhase::AbandonedReserved;
                        continue;
                    }
                    // The commit point: every reserve is quorum-acked.
                    let pairs = self.transactions[index].pairs.clone();
                    let commits: Vec<(u32, u64)> = if abandon == TxAbandon::MidCommit {
                        pairs[..1].to_vec()
                    } else {
                        pairs
                    };
                    let ops: Vec<(Operation, usize, NodeId, OpState)> = commits
                        .iter()
                        .map(|&(key, _)| {
                            let op = Operation::TxCommit { tx, key };
                            let (shard, client) = self.submit_dedicated(op);
                            (op, shard, client, OpState::InFlight)
                        })
                        .collect();
                    self.transactions[index].ops = ops;
                    self.transactions[index].phase = TxPhase::Committing;
                }
                TxPhase::Committing => {
                    self.transactions[index].phase = if abandon == TxAbandon::MidCommit {
                        TxPhase::AbandonedMidCommit
                    } else {
                        TxPhase::Done
                    };
                }
                _ => {}
            }
        }
    }

    fn completed_total(&self) -> u64 {
        self.states
            .iter()
            .enumerate()
            .map(|(shard, state)| {
                state
                    .clients
                    .iter()
                    .map(|&c| self.service.shard(shard).completed_requests(c))
                    .sum::<u64>()
            })
            .sum()
    }

    fn shard_violation(shard: usize, violation: Violation) -> Violation {
        Violation {
            detail: format!("shard {shard}: {}", violation.detail),
            ..violation
        }
    }

    /// The pre-barrier oracles of one shard: log agreement/validity,
    /// network accounting, and the fleet-wide recovery bound.
    fn check_shard_pre(
        config: &ShardedScheduleConfig,
        shard: usize,
        cluster: &MinBftCluster,
        state: &mut ShardState,
        step: u32,
    ) -> Option<Violation> {
        // The recovery bound gains the fleet-wide queueing slack of the
        // *global* k budget: every shard's compromises compete for the
        // same slots.
        let bound = config.base.delta_r + (config.shards * config.base.initial_replicas) as u32 + 1;
        if let Some(violation) = state.checker.check_logs(cluster, step) {
            return Some(Self::shard_violation(shard, violation));
        }
        if let Some(violation) = state.checker.check_network(cluster, step) {
            return Some(Self::shard_violation(shard, violation));
        }
        for (&id, supervisor) in &state.supervisors {
            if let Some(at) = supervisor.compromised_at {
                if step.saturating_sub(at) > bound {
                    return Some(Violation {
                        kind: InvariantKind::RecoveryBound,
                        step,
                        detail: format!(
                            "shard {shard}: replica {id} compromised at step {at} still \
                             unrecovered at step {step} (bound {bound})"
                        ),
                    });
                }
            }
        }
        None
    }

    /// The liveness-after-GST oracle of one shard: every request submitted
    /// before stabilization must complete within the bounded window.
    /// Prunes completed requests from the shard's bookkeeping either way.
    fn check_shard_gst(
        config: &ShardedScheduleConfig,
        shard: usize,
        cluster: &MinBftCluster,
        state: &mut ShardState,
        step: u32,
    ) -> Option<Violation> {
        state
            .outstanding_since
            .retain(|&client, _| cluster.has_outstanding_request(client));
        if let Some(gst) = config.base.gst {
            if step >= gst && step - gst > config.base.post_gst_liveness_steps {
                for (&client, &since) in &state.outstanding_since {
                    if since < gst {
                        return Some(Violation {
                            kind: InvariantKind::LivenessAfterGst,
                            step,
                            detail: format!(
                                "shard {shard}: client {client}'s request from step {since} \
                                 (before GST at step {gst}) still uncommitted {} steps after \
                                 stabilization (bound {})",
                                step - gst,
                                config.base.post_gst_liveness_steps
                            ),
                        });
                    }
                }
            }
        }
        None
    }

    /// The full oracle pass in lockstep order — shard-major, pre-barrier
    /// oracles, then routing, then GST liveness per shard. Used at
    /// single-step barriers and at the end of the settle phase (the
    /// free-run windows use the same per-shard checks locally and
    /// [`ShardedHarness::resolve_window`] canonically).
    fn check_invariants(&mut self, step: u32) -> Option<Violation> {
        for shard in 0..self.service.num_shards() {
            let cluster = self.service.shard(shard);
            let state = &mut self.states[shard];
            if let Some(violation) = Self::check_shard_pre(self.config, shard, cluster, state, step)
            {
                return Some(violation);
            }
            if let Some(violation) = self.routing.check_shard(shard, cluster, step) {
                return Some(violation);
            }
            if let Some(violation) = Self::check_shard_gst(self.config, shard, cluster, state, step)
            {
                return Some(violation);
            }
        }
        None
    }

    /// One shard's trace record at `step`.
    fn shard_trace_record(cluster: &MinBftCluster, state: &ShardState, step: u32) -> TraceRecord {
        let faulty: Vec<NodeId> = state
            .supervisors
            .iter()
            .filter(|(_, s)| s.schedule_crashed || s.state != NodeState::Healthy)
            .map(|(&id, _)| id)
            .collect();
        let completed: u64 = state
            .clients
            .iter()
            .map(|&c| cluster.completed_requests(c))
            .sum();
        TraceRecord {
            step,
            time_bits: cluster.now().to_bits(),
            membership: cluster.membership().to_vec(),
            commits: cluster.commit_trace().len() as u64,
            view_changes: cluster.view_changes(),
            completed,
            net_sent: cluster.network_stats().sent,
            faulty,
        }
    }

    /// Free-runs one shard's sub-executor through `window` (`start..end`).
    /// The barrier step `start` has already had its events and client
    /// driving applied in the barrier phases; later steps apply their own.
    /// With `local_checks`, the per-shard oracles run each step and the
    /// shard stops at its earliest violation (recorded for canonical
    /// resolution at the barrier); without (single-step windows), the
    /// barrier runs the full lockstep oracle pass instead.
    fn shard_window(
        config: &ShardedScheduleConfig,
        events: &[ScheduledFault],
        shard: usize,
        cluster: &mut MinBftCluster,
        state: &mut ShardState,
        window: std::ops::Range<u32>,
        local_checks: bool,
    ) {
        let start = window.start;
        for step in window {
            if step != start {
                if config.base.gst == Some(step) {
                    Self::restore_gst(config, cluster);
                }
                Self::apply_due_events(config, events, cluster, state, step);
                Self::drive_shard_clients(shard, cluster, state, step);
            }
            cluster.run_until(f64::from(step + 1) * config.base.step_duration);
            if local_checks {
                if let Some(violation) = Self::check_shard_pre(config, shard, cluster, state, step)
                {
                    state.window_violation = Some((step, 0, violation));
                } else if let Some(violation) =
                    Self::check_shard_gst(config, shard, cluster, state, step)
                {
                    state.window_violation = Some((step, 1, violation));
                }
            }
            state
                .trace
                .push(Self::shard_trace_record(cluster, state, step));
            if state.window_violation.is_some() {
                break;
            }
        }
    }

    /// Canonical violation resolution at a multi-step window barrier: the
    /// earliest `(step, shard, pre-before-GST)` local violation wins; when
    /// no shard violated locally, the routing oracle runs shard-major at
    /// the window's last step. Returns the violation and its step.
    fn resolve_window(&mut self, window_end: u32) -> Option<(u32, Violation)> {
        let mut best: Option<(u32, u8, usize)> = None;
        for (shard, state) in self.states.iter().enumerate() {
            if let Some((step, rank, _)) = &state.window_violation {
                let key = (*step, *rank, shard);
                if best.map(|b| key < b).unwrap_or(true) {
                    best = Some(key);
                }
            }
        }
        if let Some((step, _, shard)) = best {
            let (_, _, violation) = self.states[shard]
                .window_violation
                .take()
                .expect("the canonical candidate exists");
            return Some((step, violation));
        }
        let step = window_end.saturating_sub(1);
        for shard in 0..self.service.num_shards() {
            let cluster = self.service.shard(shard);
            if let Some(violation) = self.routing.check_shard(shard, cluster, step) {
                return Some((step, violation));
            }
        }
        None
    }

    /// Per-shard state-transfer nudge: replicas that fell behind or flag
    /// `needs_state` are re-driven through recovery.
    fn catch_up_shard(cluster: &mut MinBftCluster) {
        let members: Vec<NodeId> = cluster.membership().to_vec();
        let longest = members
            .iter()
            .filter_map(|&id| cluster.executed_len(id))
            .max()
            .unwrap_or(0);
        for id in members {
            let lagging = cluster
                .executed_len(id)
                .map(|len| len + 2 < longest)
                .unwrap_or(false);
            if cluster.needs_state(id) || lagging {
                cluster.recover_replica(id);
            }
        }
    }

    fn any_outstanding(&self) -> bool {
        self.states.iter().enumerate().any(|(shard, state)| {
            state
                .clients
                .iter()
                .any(|&c| self.service.shard(shard).has_outstanding_request(c))
        })
    }

    fn fleet_now(&self) -> f64 {
        (0..self.service.num_shards())
            .map(|shard| self.service.shard(shard).now())
            .fold(0.0, f64::max)
    }

    /// The settle phase: heal every shard, recover every still-marked
    /// replica, drain outstanding requests, **roll forward** interrupted
    /// MultiPut commit rounds, probe each shard, and run the atomicity
    /// check over every transaction. The drain rounds run per-shard on the
    /// worker pool (each to a barrier-computed common deadline); every
    /// oracle decision stays serial.
    fn settle(&mut self, workers: usize) -> Option<Violation> {
        Self::for_each_shard(&mut self.service, &mut self.states, workers, {
            let config = self.config;
            move |_, cluster, _| {
                cluster.heal_network();
                cluster.set_network_config(config.base.network);
            }
        });
        for shard in 0..self.service.num_shards() {
            let members: Vec<NodeId> = self.service.shard(shard).membership().to_vec();
            for id in members {
                let marked = self.states[shard]
                    .supervisors
                    .get(&id)
                    .map(|s| s.schedule_crashed || s.state != NodeState::Healthy)
                    .unwrap_or(false);
                let cluster = self.service.shard(shard);
                if marked
                    || cluster.byzantine_mode(id) != Some(ByzantineMode::Correct)
                    || cluster.is_crashed(id)
                {
                    self.recover_shard_node(shard, id, self.config.base.horizon);
                }
            }
        }
        let settle_window = 5.0_f64.max(self.config.base.step_duration * 4.0);
        for round in 0..10 {
            let target = self.fleet_now() + settle_window;
            Self::for_each_shard(
                &mut self.service,
                &mut self.states,
                workers,
                move |_, cluster, _| {
                    cluster.run_until(target);
                    Self::catch_up_shard(cluster);
                },
            );
            if !self.any_outstanding() && round > 0 {
                break;
            }
        }
        if self.any_outstanding() {
            return Some(Violation {
                kind: InvariantKind::Liveness,
                step: u32::MAX,
                detail: "clients still have unanswered requests after all faults were healed"
                    .into(),
            });
        }
        // Roll-forward: re-drive every interrupted commit round (the
        // recovery any client may perform, because commits are idempotent).
        let roll_forward: Vec<(u64, Vec<(u32, u64)>)> = self
            .transactions
            .iter()
            .filter(|t| matches!(t.phase, TxPhase::Committing | TxPhase::AbandonedMidCommit))
            .map(|t| (t.tx, t.pairs.clone()))
            .collect();
        for (tx, pairs) in &roll_forward {
            for &(key, _) in pairs {
                self.submit_dedicated(Operation::TxCommit { tx: *tx, key });
            }
        }
        // Probe every shard: a fresh routed request must complete.
        for shard in 0..self.service.num_shards() {
            let key = self.states[shard].owned_keys[0];
            let client = self.service.add_client(shard);
            self.states[shard].clients.push(client);
            let request = self.service.submit_on(
                shard,
                client,
                Operation::Put {
                    key,
                    value: 0xdead_beef,
                },
            );
            self.record(shard, request.digest());
        }
        for _ in 0..10 {
            let target = self.fleet_now() + settle_window;
            Self::for_each_shard(
                &mut self.service,
                &mut self.states,
                workers,
                move |_, cluster, _| {
                    cluster.run_until(target);
                    Self::catch_up_shard(cluster);
                },
            );
            if !self.any_outstanding() {
                break;
            }
        }
        if self.any_outstanding() {
            return Some(Violation {
                kind: InvariantKind::Liveness,
                step: u32::MAX,
                detail: "a settle-phase probe or roll-forward commit never completed".into(),
            });
        }
        for index in 0..self.transactions.len() {
            if matches!(
                self.transactions[index].phase,
                TxPhase::Committing | TxPhase::AbandonedMidCommit
            ) {
                self.transactions[index].phase = TxPhase::Done;
            }
        }
        // Atomicity: every transaction is all-or-nothing by now. The keys
        // are transaction-private, so "nothing" is exactly the absent/0
        // value and "all" is exactly the transaction's values.
        for transaction in &self.transactions {
            let applied = transaction.phase == TxPhase::Done;
            for &(key, value) in &transaction.pairs {
                let observed = self.service.read_key(key).unwrap_or(0);
                let expected = if applied { value } else { 0 };
                if observed != expected {
                    return Some(Violation {
                        kind: InvariantKind::Atomicity,
                        step: u32::MAX,
                        detail: format!(
                            "multi-put tx {} ({}applied) key {key}: observed {observed}, \
                             expected {expected}",
                            transaction.tx,
                            if applied { "" } else { "not " },
                        ),
                    });
                }
            }
        }
        if let Some(violation) = self.check_invariants(self.config.base.horizon) {
            return Some(violation);
        }
        if !self.service.logs_are_consistent() {
            return Some(Violation {
                kind: InvariantKind::Agreement,
                step: u32::MAX,
                detail: "a shard's healthy logs diverged by the end of the settle phase".into(),
            });
        }
        None
    }

    /// `SIMNET_DEBUG` diagnostics: per-shard replica state and, on a
    /// violation, the full commit traces.
    fn debug_dump(&self, step: u32, violation: Option<&Violation>) {
        for shard in 0..self.service.num_shards() {
            let cluster = self.service.shard(shard);
            for &id in &cluster.membership().to_vec() {
                eprintln!(
                    "  step {step} shard {shard} replica {id}: len {} start {:?} crashed {} \
                     needs_state {}",
                    cluster.executed_len(id).unwrap_or(0),
                    cluster.executed_log_start(id),
                    cluster.is_crashed(id),
                    cluster.needs_state(id),
                );
            }
            if violation.is_some() {
                for &id in &cluster.membership().to_vec() {
                    eprintln!("    {}", cluster.debug_replica(id));
                    if let (Some(log), Some(start)) =
                        (cluster.executed_log(id), cluster.executed_log_start(id))
                    {
                        let tail: Vec<(u64, u64)> = log
                            .iter()
                            .enumerate()
                            .map(|(i, d)| (start + i as u64, d.0 % 100_000))
                            .collect();
                        eprintln!("    shard {shard} replica {id} log: {tail:?}");
                    }
                }
                for r in cluster.commit_trace() {
                    eprintln!(
                        "  shard {shard} commit: replica {} view {} seq {} digest {}",
                        r.replica,
                        r.view,
                        r.sequence,
                        r.digest.0 % 100_000
                    );
                }
            }
        }
    }

    /// Executes the schedule on `workers` concurrent shard sub-executors.
    /// The result is a pure function of `(seed, config)` — never of
    /// `workers` (see the module docs for the barrier/phase structure).
    fn run(mut self, workers: usize) -> Result<ShardedRunReport> {
        let tick = self.config.fleet_tick_interval.max(1);
        let horizon = self.config.base.horizon;
        // A GST schedule starts every shard in the asynchronous phase.
        let initial_network = self.config.base.ambient_network(0);
        for shard in 0..self.service.num_shards() {
            self.service
                .shard_mut(shard)
                .set_network_config(initial_network);
        }
        let mut violation: Option<Violation> = None;
        let mut steps_run: u64 = 0;
        let mut step = 0u32;
        while step < horizon {
            let window_end = (step + tick).min(horizon);
            self.current_step = step;
            // Phase A — per shard: GST restore and due fault events, with
            // control-plane effects buffered.
            {
                let config = self.config;
                let schedule = self.schedule;
                Self::for_each_shard(
                    &mut self.service,
                    &mut self.states,
                    workers,
                    move |shard, cluster, state| {
                        if config.base.gst == Some(step) {
                            Self::restore_gst(config, cluster);
                        }
                        Self::apply_due_events(
                            config,
                            &schedule.shards[shard].events,
                            cluster,
                            state,
                            step,
                        );
                    },
                );
            }
            // Phase B — serial: control-plane note drain + fleet tick.
            self.drain_plane_notes();
            self.control_tick(step);
            // Phase C — per shard: routed client driving.
            Self::for_each_shard(
                &mut self.service,
                &mut self.states,
                workers,
                move |shard, cluster, state| {
                    Self::drive_shard_clients(shard, cluster, state, step);
                },
            );
            // Phase D — serial: routing-record merge + MultiPut rounds.
            self.merge_routing_records();
            self.step_multi_puts(step);
            // Phase E — per shard: free-run the window.
            let local_checks = window_end - step > 1;
            {
                let config = self.config;
                let schedule = self.schedule;
                Self::for_each_shard(
                    &mut self.service,
                    &mut self.states,
                    workers,
                    move |shard, cluster, state| {
                        Self::shard_window(
                            config,
                            &schedule.shards[shard].events,
                            shard,
                            cluster,
                            state,
                            step..window_end,
                            local_checks,
                        );
                    },
                );
            }
            self.merge_routing_records();
            // Phase F — serial: violation resolution.
            let resolved = if local_checks {
                self.resolve_window(window_end)
            } else {
                let found = self.check_invariants(step);
                if std::env::var_os("SIMNET_DEBUG").is_some() {
                    self.debug_dump(step, found.as_ref());
                }
                found.map(|v| (step, v))
            };
            match resolved {
                Some((violating_step, found)) => {
                    steps_run = u64::from(violating_step) + 1;
                    violation = Some(found);
                    break;
                }
                None => {
                    steps_run = u64::from(window_end);
                }
            }
            step = window_end;
        }
        if violation.is_none() {
            self.current_step = horizon;
            self.drain_plane_notes();
            violation = self.settle(workers);
            for shard in 0..self.service.num_shards() {
                let record = Self::shard_trace_record(
                    self.service.shard(shard),
                    &self.states[shard],
                    horizon,
                );
                self.states[shard].trace.push(record);
            }
        }
        let completed = self.completed_total();
        let issued = self.issued + self.states.iter().map(|s| s.issued).sum::<u64>();
        let recoveries: u64 = self.states.iter().map(|s| s.recoveries).sum();
        let delays: Vec<u32> = self
            .states
            .iter()
            .flat_map(|s| s.recovery_delays.iter().copied())
            .collect();
        let mean_recovery_steps = if delays.is_empty() {
            0.0
        } else {
            delays.iter().map(|&d| f64::from(d)).sum::<f64>() / delays.len() as f64
        };
        let committed_sequences: u64 = (0..self.service.num_shards())
            .map(|shard| InvariantChecker::committed_sequences(self.service.shard(shard)))
            .sum();
        let launched = self.transactions.len() as u64;
        let committed_txs = self
            .transactions
            .iter()
            .filter(|t| t.phase == TxPhase::Done)
            .count() as u64;
        let mut trace = Vec::with_capacity(self.states.len());
        let mut autotune = Vec::with_capacity(self.states.len());
        for state in self.states {
            trace.push(state.trace);
            autotune.push(state.decisions);
        }
        Ok(ShardedRunReport {
            outcome: SimnetOutcome {
                steps: steps_run,
                issued,
                completed,
                recoveries,
                mean_recovery_steps,
                committed_sequences,
                availability: if issued == 0 {
                    1.0
                } else {
                    completed as f64 / issued as f64
                },
            },
            trace,
            multi_puts: (launched, committed_txs),
            autotune,
            violation,
        })
    }
}

/// Greedy drop-one-event minimization across the whole fleet: repeatedly
/// try removing a single event from any shard's schedule and keep the
/// removal whenever the same invariant kind still breaks.
///
/// # Errors
///
/// Propagates harness construction failures.
pub fn shrink_sharded_schedule(
    schedule: &ShardedFaultSchedule,
    config: &ShardedScheduleConfig,
    violation: &Violation,
) -> Result<(ShardedFaultSchedule, Violation)> {
    let mut current = schedule.clone();
    let mut current_violation = violation.clone();
    let mut improved = true;
    while improved {
        improved = false;
        for shard in 0..current.shards.len() {
            let mut index = 0;
            while index < current.shards[shard].events.len() {
                let mut candidate = current.clone();
                candidate.shards[shard].events.remove(index);
                let report = run_sharded_schedule(&candidate, config)?;
                match report.violation {
                    Some(v) if v.kind == current_violation.kind => {
                        current = candidate;
                        current_violation = v;
                        improved = true;
                    }
                    _ => index += 1,
                }
            }
        }
    }
    Ok((current, current_violation))
}

/// A minimal, replayable description of a fleet-level invariant violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedCounterexample {
    /// The fleet seed.
    pub seed: u64,
    /// The full run configuration.
    pub config: ShardedScheduleConfig,
    /// The (shrunk) per-shard schedules that still trigger the violation.
    pub schedule: ShardedFaultSchedule,
    /// The violation observed when executing the schedules.
    pub violation: Violation,
}

impl ShardedCounterexample {
    /// Serializes the counterexample to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| CoreError::Solver(format!("serialize sharded counterexample: {e}")))
    }

    /// Parses a counterexample from JSON (the inverse of
    /// [`ShardedCounterexample::to_json`]). Fields introduced after
    /// counterexamples were first emitted (`fleet_tick_interval`,
    /// `workload`, `autotune`) decode to their defaults when absent, so
    /// archived documents stay replayable.
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a document that does not describe a
    /// sharded counterexample.
    pub fn from_json(json: &str) -> Result<Self> {
        let value = serde_json::parse_value(json)
            .map_err(|e| CoreError::Solver(format!("parse sharded counterexample: {e}")))?;
        let config_value = decode::field(&value, "config")?;
        let defaults = ShardedScheduleConfig::default();
        let config = ShardedScheduleConfig {
            shards: decode::as_usize(decode::field(config_value, "shards")?)?,
            base: decode::config(decode::field(config_value, "base")?)?,
            key_space: u32::try_from(decode::as_u64(decode::field(config_value, "key_space")?)?)
                .map_err(|_| decode::error("key_space out of u32 range"))?,
            multi_put_interval: u32::try_from(decode::as_u64(decode::field(
                config_value,
                "multi_put_interval",
            )?)?)
            .map_err(|_| decode::error("multi_put_interval out of u32 range"))?,
            multi_put_keys: decode::as_usize(decode::field(config_value, "multi_put_keys")?)?,
            fleet_tick_interval: match decode::opt_field(config_value, "fleet_tick_interval") {
                Some(v) => u32::try_from(decode::as_u64(v)?)
                    .map_err(|_| decode::error("fleet_tick_interval out of u32 range"))?,
                None => defaults.fleet_tick_interval,
            },
            workload: match decode::opt_field(config_value, "workload") {
                Some(Value::Null) | None => None,
                Some(v) => Some(decode_workload(v)?),
            },
            autotune: match decode::opt_field(config_value, "autotune") {
                Some(Value::Null) | None => None,
                Some(v) => Some(decode_autotune(v)?),
            },
        };
        let schedule_value = decode::field(&value, "schedule")?;
        let schedule = ShardedFaultSchedule {
            seed: decode::as_u64(decode::field(schedule_value, "seed")?)?,
            shards: decode::as_array(decode::field(schedule_value, "shards")?)?
                .iter()
                .map(decode::schedule)
                .collect::<Result<Vec<_>>>()?,
        };
        let decoded = ShardedCounterexample {
            seed: decode::as_u64(decode::field(&value, "seed")?)?,
            config,
            schedule,
            violation: decode::violation(decode::field(&value, "violation")?)?,
        };
        if decoded.seed != decoded.schedule.seed {
            return Err(decode::error(format!(
                "seed {} disagrees with schedule seed {}",
                decoded.seed, decoded.schedule.seed
            )));
        }
        Ok(decoded)
    }

    /// Re-executes the stored schedules and returns the violation the
    /// replay produces.
    ///
    /// # Errors
    ///
    /// Propagates harness construction failures.
    pub fn replay(&self) -> Result<Option<Violation>> {
        Ok(run_sharded_schedule(&self.schedule, &self.config)?.violation)
    }
}

/// Decodes a [`TraceWorkloadConfig`] object (absent fields decode to their
/// defaults).
fn decode_workload(value: &Value) -> Result<TraceWorkloadConfig> {
    let defaults = TraceWorkloadConfig::default();
    Ok(TraceWorkloadConfig {
        base_rate: match decode::opt_field(value, "base_rate") {
            Some(v) => decode::as_f64(v)?,
            None => defaults.base_rate,
        },
        diurnal_period: match decode::opt_field(value, "diurnal_period") {
            Some(v) => u32::try_from(decode::as_u64(v)?)
                .map_err(|_| decode::error("diurnal_period out of u32 range"))?,
            None => defaults.diurnal_period,
        },
        diurnal_amplitude: match decode::opt_field(value, "diurnal_amplitude") {
            Some(v) => decode::as_f64(v)?,
            None => defaults.diurnal_amplitude,
        },
        zipf_exponent: match decode::opt_field(value, "zipf_exponent") {
            Some(v) => decode::as_f64(v)?,
            None => defaults.zipf_exponent,
        },
        backlog_cap: match decode::opt_field(value, "backlog_cap") {
            Some(v) => u32::try_from(decode::as_u64(v)?)
                .map_err(|_| decode::error("backlog_cap out of u32 range"))?,
            None => defaults.backlog_cap,
        },
    })
}

/// Decodes an [`AutotuneConfig`] object (absent fields decode to their
/// defaults; the controller sanitizes on construction either way).
fn decode_autotune(value: &Value) -> Result<AutotuneConfig> {
    let defaults = AutotuneConfig::default();
    let f64_field = |name: &str, fallback: f64| -> Result<f64> {
        match decode::opt_field(value, name) {
            Some(v) => decode::as_f64(v),
            None => Ok(fallback),
        }
    };
    let usize_field = |name: &str, fallback: usize| -> Result<usize> {
        match decode::opt_field(value, name) {
            Some(v) => decode::as_usize(v),
            None => Ok(fallback),
        }
    };
    let u64_field = |name: &str, fallback: u64| -> Result<u64> {
        match decode::opt_field(value, name) {
            Some(v) => decode::as_u64(v),
            None => Ok(fallback),
        }
    };
    Ok(AutotuneConfig {
        p99_target: f64_field("p99_target", defaults.p99_target)?,
        initial_batch: usize_field("initial_batch", defaults.initial_batch)?,
        min_batch: usize_field("min_batch", defaults.min_batch)?,
        max_batch: usize_field("max_batch", defaults.max_batch)?,
        batch_step: usize_field("batch_step", defaults.batch_step)?,
        initial_concurrency: usize_field("initial_concurrency", defaults.initial_concurrency)?,
        min_concurrency: usize_field("min_concurrency", defaults.min_concurrency)?,
        max_concurrency: usize_field("max_concurrency", defaults.max_concurrency)?,
        concurrency_step: usize_field("concurrency_step", defaults.concurrency_step)?,
        decrease_factor: f64_field("decrease_factor", defaults.decrease_factor)?,
        delay_watermark: u64_field("delay_watermark", defaults.delay_watermark)?,
        shed_watermark: u64_field("shed_watermark", defaults.shed_watermark)?,
        base_batch_delay: f64_field("base_batch_delay", defaults.base_batch_delay)?,
        processing_time: f64_field("processing_time", defaults.processing_time)?,
        signature_time: f64_field("signature_time", defaults.signature_time)?,
        window_steps: match decode::opt_field(value, "window_steps") {
            Some(v) => u32::try_from(decode::as_u64(v)?)
                .map_err(|_| decode::error("window_steps out of u32 range"))?,
            None => defaults.window_steps,
        },
        window_seconds: f64_field("window_seconds", defaults.window_seconds)?,
    })
}

/// Run a fleet schedule and, if it violates an invariant, shrink it and
/// package the counterexample.
///
/// # Errors
///
/// Propagates harness construction failures.
pub fn find_sharded_counterexample(
    schedule: &ShardedFaultSchedule,
    config: &ShardedScheduleConfig,
) -> Result<Option<ShardedCounterexample>> {
    let report = run_sharded_schedule(schedule, config)?;
    let Some(violation) = report.violation else {
        return Ok(None);
    };
    let (minimal, minimal_violation) = shrink_sharded_schedule(schedule, config, &violation)?;
    Ok(Some(ShardedCounterexample {
        seed: schedule.seed,
        config: config.clone(),
        schedule: minimal,
        violation: minimal_violation,
    }))
}

/// A randomized multi-shard fault-injection scenario: seed → per-shard
/// schedules → fleet run under the full oracle suite.
#[derive(Debug, Clone)]
pub struct ShardedSimnetScenario {
    label: String,
    config: ShardedScheduleConfig,
}

impl ShardedSimnetScenario {
    /// Wraps a fleet configuration under a label.
    pub fn new(label: impl Into<String>, config: ShardedScheduleConfig) -> Self {
        ShardedSimnetScenario {
            label: label.into(),
            config,
        }
    }

    /// The run configuration.
    pub fn config(&self) -> &ShardedScheduleConfig {
        &self.config
    }
}

impl Scenario for ShardedSimnetScenario {
    type Output = ShardedRunReport;

    fn label(&self) -> String {
        self.label.clone()
    }

    fn run(&self, seed: u64) -> Result<ShardedRunReport> {
        let schedule = ShardedFaultSchedule::generate(seed, &self.config);
        let report = run_sharded_schedule(&schedule, &self.config)?;
        if let Some(violation) = &report.violation {
            return Err(CoreError::Invariant(format!(
                "{violation} (seed {seed}; regenerate the fleet schedule with \
                 ShardedFaultSchedule::generate({seed}, config) to reproduce)"
            )));
        }
        Ok(report)
    }
}

/// The four-shard configuration of the `sharded/chaos-4` scenario:
/// lighter per-shard chaos over a wider fleet.
pub fn sharded_chaos_4_config() -> ShardedScheduleConfig {
    ShardedScheduleConfig {
        shards: 4,
        base: ScheduleConfig {
            horizon: 20,
            intensity: 0.25,
            ..ScheduleConfig::default()
        },
        ..ShardedScheduleConfig::default()
    }
}

/// The MultiPut-heavy configuration of the `sharded/multiput` scenario:
/// transactions launched every three steps, three keys each.
pub fn sharded_multiput_config() -> ShardedScheduleConfig {
    ShardedScheduleConfig {
        shards: 2,
        base: ScheduleConfig {
            horizon: 24,
            intensity: 0.25,
            ..ScheduleConfig::default()
        },
        multi_put_interval: 3,
        multi_put_keys: 3,
        ..ShardedScheduleConfig::default()
    }
}

/// The intrusion-heavy configuration of the `sharded/fleet-controlled`
/// scenario: the fleet-level system controller allocates the global
/// budget while both shards take compromise/crash chaos and cross-shard
/// MultiPuts keep running.
pub fn sharded_fleet_controlled_config() -> ShardedScheduleConfig {
    ShardedScheduleConfig {
        shards: 2,
        base: ScheduleConfig {
            horizon: 24,
            intensity: 0.4,
            system_controller: true,
            enabled: vec![
                crate::simnet::schedule::FaultKind::IntrusionBurst,
                crate::simnet::schedule::FaultKind::CrashReplica,
                crate::simnet::schedule::FaultKind::ByzantineFlip,
                crate::simnet::schedule::FaultKind::ClientBurst,
            ],
            ..ScheduleConfig::default()
        },
        multi_put_interval: 4,
        ..ShardedScheduleConfig::default()
    }
}

/// The `fleet/scale-{S}` configuration: S shards × 6 replicas under light
/// chaos, four-step fleet barriers, the seeded open-loop trace workload,
/// and a cross-shard MultiPut launched at every barrier. Scale is limited by
/// hardware, not the harness — the engine free-runs shards between
/// barriers on the worker pool.
pub fn fleet_scale_config(shards: usize) -> ShardedScheduleConfig {
    ShardedScheduleConfig {
        shards,
        base: ScheduleConfig {
            horizon: 16,
            intensity: 0.15,
            initial_replicas: 6,
            max_replicas: 8,
            ..ScheduleConfig::default()
        },
        key_space: (shards as u32).saturating_mul(8),
        multi_put_interval: 4,
        multi_put_keys: 2,
        fleet_tick_interval: 4,
        workload: Some(TraceWorkloadConfig::default()),
        autotune: None,
    }
}

/// The `dataplane/load-swing` configuration: the self-tuning data plane
/// under a **10x** diurnal offered-load swing. Two shards take the seeded
/// open-loop trace workload with amplitude `9/11` — peak rate
/// `(1 + 9/11) / (1 - 9/11) = 10` times the trough — under light chaos,
/// while every shard's [`AutotuneController`] ticks each window: AIMD on
/// the leader batch knobs (clamped online through the fragmentation
/// floor), concurrency capping the pool, and backpressure deciding
/// admission. The autotune cost model matches the simulated cluster
/// ([`ScheduleConfig::minbft_config`] defaults), so the actuated pair is
/// exactly the validated pair. The bench suite drives the same swing
/// against the static grid to produce the adaptive-vs-static frontier.
pub fn load_swing_config() -> ShardedScheduleConfig {
    ShardedScheduleConfig {
        shards: 2,
        base: ScheduleConfig {
            horizon: 24,
            intensity: 0.15,
            ..ScheduleConfig::default()
        },
        key_space: 64,
        multi_put_interval: 0,
        multi_put_keys: 2,
        fleet_tick_interval: 4,
        workload: Some(TraceWorkloadConfig {
            base_rate: 4.0,
            diurnal_period: 12,
            diurnal_amplitude: 9.0 / 11.0,
            ..TraceWorkloadConfig::default()
        }),
        autotune: Some(AutotuneConfig {
            max_batch: 64,
            initial_concurrency: 4,
            max_concurrency: 4,
            window_steps: 2,
            ..AutotuneConfig::default()
        }),
    }
}

/// Registers the `fleet/scale-{16,64,256}` scenario family
/// ([`fleet_scale_config`]). Kept separate from
/// [`register_sharded_scenarios`] because the larger fleets are CI/bench
/// material — the every-scenario replay suite runs the default registry in
/// debug builds, where a 256-shard fleet would dominate the run.
pub fn register_fleet_scale_scenarios(registry: &mut ScenarioRegistry) {
    for shards in [16usize, 64, 256] {
        let name = format!("fleet/scale-{shards}");
        let label = name.clone();
        registry.register(&name, move || {
            Ok(Box::new(ShardedSimnetScenario::new(
                label.clone(),
                fleet_scale_config(shards),
            )) as Box<dyn MetricScenario>)
        });
    }
}

/// Registers the built-in sharded scenarios:
///
/// * `sharded/chaos-2` — two shards under the default chaos mix plus the
///   cross-shard MultiPut driver ([`ShardedScheduleConfig::default`]),
/// * `sharded/chaos-4` — [`sharded_chaos_4_config`],
/// * `sharded/multiput` — [`sharded_multiput_config`],
/// * `sharded/fleet-controlled` — [`sharded_fleet_controlled_config`].
///
/// The acceptance sweep in `tests/sharded.rs` drives the *same*
/// configuration functions, so the CI gate always covers what the
/// registry ships. The larger `fleet/scale-*` family is registered
/// separately by [`register_fleet_scale_scenarios`].
pub fn register_sharded_scenarios(registry: &mut ScenarioRegistry) {
    registry.register("sharded/chaos-2", || {
        Ok(Box::new(ShardedSimnetScenario::new(
            "sharded/chaos-2",
            ShardedScheduleConfig::default(),
        )) as Box<dyn MetricScenario>)
    });
    registry.register("sharded/chaos-4", || {
        Ok(Box::new(ShardedSimnetScenario::new(
            "sharded/chaos-4",
            sharded_chaos_4_config(),
        )) as Box<dyn MetricScenario>)
    });
    registry.register("sharded/multiput", || {
        Ok(Box::new(ShardedSimnetScenario::new(
            "sharded/multiput",
            sharded_multiput_config(),
        )) as Box<dyn MetricScenario>)
    });
    registry.register("sharded/fleet-controlled", || {
        Ok(Box::new(ShardedSimnetScenario::new(
            "sharded/fleet-controlled",
            sharded_fleet_controlled_config(),
        )) as Box<dyn MetricScenario>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> ShardedScheduleConfig {
        ShardedScheduleConfig {
            shards: 2,
            base: ScheduleConfig {
                horizon: 12,
                intensity: 0.3,
                ..ScheduleConfig::default()
            },
            multi_put_interval: 4,
            multi_put_keys: 2,
            ..ShardedScheduleConfig::default()
        }
    }

    #[test]
    fn quiet_fleet_passes_all_oracles_and_commits_multi_puts() {
        let config = ShardedScheduleConfig {
            base: ScheduleConfig {
                horizon: 14,
                intensity: 0.0,
                ..ScheduleConfig::default()
            },
            multi_put_interval: 4,
            ..ShardedScheduleConfig::default()
        };
        let schedule = ShardedFaultSchedule::generate(1, &config);
        assert_eq!(schedule.total_events(), 0);
        let report = run_sharded_schedule(&schedule, &config).unwrap();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.outcome.completed > 0);
        assert!(report.multi_puts.0 >= 2, "{:?}", report.multi_puts);
        assert_eq!(report.trace.len(), 2);
        // One record per step plus the settle record, per shard.
        assert!(report.trace.iter().all(|t| t.len() == 15));
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let config = quick_config();
        let schedule = ShardedFaultSchedule::generate(11, &config);
        let a = run_sharded_schedule(&schedule, &config).unwrap();
        let b = run_sharded_schedule(&schedule, &config).unwrap();
        let json_a = serde_json::to_string(&a.trace).unwrap();
        let json_b = serde_json::to_string(&b.trace).unwrap();
        assert_eq!(json_a, json_b);
        assert_eq!(a, b);
    }

    #[test]
    fn every_engine_produces_the_identical_report() {
        let config = quick_config();
        for seed in [7u64, 11] {
            let schedule = ShardedFaultSchedule::generate(seed, &config);
            let lockstep =
                run_sharded_schedule_with(&schedule, &config, FleetEngine::Lockstep).unwrap();
            for workers in [1usize, 2, 4, 8] {
                let event_driven = run_sharded_schedule_with(
                    &schedule,
                    &config,
                    FleetEngine::EventDriven {
                        workers: Some(workers),
                    },
                )
                .unwrap();
                assert_eq!(
                    serde_json::to_string(&lockstep.trace).unwrap(),
                    serde_json::to_string(&event_driven.trace).unwrap(),
                    "seed {seed} workers {workers}"
                );
                assert_eq!(lockstep, event_driven, "seed {seed} workers {workers}");
            }
        }
    }

    #[test]
    fn windowed_barriers_replay_identically_across_workers() {
        let config = ShardedScheduleConfig {
            shards: 3,
            base: ScheduleConfig {
                horizon: 12,
                intensity: 0.3,
                ..ScheduleConfig::default()
            },
            multi_put_interval: 6,
            fleet_tick_interval: 3,
            workload: Some(TraceWorkloadConfig::default()),
            ..ShardedScheduleConfig::default()
        };
        let schedule = ShardedFaultSchedule::generate(9, &config);
        let baseline =
            run_sharded_schedule_with(&schedule, &config, FleetEngine::Lockstep).unwrap();
        for workers in [2usize, 4, 8] {
            let run = run_sharded_schedule_with(
                &schedule,
                &config,
                FleetEngine::EventDriven {
                    workers: Some(workers),
                },
            )
            .unwrap();
            assert_eq!(baseline, run, "workers {workers}");
        }
    }

    #[test]
    fn trace_workload_offers_open_loop_traffic() {
        let config = ShardedScheduleConfig {
            base: ScheduleConfig {
                horizon: 12,
                intensity: 0.0,
                ..ScheduleConfig::default()
            },
            multi_put_interval: 0,
            workload: Some(TraceWorkloadConfig::default()),
            ..ShardedScheduleConfig::default()
        };
        let schedule = ShardedFaultSchedule::generate(2, &config);
        let report = run_sharded_schedule(&schedule, &config).unwrap();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        // ~2 requests per shard per step — well above the closed-loop
        // driver's one per shard per step.
        assert!(
            report.outcome.issued > 2 * 12,
            "open-loop workload too light: {:?}",
            report.outcome
        );
        assert!(report.outcome.completed > 0);
    }

    #[test]
    fn per_shard_schedules_come_from_split_streams() {
        let config = ShardedScheduleConfig {
            shards: 3,
            base: ScheduleConfig {
                intensity: 0.8,
                ..ScheduleConfig::default()
            },
            ..ShardedScheduleConfig::default()
        };
        let schedule = ShardedFaultSchedule::generate(5, &config);
        assert_eq!(schedule.shards.len(), 3);
        // Different shards draw different chaos from one fleet seed.
        assert_ne!(schedule.shards[0].events, schedule.shards[1].events);
        assert_eq!(schedule, ShardedFaultSchedule::generate(5, &config));
    }

    #[test]
    fn injected_double_commit_in_one_shard_is_caught_shrunk_and_replayable() {
        let config = ShardedScheduleConfig {
            shards: 2,
            base: ScheduleConfig {
                horizon: 12,
                intensity: 0.2,
                inject_double_commit_at: Some(4),
                ..ScheduleConfig::default()
            },
            multi_put_interval: 0,
            ..ShardedScheduleConfig::default()
        };
        let schedule = ShardedFaultSchedule::generate(3, &config);
        let counterexample = find_sharded_counterexample(&schedule, &config)
            .unwrap()
            .expect("the injected bug must be caught");
        assert_eq!(counterexample.violation.kind, InvariantKind::Agreement);
        assert!(counterexample.violation.detail.starts_with("shard "));
        assert!(counterexample.schedule.total_events() <= schedule.total_events());
        let json = counterexample.to_json().unwrap();
        let back = ShardedCounterexample::from_json(&json).unwrap();
        assert_eq!(back, counterexample);
        let replayed = back.replay().unwrap().expect("replay must violate again");
        assert_eq!(replayed.kind, InvariantKind::Agreement);
    }

    #[test]
    fn pre_engine_counterexample_documents_still_decode() {
        // A document emitted before `fleet_tick_interval`, `workload` and
        // `autotune` existed: all three decode to their defaults.
        let current = ShardedCounterexample {
            seed: 4,
            config: ShardedScheduleConfig {
                shards: 1,
                ..ShardedScheduleConfig::default()
            },
            schedule: ShardedFaultSchedule {
                seed: 4,
                shards: vec![FaultSchedule {
                    seed: shard_seed(4, 0),
                    events: Vec::new(),
                }],
            },
            violation: Violation {
                kind: InvariantKind::Agreement,
                step: 3,
                detail: "shard 0: synthetic".into(),
            },
        };
        let json = current.to_json().unwrap();
        let stripped: String = json
            .lines()
            .filter(|line| {
                !line.contains("\"fleet_tick_interval\"")
                    && !line.contains("\"workload\"")
                    && !line.contains("\"autotune\"")
            })
            .collect::<Vec<_>>()
            .join("\n")
            // The dropped lines were the last fields of the config object.
            .replace("\"multi_put_keys\": 2,", "\"multi_put_keys\": 2");
        let back = ShardedCounterexample::from_json(&stripped).unwrap();
        assert_eq!(back.config.fleet_tick_interval, 1);
        assert_eq!(back.config.workload, None);
        assert_eq!(back.config.autotune, None);
        assert_eq!(back.schedule, current.schedule);
    }

    #[test]
    fn autotuned_load_swing_passes_oracles_and_records_decisions() {
        let config = load_swing_config();
        let schedule = ShardedFaultSchedule::generate(3, &config);
        let report = run_sharded_schedule(&schedule, &config).unwrap();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.outcome.completed > 0);
        assert_eq!(report.autotune.len(), config.shards);
        // One decision per window per shard (horizon 24, window 2).
        for decisions in &report.autotune {
            assert_eq!(decisions.len(), 12, "{decisions:?}");
            for record in decisions {
                assert!(record.decision.batch_size >= 1);
                assert!(record.decision.concurrency >= 1);
                assert!(record.decision.batch_delay.is_finite());
            }
        }
        // AIMD reacted: some window actually moved a knob off its start.
        let initial = config.autotune.as_ref().unwrap().initial_batch;
        assert!(
            report
                .autotune
                .iter()
                .flatten()
                .any(|r| r.decision.batch_size != initial),
            "the controller never moved batch_size"
        );
    }

    #[test]
    fn autotune_config_round_trips_through_counterexample_json() {
        let counterexample = ShardedCounterexample {
            seed: 8,
            config: load_swing_config(),
            schedule: ShardedFaultSchedule {
                seed: 8,
                shards: vec![
                    FaultSchedule {
                        seed: shard_seed(8, 0),
                        events: Vec::new(),
                    },
                    FaultSchedule {
                        seed: shard_seed(8, 1),
                        events: Vec::new(),
                    },
                ],
            },
            violation: Violation {
                kind: InvariantKind::Liveness,
                step: 7,
                detail: "synthetic".into(),
            },
        };
        let json = counterexample.to_json().unwrap();
        let back = ShardedCounterexample::from_json(&json).unwrap();
        assert_eq!(back, counterexample);
        assert_eq!(back.config.autotune, counterexample.config.autotune);
    }

    #[test]
    fn sharded_scenarios_register_and_run() {
        let mut registry = ScenarioRegistry::new();
        register_sharded_scenarios(&mut registry);
        for name in [
            "sharded/chaos-2",
            "sharded/chaos-4",
            "sharded/multiput",
            "sharded/fleet-controlled",
        ] {
            assert!(registry.contains(name), "missing {name}");
            assert!(registry.is_deterministic(name), "{name} must replay");
        }
        let run = registry
            .run("sharded/chaos-2", &crate::runtime::Runner::serial(), &[0])
            .expect("the fleet run passes the oracle suite");
        assert_eq!(run.reports.len(), 1);
    }

    #[test]
    fn fleet_scale_scenarios_register() {
        let mut registry = ScenarioRegistry::new();
        register_fleet_scale_scenarios(&mut registry);
        for name in ["fleet/scale-16", "fleet/scale-64", "fleet/scale-256"] {
            assert!(registry.contains(name), "missing {name}");
            assert!(registry.is_deterministic(name), "{name} must replay");
        }
        assert_eq!(fleet_scale_config(64).shards, 64);
        assert_eq!(fleet_scale_config(64).base.initial_replicas, 6);
    }
}
