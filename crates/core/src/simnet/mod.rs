//! Deterministic fault-injection harness (simnet).
//!
//! FoundationDB-style simulation testing for the two-level stack: seeded
//! chaos schedules drive a full MinBFT cluster, the per-node intrusion
//! recovery controllers and (optionally) the global replication controller
//! through partitions, loss/delay storms, crashes, Byzantine flips,
//! intrusion bursts, membership churn and client bursts — while invariant
//! oracles check the correctness claims of Proposition 1 after every step.
//!
//! The pipeline:
//!
//! 1. [`schedule`] — [`FaultSchedule::generate`] draws a schedule from a
//!    seed and a [`ScheduleConfig`] (same seed → same schedule).
//! 2. [`executor`] — [`run_schedule`] executes it against a freshly built
//!    stack and records a byte-exact [`TraceRecord`] stream (same seed →
//!    byte-identical trace, regardless of surrounding parallelism).
//! 3. [`oracle`] — agreement, validity, recovery-bound, network-accounting
//!    and (in the settle phase) liveness checks.
//! 4. [`shrink`] — on violation, greedy drop-one-event minimization emits a
//!    replayable [`Counterexample`] (seed + schedule JSON).
//! 5. [`scenario`] — [`register_simnet_scenarios`] plugs the harness into
//!    the PR-1 [`ScenarioRegistry`](crate::runtime::ScenarioRegistry), so
//!    experiment sweeps treat fault intensity like any other grid axis.
//! 6. [`sharded`] — the fleet-scale simulation engine: per-shard chaos
//!    from split RNG streams of one seed, each shard an event-driven
//!    sub-executor free-running between deterministic fleet barriers on
//!    the persistent worker pool, the fleet control plane with its global
//!    recovery budget, cross-shard MultiPut chaos, and the routing and
//!    atomicity oracles on top of the per-shard suite (`sharded/*` and
//!    `fleet/scale-*` scenarios, [`ShardedCounterexample`] shrinking).
//!    Traces are byte-identical across engines and worker counts.
//! 7. [`adversary`] — the adversary zoo: protocol-aware attacker replicas
//!    ([`FaultEvent::AdoptAttacker`]) crossed with network conditions
//!    including partial synchrony (GST schedules with the
//!    liveness-after-GST oracle), registered as the `adversary/*` matrix.
//! 8. [`workload`] — seeded open-loop trace workloads (diurnal arrival
//!    rate, Zipf key popularity, bounded backlog — no trace files) for
//!    the fleet engine's client drivers.

pub mod adversary;
pub mod executor;
pub mod oracle;
pub mod scenario;
pub mod schedule;
pub mod sharded;
pub mod shrink;
pub mod workload;

pub use adversary::{
    adversary_config, adversary_matrix, adversary_sharded_config, attacker_ids_lambda,
    register_adversary_scenarios, NetworkCondition, BYZANTINE_FLIP_IDS_LAMBDA,
};
pub use executor::{run_schedule, RunReport, SimnetOutcome, TraceRecord};
pub use oracle::{InvariantChecker, InvariantKind, RoutingChecker, Violation};
pub use scenario::{register_simnet_scenarios, SimnetScenario};
pub use schedule::{
    FaultEvent, FaultKind, FaultSchedule, NetworkPhase, ScheduleConfig, ScheduledFault,
};
pub use sharded::{
    find_sharded_counterexample, fleet_scale_config, load_swing_config,
    register_fleet_scale_scenarios, register_sharded_scenarios, run_sharded_schedule,
    run_sharded_schedule_with, sharded_chaos_4_config, sharded_fleet_controlled_config,
    sharded_multiput_config, shrink_sharded_schedule, AutotuneTickRecord, FleetEngine,
    ShardedCounterexample, ShardedFaultSchedule, ShardedRunReport, ShardedScheduleConfig,
    ShardedSimnetScenario,
};
pub use shrink::{find_counterexample, shrink_schedule, Counterexample};
pub use workload::{TraceWorkload, TraceWorkloadConfig};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_schedule_passes_all_oracles() {
        let config = ScheduleConfig {
            horizon: 12,
            intensity: 0.0,
            ..ScheduleConfig::default()
        };
        let schedule = FaultSchedule::generate(1, &config);
        assert!(schedule.events.is_empty());
        let report = run_schedule(&schedule, &config).unwrap();
        assert!(report.violation.is_none(), "{:?}", report.violation);
        assert!(report.outcome.completed > 0);
        assert!(report.outcome.availability > 0.0);
        assert_eq!(report.trace.len(), 13); // horizon steps + settle record
    }

    #[test]
    fn same_seed_produces_byte_identical_traces() {
        let config = ScheduleConfig {
            horizon: 20,
            intensity: 0.5,
            ..ScheduleConfig::default()
        };
        let schedule = FaultSchedule::generate(11, &config);
        let a = run_schedule(&schedule, &config).unwrap();
        let b = run_schedule(&schedule, &config).unwrap();
        let json_a = serde_json::to_string(&a.trace).unwrap();
        let json_b = serde_json::to_string(&b.trace).unwrap();
        assert_eq!(json_a, json_b);
        assert_eq!(a, b);
    }

    #[test]
    fn injected_double_commit_is_caught_and_shrinks() {
        let config = ScheduleConfig {
            horizon: 16,
            intensity: 0.3,
            inject_double_commit_at: Some(6),
            ..ScheduleConfig::default()
        };
        let schedule = FaultSchedule::generate(5, &config);
        let counterexample = find_counterexample(&schedule, &config)
            .unwrap()
            .expect("the injected bug must be caught");
        assert_eq!(counterexample.violation.kind, InvariantKind::Agreement);
        // The minimal schedule keeps the injection and little else.
        assert!(counterexample
            .schedule
            .events
            .iter()
            .any(|e| e.event.kind() == FaultKind::InjectDoubleCommit));
        assert!(counterexample.schedule.events.len() <= schedule.events.len());
        // Round trip through JSON and replay.
        let json = counterexample.to_json().unwrap();
        let back = Counterexample::from_json(&json).unwrap();
        let replayed = back.replay().unwrap().expect("replay must violate again");
        assert_eq!(replayed.kind, InvariantKind::Agreement);
    }
}
