//! Seeded fault schedules: the chaos input of the harness.
//!
//! A [`FaultSchedule`] is a list of [`FaultEvent`]s pinned to discrete
//! time-steps. Schedules are either scripted by hand (regression tests,
//! counterexample replays) or drawn by [`FaultSchedule::generate`] from a
//! seed and a [`ScheduleConfig`] — the same seed always produces the same
//! schedule, which is the first half of the determinism guarantee (the
//! second half is the deterministic executor).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tolerance_consensus::{
    hybrid_fault_threshold, AttackerKind, ByzantineMode, MinBftConfig, NetworkConfig, NodeId,
};

/// The kind of a [`FaultEvent`] (used for coverage reporting and for
/// matching violations during shrinking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultKind {
    /// A network partition between two replica groups.
    Partition,
    /// Removal of all partitions.
    Heal,
    /// A message-loss storm (the loss rate is raised network-wide).
    LossStorm,
    /// A delay storm (latency and jitter are raised network-wide).
    DelayStorm,
    /// Restoration of the base link profile after a storm.
    RestoreNetwork,
    /// A replica crash (fail-stop).
    CrashReplica,
    /// Recovery of a crashed or compromised replica.
    RecoverReplica,
    /// A direct Byzantine-mode flip of a replica (protocol-level fault
    /// without IDS-visible intrusion activity).
    ByzantineFlip,
    /// An intrusion burst: the replica is compromised *and* its IDS alert
    /// stream shifts, so the node controller can detect it.
    IntrusionBurst,
    /// Adoption of a protocol-aware attacker strategy (the adversary zoo):
    /// the replica keeps speaking the protocol but attacks it from inside,
    /// with a variant-specific (fainter) IDS signature.
    AdoptAttacker,
    /// Membership growth (JOIN reconfiguration).
    AddReplica,
    /// Membership shrink (EVICT reconfiguration).
    EvictReplica,
    /// A burst of extra client requests.
    ClientBurst,
    /// The test-only double-commit bug injection (used to validate the
    /// agreement oracle; never generated unless explicitly enabled).
    InjectDoubleCommit,
}

/// One fault to inject.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// Partition `group_a` from `group_b` (both directions).
    Partition {
        /// One side of the partition.
        group_a: Vec<NodeId>,
        /// The other side.
        group_b: Vec<NodeId>,
    },
    /// Remove all partitions.
    Heal,
    /// Raise the network loss rate to `loss_rate`.
    LossStorm {
        /// The storm's message-loss probability.
        loss_rate: f64,
    },
    /// Raise latency/jitter to the given values.
    DelayStorm {
        /// Storm base latency in simulated seconds.
        latency: f64,
        /// Storm jitter bound in simulated seconds.
        jitter: f64,
    },
    /// Restore the base link profile.
    RestoreNetwork,
    /// Crash a replica.
    CrashReplica {
        /// The replica to crash.
        node: NodeId,
    },
    /// Recover a replica (restart + state transfer).
    RecoverReplica {
        /// The replica to recover.
        node: NodeId,
    },
    /// Flip a replica's Byzantine mode without IDS-visible activity.
    ByzantineFlip {
        /// The replica to flip.
        node: NodeId,
        /// The behaviour it adopts.
        mode: ByzantineMode,
    },
    /// Compromise a replica with IDS-visible intrusion activity.
    IntrusionBurst {
        /// The replica the attacker compromises.
        node: NodeId,
        /// The post-compromise behaviour.
        mode: ByzantineMode,
    },
    /// Compromise a replica with a protocol-aware attacker strategy. The
    /// replica stays protocol-speaking (its USIG keeps signing honestly)
    /// but equivocates, withholds, delays, lies as a state donor or
    /// suppresses replies, depending on the variant — each with a distinct
    /// (degraded) IDS observation signature.
    AdoptAttacker {
        /// The replica that turns attacker.
        node: NodeId,
        /// The attacker strategy it adopts.
        attacker: AttackerKind,
    },
    /// Add a fresh replica (JOIN).
    AddReplica,
    /// Evict a replica (EVICT). `None` evicts the most recently added
    /// replica, so generated schedules never shrink the initial membership.
    EvictReplica {
        /// The replica to evict, or `None` for the newest.
        node: Option<NodeId>,
    },
    /// Submit `requests` extra one-shot client requests.
    ClientBurst {
        /// Number of extra requests.
        requests: u32,
    },
    /// Inject the test-only double-commit bug into a replica.
    InjectDoubleCommit {
        /// The replica that starts corrupting its execution.
        node: NodeId,
    },
}

impl FaultEvent {
    /// The kind of this event.
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultEvent::Partition { .. } => FaultKind::Partition,
            FaultEvent::Heal => FaultKind::Heal,
            FaultEvent::LossStorm { .. } => FaultKind::LossStorm,
            FaultEvent::DelayStorm { .. } => FaultKind::DelayStorm,
            FaultEvent::RestoreNetwork => FaultKind::RestoreNetwork,
            FaultEvent::CrashReplica { .. } => FaultKind::CrashReplica,
            FaultEvent::RecoverReplica { .. } => FaultKind::RecoverReplica,
            FaultEvent::ByzantineFlip { .. } => FaultKind::ByzantineFlip,
            FaultEvent::IntrusionBurst { .. } => FaultKind::IntrusionBurst,
            FaultEvent::AdoptAttacker { .. } => FaultKind::AdoptAttacker,
            FaultEvent::AddReplica => FaultKind::AddReplica,
            FaultEvent::EvictReplica { .. } => FaultKind::EvictReplica,
            FaultEvent::ClientBurst { .. } => FaultKind::ClientBurst,
            FaultEvent::InjectDoubleCommit { .. } => FaultKind::InjectDoubleCommit,
        }
    }
}

/// A fault pinned to a time-step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// The step (0-based) at which the fault fires, before the step's
    /// protocol activity.
    pub step: u32,
    /// The fault.
    pub event: FaultEvent,
}

/// Configuration of schedule generation *and* of the run that executes the
/// schedule (the executor reads the cluster/controller parameters from
/// here, so a `(seed, config)` pair fully determines a run).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// Initial number of replicas.
    pub initial_replicas: usize,
    /// Maximum membership size (JOINs stop here).
    pub max_replicas: usize,
    /// Parallel recoveries `k` of Proposition 1 (enters the fault
    /// threshold `f = (N - 1 - k) / 2` that bounds concurrent faults).
    pub parallel_recoveries: usize,
    /// Number of time-steps.
    pub horizon: u32,
    /// Simulated seconds per time-step.
    pub step_duration: f64,
    /// BTR period `Δ_R` of the node controllers: every replica is recovered
    /// at the latest `Δ_R` steps after its previous recovery, which is what
    /// bounds the time-to-recovery (checked by the recovery oracle).
    pub delta_r: u32,
    /// Belief threshold of the node controllers.
    pub recovery_threshold: f64,
    /// Whether the global replication controller (Algorithm 2) runs; when
    /// `false` the membership only changes through schedule events.
    pub system_controller: bool,
    /// Base replica-to-replica link profile.
    pub network: NetworkConfig,
    /// MinBFT checkpoint period (sequences between checkpoints); small
    /// values exercise log compaction + state transfer under chaos.
    pub checkpoint_period: u64,
    /// MinBFT leader batch size (requests per PREPARE); values above 1
    /// exercise the batched pipeline under chaos.
    pub batch_size: usize,
    /// MinBFT pipeline window (maximum in-flight sequences ahead of
    /// execution); 0 keeps the unbounded pre-pipelining behaviour, values
    /// above 1 exercise watermark-gated concurrent proposals under chaos.
    pub pipeline_window: usize,
    /// Expected number of generated fault events per step.
    pub intensity: f64,
    /// Fault kinds the generator may draw (pairs like `Heal` /
    /// `RestoreNetwork` / `RecoverReplica` are implied by their openers).
    pub enabled: Vec<FaultKind>,
    /// Step at which to inject the test-only double-commit bug (never
    /// generated randomly).
    pub inject_double_commit_at: Option<u32>,
    /// Global stabilization time (GST) of a partial-synchrony schedule:
    /// before this step the network runs the asynchronous profile
    /// ([`ScheduleConfig::async_network`]: arbitrary delay/reorder/loss);
    /// at this step partitions heal and the base (bounded-delay) profile is
    /// restored, and the generator draws no network faults whose closer
    /// would land after it. `None` keeps the network synchronous
    /// throughout.
    pub gst: Option<u32>,
    /// Bound of the liveness-after-GST oracle: every client request
    /// submitted *before* GST must complete within this many post-GST
    /// steps (only checked when [`ScheduleConfig::gst`] is set).
    pub post_gst_liveness_steps: u32,
    /// Attacker variants the generator may draw for
    /// [`FaultEvent::AdoptAttacker`] events (only consulted when
    /// [`FaultKind::AdoptAttacker`] is in `enabled`; empty means the full
    /// zoo, [`AttackerKind::ALL`]).
    pub attackers: Vec<AttackerKind>,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            initial_replicas: 5,
            max_replicas: 8,
            parallel_recoveries: 1,
            horizon: 40,
            step_duration: 1.0,
            delta_r: 12,
            recovery_threshold: 0.76,
            system_controller: false,
            network: NetworkConfig {
                latency: 0.002,
                jitter: 0.001,
                loss_rate: 0.0005,
            },
            checkpoint_period: 100,
            batch_size: 1,
            pipeline_window: 0,
            intensity: 0.35,
            enabled: vec![
                FaultKind::Partition,
                FaultKind::LossStorm,
                FaultKind::DelayStorm,
                FaultKind::CrashReplica,
                FaultKind::ByzantineFlip,
                FaultKind::IntrusionBurst,
                FaultKind::AddReplica,
                FaultKind::EvictReplica,
                FaultKind::ClientBurst,
            ],
            inject_double_commit_at: None,
            gst: None,
            post_gst_liveness_steps: 12,
            attackers: Vec::new(),
        }
    }
}

/// The synchrony phase a step falls into under a (possibly GST-scheduled)
/// configuration: the network-condition axis of the adversary matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkPhase {
    /// No GST configured: the bounded-delay base profile throughout.
    Sync,
    /// Before GST: arbitrary delay, reorder (jitter) and loss.
    Async,
    /// At or after GST: bounded delay again — liveness obligations resume.
    PostGst,
}

impl ScheduleConfig {
    /// The fault threshold `f` of the initial membership, which bounds how
    /// many replicas the generator keeps faulty at once.
    pub fn fault_threshold(&self) -> usize {
        hybrid_fault_threshold(self.initial_replicas, self.parallel_recoveries)
    }

    /// The cluster configuration a harness builds from this schedule
    /// configuration. Shared by the single-cluster executor and the
    /// multi-shard harness, so both sweeps exercise the *same* cluster
    /// shape — a knob mapped here reaches every harness at once.
    pub fn minbft_config(&self, seed: u64) -> MinBftConfig {
        MinBftConfig {
            initial_replicas: self.initial_replicas,
            parallel_recoveries: self.parallel_recoveries,
            network: self.network,
            seed,
            checkpoint_period: self.checkpoint_period,
            batch_size: self.batch_size,
            pipeline_window: self.pipeline_window,
            ..MinBftConfig::default()
        }
    }

    /// The synchrony phase of `step` under this configuration.
    pub fn network_phase(&self, step: u32) -> NetworkPhase {
        match self.gst {
            None => NetworkPhase::Sync,
            Some(gst) if step < gst => NetworkPhase::Async,
            Some(_) => NetworkPhase::PostGst,
        }
    }

    /// The pre-GST asynchronous link profile: the base profile with
    /// latency, jitter and loss floored high enough that delivery order,
    /// timing and completeness are effectively arbitrary relative to the
    /// protocol's timeouts.
    pub fn async_network(&self) -> NetworkConfig {
        NetworkConfig {
            latency: self.network.latency.max(0.04),
            jitter: self.network.jitter.max(0.03),
            loss_rate: self.network.loss_rate.max(0.10),
        }
        .clamped()
    }

    /// The ambient link profile of `step`: the asynchronous profile before
    /// GST, the base profile otherwise. Storm events perturb *this* profile
    /// and `RestoreNetwork` restores it, so a storm closing pre-GST does
    /// not end the asynchronous phase early.
    pub fn ambient_network(&self, step: u32) -> NetworkConfig {
        if self.network_phase(step) == NetworkPhase::Async {
            self.async_network()
        } else {
            self.network
        }
    }
}

/// A seeded fault schedule: the complete chaos input of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The seed the schedule was generated from (also seeds the executor).
    pub seed: u64,
    /// The scheduled faults, in non-decreasing step order.
    pub events: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// A schedule with explicit events (sorted by step, stably).
    pub fn scripted(seed: u64, mut events: Vec<ScheduledFault>) -> Self {
        events.sort_by_key(|e| e.step);
        FaultSchedule { seed, events }
    }

    /// The distinct fault kinds the schedule exercises.
    pub fn kinds(&self) -> Vec<FaultKind> {
        let mut kinds: Vec<FaultKind> = self.events.iter().map(|e| e.event.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    }

    /// Generates a randomized schedule. The generator keeps the number of
    /// concurrently faulty replicas within the fault threshold `f` of the
    /// initial membership (chaos beyond `f` voids the paper's guarantees,
    /// so the invariant oracles would have nothing to check), pairs every
    /// opener with its closer (partitions heal, storms pass, crashed and
    /// compromised replicas are recovered) and only evicts replicas it
    /// previously added.
    pub fn generate(seed: u64, config: &ScheduleConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5c4e_d01e_cafe);
        let f = config.fault_threshold().max(1);
        let nodes: Vec<NodeId> = (0..config.initial_replicas as NodeId).collect();
        let mut events: Vec<ScheduledFault> = Vec::new();

        // Bookkeeping of open faults: step at which each closes.
        let mut faulty_until: Vec<(NodeId, u32)> = Vec::new();
        let mut partition_open_until: Option<u32> = None;
        let mut storm_open_until: Option<u32> = None;
        let mut added_pending = 0usize; // replicas added and not yet evicted

        // Leave the tail of the horizon quiet so closers fit inside it.
        let last_fault_step = config.horizon.saturating_sub(4);
        for step in 0..last_fault_step {
            faulty_until.retain(|&(_, until)| until > step);
            if partition_open_until.is_some_and(|until| until <= step) {
                partition_open_until = None;
            }
            if storm_open_until.is_some_and(|until| until <= step) {
                storm_open_until = None;
            }
            if rng.random::<f64>() >= config.intensity || config.enabled.is_empty() {
                continue;
            }
            let kind = config.enabled[rng.random_range(0..config.enabled.len())];
            let duration = 2 + rng.random_range(0..4u32);
            let close_step = (step + duration).min(last_fault_step);
            // Under a GST schedule the network is only adversarial before
            // GST: network faults whose closer would land after GST are
            // not drawn, so the post-GST phase keeps bounded delay (the
            // premise of the liveness-after-GST oracle).
            let network_fault_allowed = config.gst.is_none_or(|gst| close_step <= gst);
            match kind {
                FaultKind::Partition | FaultKind::Heal => {
                    if partition_open_until.is_some() || nodes.len() < 3 || !network_fault_allowed {
                        continue;
                    }
                    // Cut off a minority group of up to f replicas.
                    let cut = 1 + rng.random_range(0..f as u32) as usize;
                    let mut shuffled = nodes.clone();
                    for i in (1..shuffled.len()).rev() {
                        shuffled.swap(i, rng.random_range(0..i + 1));
                    }
                    let (minority, majority) = shuffled.split_at(cut.min(shuffled.len() - 1));
                    events.push(ScheduledFault {
                        step,
                        event: FaultEvent::Partition {
                            group_a: minority.to_vec(),
                            group_b: majority.to_vec(),
                        },
                    });
                    events.push(ScheduledFault {
                        step: close_step,
                        event: FaultEvent::Heal,
                    });
                    partition_open_until = Some(close_step);
                }
                FaultKind::LossStorm | FaultKind::DelayStorm | FaultKind::RestoreNetwork => {
                    if storm_open_until.is_some() || !network_fault_allowed {
                        continue;
                    }
                    let event = if kind == FaultKind::DelayStorm {
                        FaultEvent::DelayStorm {
                            latency: 0.02 + rng.random::<f64>() * 0.05,
                            jitter: 0.01 + rng.random::<f64>() * 0.03,
                        }
                    } else {
                        FaultEvent::LossStorm {
                            loss_rate: 0.05 + rng.random::<f64>() * 0.25,
                        }
                    };
                    events.push(ScheduledFault { step, event });
                    events.push(ScheduledFault {
                        step: close_step,
                        event: FaultEvent::RestoreNetwork,
                    });
                    storm_open_until = Some(close_step);
                }
                FaultKind::CrashReplica
                | FaultKind::ByzantineFlip
                | FaultKind::IntrusionBurst
                | FaultKind::RecoverReplica => {
                    if faulty_until.len() >= f {
                        continue;
                    }
                    let free: Vec<NodeId> = nodes
                        .iter()
                        .copied()
                        .filter(|n| faulty_until.iter().all(|&(m, _)| m != *n))
                        .collect();
                    if free.is_empty() {
                        continue;
                    }
                    let node = free[rng.random_range(0..free.len())];
                    let mode = match rng.random_range(0..2u8) {
                        0 => ByzantineMode::Silent,
                        _ => ByzantineMode::Arbitrary,
                    };
                    let event = match kind {
                        FaultKind::CrashReplica => FaultEvent::CrashReplica { node },
                        FaultKind::ByzantineFlip => FaultEvent::ByzantineFlip { node, mode },
                        _ => FaultEvent::IntrusionBurst { node, mode },
                    };
                    events.push(ScheduledFault { step, event });
                    events.push(ScheduledFault {
                        step: close_step,
                        event: FaultEvent::RecoverReplica { node },
                    });
                    faulty_until.push((node, close_step));
                }
                FaultKind::AdoptAttacker => {
                    if faulty_until.len() >= f {
                        continue;
                    }
                    let free: Vec<NodeId> = nodes
                        .iter()
                        .copied()
                        .filter(|n| faulty_until.iter().all(|&(m, _)| m != *n))
                        .collect();
                    if free.is_empty() {
                        continue;
                    }
                    let node = free[rng.random_range(0..free.len())];
                    let pool: &[AttackerKind] = if config.attackers.is_empty() {
                        &AttackerKind::ALL
                    } else {
                        &config.attackers
                    };
                    let attacker = pool[rng.random_range(0..pool.len())];
                    events.push(ScheduledFault {
                        step,
                        event: FaultEvent::AdoptAttacker { node, attacker },
                    });
                    events.push(ScheduledFault {
                        step: close_step,
                        event: FaultEvent::RecoverReplica { node },
                    });
                    faulty_until.push((node, close_step));
                }
                FaultKind::AddReplica => {
                    if config.initial_replicas + added_pending >= config.max_replicas {
                        continue;
                    }
                    events.push(ScheduledFault {
                        step,
                        event: FaultEvent::AddReplica,
                    });
                    added_pending += 1;
                }
                FaultKind::EvictReplica => {
                    if added_pending == 0 {
                        continue;
                    }
                    events.push(ScheduledFault {
                        step,
                        event: FaultEvent::EvictReplica { node: None },
                    });
                    added_pending -= 1;
                }
                FaultKind::ClientBurst => {
                    events.push(ScheduledFault {
                        step,
                        event: FaultEvent::ClientBurst {
                            requests: 1 + rng.random_range(0..3u32),
                        },
                    });
                }
                FaultKind::InjectDoubleCommit => {} // never drawn randomly
            }
        }
        if let Some(step) = config.inject_double_commit_at {
            let node = nodes[rng.random_range(0..nodes.len())];
            events.push(ScheduledFault {
                step: step.min(last_fault_step),
                event: FaultEvent::InjectDoubleCommit { node },
            });
        }
        FaultSchedule::scripted(seed, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let config = ScheduleConfig::default();
        let a = FaultSchedule::generate(7, &config);
        let b = FaultSchedule::generate(7, &config);
        assert_eq!(a, b);
        let c = FaultSchedule::generate(8, &config);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn generated_schedules_respect_the_fault_threshold() {
        let config = ScheduleConfig {
            intensity: 0.9,
            horizon: 120,
            ..ScheduleConfig::default()
        };
        let f = config.fault_threshold();
        for seed in 0..20 {
            let schedule = FaultSchedule::generate(seed, &config);
            // Replay the bookkeeping: concurrent faulty replicas never
            // exceed f, and every opener has a closer.
            let mut open: Vec<NodeId> = Vec::new();
            for fault in &schedule.events {
                match &fault.event {
                    FaultEvent::CrashReplica { node }
                    | FaultEvent::ByzantineFlip { node, .. }
                    | FaultEvent::IntrusionBurst { node, .. } => {
                        assert!(!open.contains(node), "seed {seed}: double fault on {node}");
                        open.push(*node);
                        assert!(open.len() <= f, "seed {seed}: {} > f = {f}", open.len());
                    }
                    FaultEvent::RecoverReplica { node } => {
                        open.retain(|n| n != node);
                    }
                    _ => {}
                }
            }
            assert!(open.is_empty(), "seed {seed}: unrecovered faults {open:?}");
        }
    }

    #[test]
    fn schedules_serialize_to_parseable_json() {
        // Typed decoding is covered by `Counterexample::from_json`; here we
        // check the rendered document is well-formed and stable.
        let schedule = FaultSchedule::generate(
            3,
            &ScheduleConfig {
                intensity: 0.8,
                ..ScheduleConfig::default()
            },
        );
        let json = serde_json::to_string(&schedule).unwrap();
        let value = serde_json::parse_value(&json).unwrap();
        let rerendered = serde_json::to_string(&value).unwrap();
        assert_eq!(json, rerendered);
    }

    #[test]
    fn kinds_reports_distinct_coverage() {
        let schedule = FaultSchedule::scripted(
            0,
            vec![
                ScheduledFault {
                    step: 1,
                    event: FaultEvent::Heal,
                },
                ScheduledFault {
                    step: 0,
                    event: FaultEvent::AddReplica,
                },
                ScheduledFault {
                    step: 2,
                    event: FaultEvent::Heal,
                },
            ],
        );
        // Sorted by step and deduplicated kinds.
        assert_eq!(schedule.events[0].event, FaultEvent::AddReplica);
        assert_eq!(
            schedule.kinds(),
            vec![FaultKind::Heal, FaultKind::AddReplica]
        );
    }
}
