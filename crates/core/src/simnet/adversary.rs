//! The adversary zoo: protocol-aware attackers × network conditions.
//!
//! This module turns the consensus layer's [`AttackerKind`] strategies into
//! simnet chaos. Each cell of the matrix pairs one attacker variant with one
//! network condition and runs as an ordinary registered scenario under the
//! full oracle suite:
//!
//! * **Attacker axis** — the five protocol-aware strategies of
//!   [`AttackerKind::ALL`] (equivocating leader, vote withholding, delayed
//!   votes, lying state-transfer donor, client-reply suppression), adopted
//!   via [`FaultEvent::AdoptAttacker`](crate::simnet::schedule::FaultEvent)
//!   schedule events. Unlike the blunt `ByzantineFlip`, attacker replicas
//!   keep speaking the protocol — their USIG still signs honestly — so they
//!   probe MinBFT's structural defenses (counter-consecutive acceptance,
//!   first-wins conflict resolution, chain-validated state transfer) rather
//!   than its crash handling.
//! * **Network axis** — [`NetworkCondition::Sync`] (the bounded-delay base
//!   profile), [`NetworkCondition::Gst`] (partial synchrony: arbitrary
//!   delay/reorder/loss before a global stabilization time, bounded delay
//!   after, checked by the liveness-after-GST oracle) and
//!   [`NetworkCondition::Storm`] (generated loss/delay storms and
//!   partitions on top of the attacker).
//!
//! Each variant also carries a distinct IDS observation signature: a
//! protocol-aware attacker is *quieter* than a smash-and-grab intrusion, so
//! its per-variant [`attacker_ids_lambda`] degrades the compromised alert
//! distribution toward the healthy one (via
//! [`ObservationModel::degrade`]) — stealthier attacks take the node
//! controllers longer to detect, exactly the trade-off the paper's
//! Theorem 1 threshold navigates.

use crate::error::Result;
use crate::observation::ObservationModel;
use crate::runtime::{MetricScenario, ScenarioRegistry};
use crate::simnet::scenario::SimnetScenario;
use crate::simnet::schedule::{FaultKind, ScheduleConfig};
use crate::simnet::sharded::{ShardedScheduleConfig, ShardedSimnetScenario};
use tolerance_consensus::AttackerKind;

/// IDS degradation of a [`FaultEvent::ByzantineFlip`]: a flipped replica
/// misbehaves at the message layer without a full compromise footprint, so
/// its alert signature sits well toward healthy — but it *does* perturb the
/// observation stream (it is not invisible to the IDS).
///
/// [`FaultEvent::ByzantineFlip`]: crate::simnet::schedule::FaultEvent
pub const BYZANTINE_FLIP_IDS_LAMBDA: f64 = 0.6;

/// The IDS-signature degradation λ of an attacker variant: `0.0` keeps the
/// full compromised alert distribution, `1.0` would be indistinguishable
/// from healthy. The more surgical the attack, the quieter its signature.
pub fn attacker_ids_lambda(kind: AttackerKind) -> f64 {
    match kind {
        // Equivocation forges whole batches — the loudest of the zoo.
        AttackerKind::EquivocatingLeader => 0.15,
        // Forged state-transfer frontiers leave corrupted-payload traces.
        AttackerKind::LyingDonor => 0.25,
        // Withholding is an omission, but a persistent, targeted one.
        AttackerKind::VoteWithholding => 0.3,
        // Delays look like congestion most of the time.
        AttackerKind::DelayedVotes => 0.45,
        // Dropping replies to one client is the stealthiest signal here.
        AttackerKind::ReplySuppression => 0.55,
    }
}

/// The degraded observation models the harnesses sample compromised-state
/// alerts from, keyed by `f64::to_bits` of the λ (exact-bit lookup keeps
/// the mapping deterministic). One entry per distinct λ of the zoo plus
/// [`BYZANTINE_FLIP_IDS_LAMBDA`].
pub(crate) fn degraded_model_table(
    base: &ObservationModel,
) -> Result<Vec<(u64, ObservationModel)>> {
    let mut table: Vec<(u64, ObservationModel)> = Vec::new();
    for lambda in AttackerKind::ALL
        .iter()
        .map(|&kind| attacker_ids_lambda(kind))
        .chain([BYZANTINE_FLIP_IDS_LAMBDA])
    {
        let bits = lambda.to_bits();
        if table.iter().all(|&(existing, _)| existing != bits) {
            table.push((bits, base.degrade(lambda)?));
        }
    }
    Ok(table)
}

/// The observation model for a compromised replica with signature
/// degradation `lambda` (the base model when λ is 0 or unknown — unknown
/// λs cannot arise from schedule events, but scripted supervisors stay
/// well-defined).
pub(crate) fn degraded_model<'a>(
    table: &'a [(u64, ObservationModel)],
    base: &'a ObservationModel,
    lambda: f64,
) -> &'a ObservationModel {
    if lambda <= 0.0 {
        return base;
    }
    table
        .iter()
        .find(|&&(bits, _)| bits == lambda.to_bits())
        .map(|(_, model)| model)
        .unwrap_or(base)
}

/// The network-condition axis of the adversary matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkCondition {
    /// Bounded delay throughout (the base profile).
    Sync,
    /// Partial synchrony: the asynchronous profile until GST, bounded delay
    /// after — the liveness-after-GST oracle is active.
    Gst,
    /// Generated loss/delay storms and partitions alongside the attacker.
    Storm,
}

impl NetworkCondition {
    /// Every condition, in a stable order (the matrix axis).
    pub const ALL: [NetworkCondition; 3] = [
        NetworkCondition::Sync,
        NetworkCondition::Gst,
        NetworkCondition::Storm,
    ];

    /// A stable kebab-case name (scenario names).
    pub fn name(&self) -> &'static str {
        match self {
            NetworkCondition::Sync => "sync",
            NetworkCondition::Gst => "gst",
            NetworkCondition::Storm => "storm",
        }
    }
}

/// The single-group configuration of one matrix cell: the generator draws
/// [`FaultKind::AdoptAttacker`] events restricted to `attacker` (plus
/// client bursts, and network faults under [`NetworkCondition::Storm`]).
pub fn adversary_config(attacker: AttackerKind, condition: NetworkCondition) -> ScheduleConfig {
    let mut enabled = vec![FaultKind::AdoptAttacker, FaultKind::ClientBurst];
    let mut config = ScheduleConfig {
        horizon: 28,
        intensity: 0.5,
        attackers: vec![attacker],
        ..ScheduleConfig::default()
    };
    match condition {
        NetworkCondition::Sync => {}
        NetworkCondition::Gst => {
            config.gst = Some(12);
            config.horizon = 32;
        }
        NetworkCondition::Storm => {
            enabled.extend([
                FaultKind::Partition,
                FaultKind::LossStorm,
                FaultKind::DelayStorm,
            ]);
        }
    }
    config.enabled = enabled;
    config
}

/// The two-shard configuration of one matrix cell: the same per-shard
/// chaos as [`adversary_config`] plus routed clients and cross-shard
/// MultiPuts, so attacker effects are checked against the routing and
/// atomicity oracles too.
pub fn adversary_sharded_config(
    attacker: AttackerKind,
    condition: NetworkCondition,
) -> ShardedScheduleConfig {
    let mut base = adversary_config(attacker, condition);
    // Sharded steps cost S× the work; keep cells CI-sized.
    base.horizon = 20;
    if condition == NetworkCondition::Gst {
        base.gst = Some(8);
        base.horizon = 24;
    }
    ShardedScheduleConfig {
        shards: 2,
        base,
        ..ShardedScheduleConfig::default()
    }
}

/// Every `(attacker, condition)` cell, attacker-major — the iteration
/// order of [`register_adversary_scenarios`] and of the CI sweep.
pub fn adversary_matrix() -> Vec<(AttackerKind, NetworkCondition)> {
    let mut cells = Vec::with_capacity(AttackerKind::ALL.len() * NetworkCondition::ALL.len());
    for &attacker in &AttackerKind::ALL {
        for &condition in &NetworkCondition::ALL {
            cells.push((attacker, condition));
        }
    }
    cells
}

/// Registers the full adversary matrix:
///
/// * `adversary/<attacker>/<condition>` — single MinBFT group,
/// * `adversary/sharded/<attacker>/<condition>` — two routed groups,
///
/// for every attacker of [`AttackerKind::ALL`] × every condition of
/// [`NetworkCondition::ALL`] (30 scenarios). The acceptance sweep in
/// `tests/simnet.rs` drives the same configuration functions.
pub fn register_adversary_scenarios(registry: &mut ScenarioRegistry) {
    for (attacker, condition) in adversary_matrix() {
        let label = format!("adversary/{}/{}", attacker.name(), condition.name());
        registry.register(label.clone(), move || {
            Ok(Box::new(SimnetScenario::new(
                label.clone(),
                adversary_config(attacker, condition),
            )) as Box<dyn MetricScenario>)
        });
        let sharded_label = format!("adversary/sharded/{}/{}", attacker.name(), condition.name());
        registry.register(sharded_label.clone(), move || {
            Ok(Box::new(ShardedSimnetScenario::new(
                sharded_label.clone(),
                adversary_sharded_config(attacker, condition),
            )) as Box<dyn MetricScenario>)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambdas_are_valid_and_distinct() {
        let mut seen = Vec::new();
        for &kind in &AttackerKind::ALL {
            let lambda = attacker_ids_lambda(kind);
            assert!((0.0..1.0).contains(&lambda), "{kind:?}: {lambda}");
            assert!(!seen.contains(&lambda.to_bits()), "{kind:?} duplicates λ");
            seen.push(lambda.to_bits());
        }
        assert!((0.0..1.0).contains(&BYZANTINE_FLIP_IDS_LAMBDA));
    }

    #[test]
    fn degraded_table_covers_every_variant() {
        let base = ObservationModel::paper_default();
        let table = degraded_model_table(&base).unwrap();
        assert_eq!(table.len(), 6); // five attacker λs + the flip λ
        for &kind in &AttackerKind::ALL {
            let lambda = attacker_ids_lambda(kind);
            let model = degraded_model(&table, &base, lambda);
            // A degraded signature is strictly less detectable than the
            // full compromise signature, but still distinguishable.
            assert!(model.detection_divergence().unwrap() < base.detection_divergence().unwrap());
            assert!(model.detection_divergence().unwrap() > 0.0);
        }
        // λ = 0 falls through to the base model.
        assert!(std::ptr::eq(degraded_model(&table, &base, 0.0), &base));
    }

    #[test]
    fn matrix_covers_every_cell_once() {
        let cells = adversary_matrix();
        assert_eq!(cells.len(), 15);
        let mut dedup = cells.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), cells.len());
    }

    #[test]
    fn registered_labels_match_the_matrix() {
        let mut registry = ScenarioRegistry::new();
        register_adversary_scenarios(&mut registry);
        assert_eq!(registry.len(), 30);
        assert!(registry.contains("adversary/equivocating-leader/gst"));
        assert!(registry.contains("adversary/sharded/lying-donor/storm"));
        assert!(registry.is_deterministic("adversary/reply-suppression/sync"));
    }

    #[test]
    fn gst_configs_schedule_a_stabilization_step() {
        for &attacker in &AttackerKind::ALL {
            let single = adversary_config(attacker, NetworkCondition::Gst);
            assert!(single.gst.is_some());
            assert!(single.gst.unwrap() + single.post_gst_liveness_steps < single.horizon);
            let sharded = adversary_sharded_config(attacker, NetworkCondition::Gst);
            assert!(sharded.base.gst.is_some());
            assert!(
                sharded.base.gst.unwrap() + sharded.base.post_gst_liveness_steps
                    < sharded.base.horizon
            );
        }
    }
}
