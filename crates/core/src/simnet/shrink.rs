//! Greedy schedule shrinking and replayable counterexamples.
//!
//! When an oracle fires, the harness minimizes the offending schedule by
//! greedy drop-one-event search: repeatedly try removing a single event and
//! keep the removal whenever the *same invariant* still breaks. The result,
//! together with the seed and the full run configuration, is packaged as a
//! [`Counterexample`] that serializes to JSON — reproducing a failure is
//! one `Counterexample::from_json(..).replay()` away.

use crate::error::Result;
use crate::simnet::executor::run_schedule;
use crate::simnet::oracle::Violation;
use crate::simnet::schedule::{FaultSchedule, ScheduleConfig};
use serde::{Deserialize, Serialize};

/// A minimal, replayable description of an invariant violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Counterexample {
    /// The seed of the run (drives schedule generation and execution).
    pub seed: u64,
    /// The full run configuration.
    pub config: ScheduleConfig,
    /// The (shrunk) schedule that still triggers the violation.
    pub schedule: FaultSchedule,
    /// The violation observed when executing the schedule.
    pub violation: Violation,
}

impl Counterexample {
    /// Serializes the counterexample to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer failures.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| crate::error::CoreError::Solver(format!("serialize counterexample: {e}")))
    }

    /// Parses a counterexample from JSON (the inverse of
    /// [`Counterexample::to_json`]).
    ///
    /// # Errors
    ///
    /// Fails on malformed JSON or a document that does not describe a
    /// counterexample.
    pub fn from_json(json: &str) -> Result<Self> {
        let value = serde_json::parse_value(json)
            .map_err(|e| crate::error::CoreError::Solver(format!("parse counterexample: {e}")))?;
        decode::counterexample(&value)
    }

    /// Re-executes the stored schedule and returns the violation the replay
    /// produces (which, for a valid counterexample, matches `violation`).
    ///
    /// # Errors
    ///
    /// Propagates harness construction failures.
    pub fn replay(&self) -> Result<Option<Violation>> {
        Ok(run_schedule(&self.schedule, &self.config)?.violation)
    }
}

/// Greedy drop-one-event minimization: returns the smallest schedule (under
/// single-event removals) that still violates the same invariant kind as
/// `violation`, plus the violation it produces.
///
/// # Errors
///
/// Propagates harness construction failures.
pub fn shrink_schedule(
    schedule: &FaultSchedule,
    config: &ScheduleConfig,
    violation: &Violation,
) -> Result<(FaultSchedule, Violation)> {
    let mut current = schedule.clone();
    let mut current_violation = violation.clone();
    let mut improved = true;
    while improved {
        improved = false;
        let mut index = 0;
        while index < current.events.len() {
            let mut candidate = current.clone();
            candidate.events.remove(index);
            let report = run_schedule(&candidate, config)?;
            match report.violation {
                Some(v) if v.kind == current_violation.kind => {
                    current = candidate;
                    current_violation = v;
                    improved = true;
                    // Do not advance: the next event shifted into `index`.
                }
                _ => index += 1,
            }
        }
    }
    Ok((current, current_violation))
}

/// Hand-written decoder for the counterexample JSON document. The vendored
/// `serde` shim only derives serialization, so the document is read back by
/// destructuring the parsed [`serde::Value`] tree, mirroring the shim's
/// encoding conventions (structs → objects, unit enum variants → strings,
/// data-carrying variants → single-key objects, `Option::None` → null).
pub(crate) mod decode {
    use super::Counterexample;
    use crate::error::{CoreError, Result};
    use crate::simnet::oracle::{InvariantKind, Violation};
    use crate::simnet::schedule::{
        FaultEvent, FaultKind, FaultSchedule, ScheduleConfig, ScheduledFault,
    };
    use serde::Value;
    use tolerance_consensus::{AttackerKind, ByzantineMode, NetworkConfig, NodeId};

    pub(crate) fn error(detail: impl Into<String>) -> CoreError {
        CoreError::Solver(format!("decode counterexample: {}", detail.into()))
    }

    pub(crate) fn field<'a>(value: &'a Value, name: &str) -> Result<&'a Value> {
        let Value::Object(entries) = value else {
            return Err(error(format!("expected an object with field `{name}`")));
        };
        entries
            .iter()
            .find(|(key, _)| key == name)
            .map(|(_, v)| v)
            .ok_or_else(|| error(format!("missing field `{name}`")))
    }

    /// Optional field lookup for knobs added after counterexamples were
    /// first emitted: absent fields decode to their [`ScheduleConfig`]
    /// default, so archived documents stay replayable.
    pub(crate) fn opt_field<'a>(value: &'a Value, name: &str) -> Option<&'a Value> {
        let Value::Object(entries) = value else {
            return None;
        };
        entries.iter().find(|(key, _)| key == name).map(|(_, v)| v)
    }

    pub(crate) fn as_u64(value: &Value) -> Result<u64> {
        match value {
            Value::U64(n) => Ok(*n),
            Value::I64(n) if *n >= 0 => Ok(*n as u64),
            _ => Err(error("expected an unsigned integer")),
        }
    }

    fn as_u32(value: &Value) -> Result<u32> {
        u32::try_from(as_u64(value)?).map_err(|_| error("integer out of u32 range"))
    }

    pub(crate) fn as_usize(value: &Value) -> Result<usize> {
        usize::try_from(as_u64(value)?).map_err(|_| error("integer out of usize range"))
    }

    pub(crate) fn as_f64(value: &Value) -> Result<f64> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(error("expected a number")),
        }
    }

    fn as_bool(value: &Value) -> Result<bool> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(error("expected a boolean")),
        }
    }

    fn as_str(value: &Value) -> Result<&str> {
        match value {
            Value::Str(s) => Ok(s),
            _ => Err(error("expected a string")),
        }
    }

    pub(crate) fn as_array(value: &Value) -> Result<&[Value]> {
        match value {
            Value::Array(items) => Ok(items),
            _ => Err(error("expected an array")),
        }
    }

    fn node_list(value: &Value) -> Result<Vec<NodeId>> {
        as_array(value)?.iter().map(as_u32).collect()
    }

    fn fault_kind(value: &Value) -> Result<FaultKind> {
        Ok(match as_str(value)? {
            "Partition" => FaultKind::Partition,
            "Heal" => FaultKind::Heal,
            "LossStorm" => FaultKind::LossStorm,
            "DelayStorm" => FaultKind::DelayStorm,
            "RestoreNetwork" => FaultKind::RestoreNetwork,
            "CrashReplica" => FaultKind::CrashReplica,
            "RecoverReplica" => FaultKind::RecoverReplica,
            "ByzantineFlip" => FaultKind::ByzantineFlip,
            "IntrusionBurst" => FaultKind::IntrusionBurst,
            "AdoptAttacker" => FaultKind::AdoptAttacker,
            "AddReplica" => FaultKind::AddReplica,
            "EvictReplica" => FaultKind::EvictReplica,
            "ClientBurst" => FaultKind::ClientBurst,
            "InjectDoubleCommit" => FaultKind::InjectDoubleCommit,
            other => return Err(error(format!("unknown fault kind `{other}`"))),
        })
    }

    fn byzantine_mode(value: &Value) -> Result<ByzantineMode> {
        Ok(match as_str(value)? {
            "Correct" => ByzantineMode::Correct,
            "Silent" => ByzantineMode::Silent,
            "Arbitrary" => ByzantineMode::Arbitrary,
            other => return Err(error(format!("unknown Byzantine mode `{other}`"))),
        })
    }

    fn attacker_kind(value: &Value) -> Result<AttackerKind> {
        Ok(match as_str(value)? {
            "EquivocatingLeader" => AttackerKind::EquivocatingLeader,
            "VoteWithholding" => AttackerKind::VoteWithholding,
            "DelayedVotes" => AttackerKind::DelayedVotes,
            "LyingDonor" => AttackerKind::LyingDonor,
            "ReplySuppression" => AttackerKind::ReplySuppression,
            other => return Err(error(format!("unknown attacker kind `{other}`"))),
        })
    }

    fn fault_event(value: &Value) -> Result<FaultEvent> {
        if let Value::Str(name) = value {
            return Ok(match name.as_str() {
                "Heal" => FaultEvent::Heal,
                "RestoreNetwork" => FaultEvent::RestoreNetwork,
                "AddReplica" => FaultEvent::AddReplica,
                other => return Err(error(format!("unknown unit event `{other}`"))),
            });
        }
        let Value::Object(entries) = value else {
            return Err(error("expected an event object or string"));
        };
        let [(name, body)] = entries.as_slice() else {
            return Err(error("expected a single-variant event object"));
        };
        Ok(match name.as_str() {
            "Partition" => FaultEvent::Partition {
                group_a: node_list(field(body, "group_a")?)?,
                group_b: node_list(field(body, "group_b")?)?,
            },
            "LossStorm" => FaultEvent::LossStorm {
                loss_rate: as_f64(field(body, "loss_rate")?)?,
            },
            "DelayStorm" => FaultEvent::DelayStorm {
                latency: as_f64(field(body, "latency")?)?,
                jitter: as_f64(field(body, "jitter")?)?,
            },
            "CrashReplica" => FaultEvent::CrashReplica {
                node: as_u32(field(body, "node")?)?,
            },
            "RecoverReplica" => FaultEvent::RecoverReplica {
                node: as_u32(field(body, "node")?)?,
            },
            "ByzantineFlip" => FaultEvent::ByzantineFlip {
                node: as_u32(field(body, "node")?)?,
                mode: byzantine_mode(field(body, "mode")?)?,
            },
            "IntrusionBurst" => FaultEvent::IntrusionBurst {
                node: as_u32(field(body, "node")?)?,
                mode: byzantine_mode(field(body, "mode")?)?,
            },
            "AdoptAttacker" => FaultEvent::AdoptAttacker {
                node: as_u32(field(body, "node")?)?,
                attacker: attacker_kind(field(body, "attacker")?)?,
            },
            "EvictReplica" => FaultEvent::EvictReplica {
                node: match field(body, "node")? {
                    Value::Null => None,
                    v => Some(as_u32(v)?),
                },
            },
            "ClientBurst" => FaultEvent::ClientBurst {
                requests: as_u32(field(body, "requests")?)?,
            },
            "InjectDoubleCommit" => FaultEvent::InjectDoubleCommit {
                node: as_u32(field(body, "node")?)?,
            },
            other => return Err(error(format!("unknown event `{other}`"))),
        })
    }

    pub(crate) fn schedule(value: &Value) -> Result<FaultSchedule> {
        let events = as_array(field(value, "events")?)?
            .iter()
            .map(|entry| {
                Ok(ScheduledFault {
                    step: as_u32(field(entry, "step")?)?,
                    event: fault_event(field(entry, "event")?)?,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(FaultSchedule {
            seed: as_u64(field(value, "seed")?)?,
            events,
        })
    }

    fn network(value: &Value) -> Result<NetworkConfig> {
        let config = NetworkConfig {
            latency: as_f64(field(value, "latency")?)?,
            jitter: as_f64(field(value, "jitter")?)?,
            loss_rate: as_f64(field(value, "loss_rate")?)?,
        };
        // A hand-edited file with out-of-range fields must surface as a
        // decode error, not as a panic deep inside the replay.
        config
            .validate()
            .map_err(|e| error(format!("invalid network config: {e}")))?;
        Ok(config)
    }

    pub(crate) fn config(value: &Value) -> Result<ScheduleConfig> {
        let defaults = ScheduleConfig::default();
        Ok(ScheduleConfig {
            checkpoint_period: match opt_field(value, "checkpoint_period") {
                Some(v) => as_u64(v)?,
                None => defaults.checkpoint_period,
            },
            batch_size: match opt_field(value, "batch_size") {
                Some(v) => as_usize(v)?,
                None => defaults.batch_size,
            },
            pipeline_window: match opt_field(value, "pipeline_window") {
                Some(v) => as_usize(v)?,
                None => defaults.pipeline_window,
            },
            gst: match opt_field(value, "gst") {
                Some(Value::Null) | None => None,
                Some(v) => Some(as_u32(v)?),
            },
            post_gst_liveness_steps: match opt_field(value, "post_gst_liveness_steps") {
                Some(v) => as_u32(v)?,
                None => defaults.post_gst_liveness_steps,
            },
            attackers: match opt_field(value, "attackers") {
                Some(v) => as_array(v)?
                    .iter()
                    .map(attacker_kind)
                    .collect::<Result<Vec<_>>>()?,
                None => defaults.attackers,
            },
            initial_replicas: as_usize(field(value, "initial_replicas")?)?,
            max_replicas: as_usize(field(value, "max_replicas")?)?,
            parallel_recoveries: as_usize(field(value, "parallel_recoveries")?)?,
            horizon: as_u32(field(value, "horizon")?)?,
            step_duration: as_f64(field(value, "step_duration")?)?,
            delta_r: as_u32(field(value, "delta_r")?)?,
            recovery_threshold: as_f64(field(value, "recovery_threshold")?)?,
            system_controller: as_bool(field(value, "system_controller")?)?,
            network: network(field(value, "network")?)?,
            intensity: as_f64(field(value, "intensity")?)?,
            enabled: as_array(field(value, "enabled")?)?
                .iter()
                .map(fault_kind)
                .collect::<Result<Vec<_>>>()?,
            inject_double_commit_at: match field(value, "inject_double_commit_at")? {
                Value::Null => None,
                v => Some(as_u32(v)?),
            },
        })
    }

    pub(crate) fn violation(value: &Value) -> Result<Violation> {
        let kind = match as_str(field(value, "kind")?)? {
            "Agreement" => InvariantKind::Agreement,
            "Validity" => InvariantKind::Validity,
            "RecoveryBound" => InvariantKind::RecoveryBound,
            "NetworkAccounting" => InvariantKind::NetworkAccounting,
            "Liveness" => InvariantKind::Liveness,
            "Routing" => InvariantKind::Routing,
            "Atomicity" => InvariantKind::Atomicity,
            "LivenessAfterGst" => InvariantKind::LivenessAfterGst,
            other => return Err(error(format!("unknown invariant `{other}`"))),
        };
        Ok(Violation {
            kind,
            step: as_u32(field(value, "step")?)?,
            detail: as_str(field(value, "detail")?)?.to_string(),
        })
    }

    pub(super) fn counterexample(value: &Value) -> Result<Counterexample> {
        let decoded = Counterexample {
            seed: as_u64(field(value, "seed")?)?,
            config: config(field(value, "config")?)?,
            schedule: schedule(field(value, "schedule")?)?,
            violation: violation(field(value, "violation")?)?,
        };
        // The top-level seed is informational but must agree with the
        // schedule's (which is what the replay actually uses); a hand-edited
        // mismatch would silently replay a different run.
        if decoded.seed != decoded.schedule.seed {
            return Err(error(format!(
                "seed {} disagrees with schedule seed {}",
                decoded.seed, decoded.schedule.seed
            )));
        }
        Ok(decoded)
    }
}

/// Convenience: run a schedule and, if it violates an invariant, shrink it
/// and package the counterexample.
///
/// # Errors
///
/// Propagates harness construction failures.
pub fn find_counterexample(
    schedule: &FaultSchedule,
    config: &ScheduleConfig,
) -> Result<Option<Counterexample>> {
    let report = run_schedule(schedule, config)?;
    let Some(violation) = report.violation else {
        return Ok(None);
    };
    let (minimal, minimal_violation) = shrink_schedule(schedule, config, &violation)?;
    Ok(Some(Counterexample {
        seed: schedule.seed,
        config: config.clone(),
        schedule: minimal,
        violation: minimal_violation,
    }))
}
