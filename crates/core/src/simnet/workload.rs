//! Trace-driven open-loop client workloads for the fleet engine.
//!
//! The closed-loop driver of the sharded harness submits one keyed request
//! per shard per step — fine for oracle coverage, unrepresentative of
//! production traffic. This module generates **replayable many-client
//! traces** entirely from a seed (no trace files): per-shard arrival
//! processes with a diurnal rate shape and Zipf-distributed key popularity
//! over the keys the shard owns.
//!
//! * **Arrivals** are open-loop: each step contributes
//!   `base_rate · (1 + amplitude · sin(2π · step / period))` requests via a
//!   deterministic fluid accumulator (fractional demand carries over to the
//!   following step), so the offered load does not slow down when the shard
//!   is degraded. Demand that cannot be submitted (every pool client busy)
//!   queues in a bounded backlog and is retried — beyond the cap it is
//!   *shed*, which is exactly what an open-loop client population does.
//! * **Keys** follow a Zipf(`exponent`) popularity ranking over the shard's
//!   owned keys; the ranking itself is a seeded shuffle, so two shards with
//!   the same key count still hammer different hot keys.
//!
//! Everything is a pure function of `(seed, shard, config)`: the same fleet
//! seed replays the same trace byte-for-byte, which keeps the determinism
//! contract of the engine intact ([`TraceWorkload`] state lives in the
//! per-shard sub-executor and is never shared across shards).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the seeded open-loop trace workload (embedded in
/// [`ShardedScheduleConfig`](crate::simnet::ShardedScheduleConfig); `None`
/// there keeps the legacy closed-loop driver).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceWorkloadConfig {
    /// Mean requests per shard per step at the diurnal midline.
    pub base_rate: f64,
    /// Steps per diurnal cycle.
    pub diurnal_period: u32,
    /// Peak-to-midline swing in `[0, 1]` (`0` = flat rate).
    pub diurnal_amplitude: f64,
    /// Zipf popularity exponent over the shard's owned keys (`0` =
    /// uniform).
    pub zipf_exponent: f64,
    /// Maximum deferred (unsubmittable) requests retained per shard;
    /// demand beyond the cap is shed, keeping the workload open-loop.
    pub backlog_cap: u32,
}

impl Default for TraceWorkloadConfig {
    fn default() -> Self {
        TraceWorkloadConfig {
            base_rate: 2.0,
            diurnal_period: 16,
            diurnal_amplitude: 0.6,
            zipf_exponent: 1.1,
            backlog_cap: 16,
        }
    }
}

impl TraceWorkloadConfig {
    /// The offered rate at `step` (requests per step).
    pub fn rate(&self, step: u32) -> f64 {
        let phase = if self.diurnal_period == 0 {
            0.0
        } else {
            2.0 * std::f64::consts::PI * f64::from(step) / f64::from(self.diurnal_period)
        };
        (self.base_rate * (1.0 + self.diurnal_amplitude.clamp(0.0, 1.0) * phase.sin())).max(0.0)
    }
}

/// One shard's seeded trace generator: diurnal fluid arrivals plus Zipf key
/// draws over a popularity-ranked shuffle of the shard's owned keys.
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    config: TraceWorkloadConfig,
    rng: StdRng,
    /// Fractional demand carried to the next step.
    carry: f64,
    /// Owned keys in popularity-rank order (rank 0 = hottest).
    ranked_keys: Vec<u32>,
    /// Cumulative Zipf weights aligned with `ranked_keys`.
    cumulative: Vec<f64>,
}

impl TraceWorkload {
    /// Builds the generator for one shard from its split-stream seed and
    /// owned keys.
    ///
    /// # Panics
    ///
    /// Panics when `owned_keys` is empty (every shard owns at least one
    /// key by construction of the partitioner).
    pub fn new(seed: u64, owned_keys: &[u32], config: &TraceWorkloadConfig) -> Self {
        assert!(!owned_keys.is_empty(), "a shard must own at least one key");
        // A fixed scramble keeps the workload stream independent of the
        // shard's fault-schedule stream, which uses the same split seed.
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7ead_5c0e_d00d_f00du64);
        let mut ranked_keys = owned_keys.to_vec();
        // Seeded Fisher-Yates: the popularity ranking differs per shard.
        for index in (1..ranked_keys.len()).rev() {
            let other = rng.random_range(0..index + 1);
            ranked_keys.swap(index, other);
        }
        let exponent = config.zipf_exponent.max(0.0);
        let mut total = 0.0;
        let cumulative = ranked_keys
            .iter()
            .enumerate()
            .map(|(rank, _)| {
                total += (rank as f64 + 1.0).powf(-exponent);
                total
            })
            .collect();
        TraceWorkload {
            config: config.clone(),
            rng,
            carry: 0.0,
            ranked_keys,
            cumulative,
        }
    }

    /// The number of requests this shard offers at `step` (deterministic:
    /// the diurnal rate plus the fractional carry from earlier steps).
    pub fn arrivals(&mut self, step: u32) -> u32 {
        self.carry += self.config.rate(step);
        let whole = self.carry.floor().max(0.0);
        self.carry -= whole;
        whole as u32
    }

    /// Draws one key from the Zipf popularity distribution.
    pub fn draw_key(&mut self) -> u32 {
        let total = *self.cumulative.last().expect("at least one owned key");
        let point = self.rng.random::<f64>() * total;
        let index = self
            .cumulative
            .partition_point(|&weight| weight < point)
            .min(self.ranked_keys.len() - 1);
        self.ranked_keys[index]
    }

    /// The backlog cap of the configuration.
    pub fn backlog_cap(&self) -> u32 {
        self.config.backlog_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_integrate_to_the_offered_rate() {
        let config = TraceWorkloadConfig {
            base_rate: 1.5,
            diurnal_amplitude: 0.5,
            ..TraceWorkloadConfig::default()
        };
        let mut workload = TraceWorkload::new(7, &[1, 2, 3, 4], &config);
        let horizon = 64;
        let total: u32 = (0..horizon).map(|step| workload.arrivals(step)).sum();
        let offered: f64 = (0..horizon).map(|step| config.rate(step)).sum();
        // The fluid accumulator never drifts more than one request from the
        // integral of the rate curve.
        assert!(
            (f64::from(total) - offered).abs() <= 1.0,
            "{total} vs {offered}"
        );
    }

    #[test]
    fn diurnal_shape_peaks_and_troughs() {
        let config = TraceWorkloadConfig {
            base_rate: 4.0,
            diurnal_period: 16,
            diurnal_amplitude: 0.9,
            ..TraceWorkloadConfig::default()
        };
        let peak = config.rate(4); // sin = 1 at a quarter period
        let trough = config.rate(12); // sin = -1 at three quarters
        assert!(peak > 7.0, "{peak}");
        assert!(trough < 1.0, "{trough}");
        assert!(config.rate(0) > trough && config.rate(0) < peak);
    }

    #[test]
    fn zipf_draws_favor_the_hot_ranks_and_replay() {
        let config = TraceWorkloadConfig {
            zipf_exponent: 1.2,
            ..TraceWorkloadConfig::default()
        };
        let keys: Vec<u32> = (0..32).collect();
        let mut a = TraceWorkload::new(42, &keys, &config);
        let mut b = TraceWorkload::new(42, &keys, &config);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..4000 {
            let key = a.draw_key();
            assert_eq!(key, b.draw_key(), "same seed must replay the trace");
            *counts.entry(key).or_insert(0u32) += 1;
        }
        let hottest = a.ranked_keys[0];
        let coldest = *a.ranked_keys.last().unwrap();
        assert!(
            counts.get(&hottest).copied().unwrap_or(0)
                > 5 * counts.get(&coldest).copied().unwrap_or(0).max(1),
            "Zipf skew missing: {counts:?}"
        );
    }

    #[test]
    fn rankings_differ_across_seeds() {
        let keys: Vec<u32> = (0..64).collect();
        let config = TraceWorkloadConfig::default();
        let a = TraceWorkload::new(1, &keys, &config);
        let b = TraceWorkload::new(2, &keys, &config);
        assert_ne!(a.ranked_keys, b.ranked_keys);
    }
}
