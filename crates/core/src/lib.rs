//! # `tolerance-core`
//!
//! The paper's primary contribution: the TOLERANCE two-level feedback control
//! architecture for intrusion-tolerant systems (Hammar & Stadler, DSN 2024).
//!
//! * **Local level** ([`node_model`], [`observation`], [`recovery`],
//!   [`controller::NodeController`]) — each node runs a controller that
//!   tracks a belief about whether its replica is compromised (Eq. 4,
//!   Appendix A) from weighted IDS-alert counts and recovers the replica when
//!   the belief exceeds a threshold (Theorem 1). The underlying control
//!   problem is the machine replacement POMDP of Problem 1, solved with the
//!   parametric threshold optimization of Algorithm 1 ([`algorithms::Alg1`])
//!   or exactly with incremental pruning.
//! * **Global level** ([`replication`], [`controller::SystemController`]) —
//!   a system controller receives the node beliefs and adjusts the
//!   replication factor `N_t ≥ 2f + 1 + k` (Proposition 1). The underlying
//!   problem is the inventory replenishment CMDP of Problem 2, solved exactly
//!   with the occupation-measure LP of Algorithm 2 ([`algorithms::Alg2`]).
//! * **Control plane** ([`controlplane`]) — the online runtime that closes
//!   both loops on a *running* cluster: the [`controlplane::ClusterActuator`]
//!   actuation interface (recovery, JOIN/EVICT) implemented by the simulated
//!   and the threaded MinBFT cluster, the shared
//!   [`controlplane::ControlPlane::tick`], and the sweepable `controlled/*`
//!   scenarios with a live intrusion-burst workload.
//! * **Baselines** ([`baselines`]) — the NO-RECOVERY, PERIODIC and
//!   PERIODIC-ADAPTIVE strategies of state-of-the-art intrusion-tolerant
//!   systems that the paper compares against (Section VIII-B).
//! * **Metrics** ([`metrics`]) — average availability `T(A)`, average
//!   time-to-recovery `T(R)` and recovery frequency `F(R)` (Section III-C),
//!   plus the reliability/MTTF analysis of Fig. 6 ([`reliability`]).
//! * **Fault-injection harness** ([`simnet`]) — deterministic simulation
//!   testing of the full stack: seeded chaos schedules (partitions, storms,
//!   crashes, Byzantine flips, intrusion bursts, membership churn) executed
//!   against MinBFT plus both control levels, with invariant oracles,
//!   greedy counterexample shrinking and one-command replay — including the
//!   multi-shard fleet harness ([`simnet::sharded`]) with per-shard chaos
//!   from split RNG streams, the cross-shard routing/atomicity oracles and
//!   the fleet control plane ([`controlplane::fleet`]).
//! * **Scenario runtime** ([`runtime`]) — the shared experiment engine: a
//!   [`runtime::Scenario`] abstraction, a parallel [`runtime::Runner`]
//!   executing seed/parameter grids deterministically, cross-seed
//!   [`runtime::MetricSummary`] aggregation, a [`runtime::ScenarioRegistry`]
//!   of named workloads, and the shared strategy factories
//!   ([`runtime::StrategyKind`] / [`runtime::NodeStrategy`]).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod algorithms;
pub mod baselines;
pub mod controller;
pub mod controlplane;
pub mod dataplane;
pub mod error;
pub mod metrics;
pub mod node_model;
pub mod observation;
pub mod recovery;
pub mod reliability;
pub mod replication;
pub mod runtime;
pub mod simnet;

pub use error::{CoreError, Result};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::algorithms::{Alg1, Alg1Config, Alg2, OptimizerKind};
    pub use crate::baselines::{BaselineKind, RecoveryDecision, RecoveryStrategy};
    pub use crate::controller::{NodeController, SystemController};
    pub use crate::controlplane::{
        ClusterActuator, ControlPlane, ControlPlaneConfig, ControlledServiceConfig,
        ControlledServiceScenario, FleetConfig, FleetControlPlane, NodeReport,
    };
    pub use crate::error::{CoreError, Result};
    pub use crate::metrics::EvaluationMetrics;
    pub use crate::node_model::{NodeModel, NodeParameters, NodeState};
    pub use crate::observation::ObservationModel;
    pub use crate::recovery::{RecoveryConfig, RecoveryProblem, ThresholdStrategy};
    pub use crate::reliability::ReliabilityAnalysis;
    pub use crate::replication::{ReplicationConfig, ReplicationProblem, ReplicationStrategy};
    pub use crate::runtime::{
        FnScenario, MetricSummary, Runner, Scenario, ScenarioRegistry, StrategyKind,
    };
    pub use crate::simnet::{
        run_schedule, run_sharded_schedule, Counterexample, FaultSchedule, ScheduleConfig,
        ShardedCounterexample, ShardedFaultSchedule, ShardedScheduleConfig, ShardedSimnetScenario,
        SimnetScenario,
    };
}
