//! The per-node stochastic model of the paper (Section V-A).
//!
//! A node is in one of three states — healthy (`H`), compromised (`C`) or
//! crashed (`∅`) — and evolves according to the Markovian transition function
//! of Eq. (2), parameterized by the attack probability `p_A`, the crash
//! probabilities `p_C1` (healthy) and `p_C2` (compromised), and the software
//! update probability `p_U`. The controller's actions are wait (`W`) and
//! recover (`R`).

use crate::error::{CoreError, Result};
use crate::observation::ObservationModel;
use rand::Rng;
use tolerance_markov::chain::MarkovChain;

/// The hidden state of a node (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NodeState {
    /// The replica is healthy.
    Healthy,
    /// The replica is compromised by the attacker.
    Compromised,
    /// The node has crashed (absorbing; a restarted node is a new node).
    Crashed,
}

impl NodeState {
    /// The cost-function encoding of the state used in Eq. (5):
    /// `H = 0`, `C = 1`. Crashed nodes are out of the local control problem.
    pub fn cost_value(self) -> f64 {
        match self {
            NodeState::Healthy => 0.0,
            NodeState::Compromised => 1.0,
            NodeState::Crashed => 0.0,
        }
    }
}

/// The node controller's action (Fig. 3): wait or recover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NodeAction {
    /// Do nothing this time-step.
    Wait,
    /// Recover the replica (replace its container); completes by the next
    /// time-step.
    Recover,
}

/// The transition-probability parameters of Eq. (2).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NodeParameters {
    /// Probability that the attacker compromises the node during one
    /// time-step (`p_{A,i}`).
    pub p_attack: f64,
    /// Probability that the node crashes while healthy (`p_{C1,i}`).
    pub p_crash_healthy: f64,
    /// Probability that the node crashes while compromised (`p_{C2,i}`).
    pub p_crash_compromised: f64,
    /// Probability that the replica's software is updated, which also
    /// restores a compromised replica (`p_{U,i}`).
    pub p_update: f64,
}

impl Default for NodeParameters {
    /// The parameters used throughout the paper's evaluation (Appendix E):
    /// `p_A = 0.1`, `p_C1 = 1e-5`, `p_C2 = 1e-3`, `p_U = 0.02`.
    fn default() -> Self {
        NodeParameters {
            p_attack: 0.1,
            p_crash_healthy: 1e-5,
            p_crash_compromised: 1e-3,
            p_update: 0.02,
        }
    }
}

impl NodeParameters {
    /// Validates assumptions A–C of Theorem 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when:
    /// * (A) any probability lies outside `(0, 1)`;
    /// * (B) `p_A + p_U > 1`;
    /// * (C) the crash-probability inequality of Theorem 1 fails.
    pub fn validate_theorem1(&self) -> Result<()> {
        let ps = [
            ("p_attack", self.p_attack),
            ("p_crash_healthy", self.p_crash_healthy),
            ("p_crash_compromised", self.p_crash_compromised),
            ("p_update", self.p_update),
        ];
        for (name, p) in ps {
            if !(p > 0.0 && p < 1.0) {
                return Err(CoreError::InvalidParameter {
                    name,
                    reason: format!("assumption A requires values in (0, 1), got {p}"),
                });
            }
        }
        if self.p_attack + self.p_update > 1.0 {
            return Err(CoreError::InvalidParameter {
                name: "p_attack + p_update",
                reason: format!(
                    "assumption B requires p_A + p_U <= 1, got {}",
                    self.p_attack + self.p_update
                ),
            });
        }
        // Assumption C: pC1 (pU - 1) / (pA (pC1 - 1) + pC1 (pU - 1)) <= pC2.
        let numerator = self.p_crash_healthy * (self.p_update - 1.0);
        let denominator = self.p_attack * (self.p_crash_healthy - 1.0)
            + self.p_crash_healthy * (self.p_update - 1.0);
        let bound = numerator / denominator;
        if bound > self.p_crash_compromised {
            return Err(CoreError::InvalidParameter {
                name: "p_crash_compromised",
                reason: format!(
                    "assumption C requires p_C2 >= {bound:.3e}, got {}",
                    self.p_crash_compromised
                ),
            });
        }
        Ok(())
    }

    /// Probability that a healthy, never-recovered node stays healthy for one
    /// step: `(1 - p_A)(1 - p_C1)`.
    pub fn stay_healthy_probability(&self) -> f64 {
        (1.0 - self.p_attack) * (1.0 - self.p_crash_healthy)
    }
}

/// The complete node model: transition parameters plus the observation model
/// `Z_i(o | s)` of Eq. (3).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NodeModel {
    parameters: NodeParameters,
    observations: ObservationModel,
}

impl NodeModel {
    /// Creates a node model, validating the Theorem 1 assumptions on the
    /// parameters (A–C) and the observation model (D–E).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if any assumption fails.
    pub fn new(parameters: NodeParameters, observations: ObservationModel) -> Result<Self> {
        parameters.validate_theorem1()?;
        observations.validate_theorem1()?;
        Ok(NodeModel {
            parameters,
            observations,
        })
    }

    /// Creates a model without validating the Theorem 1 assumptions (used by
    /// sensitivity sweeps that deliberately violate them, e.g. Fig. 14).
    pub fn new_unchecked(parameters: NodeParameters, observations: ObservationModel) -> Self {
        NodeModel {
            parameters,
            observations,
        }
    }

    /// The transition parameters.
    pub fn parameters(&self) -> &NodeParameters {
        &self.parameters
    }

    /// The observation model.
    pub fn observations(&self) -> &ObservationModel {
        &self.observations
    }

    /// The transition function `f_{N,i}(s' | s, a)` of Eq. (2).
    pub fn transition_probability(
        &self,
        state: NodeState,
        action: NodeAction,
        next: NodeState,
    ) -> f64 {
        let p = &self.parameters;
        use NodeAction::*;
        use NodeState::*;
        match (state, action, next) {
            // (2a)-(2c): transitions to the absorbing crashed state.
            (Crashed, _, Crashed) => 1.0,
            (Crashed, _, _) => 0.0,
            (Healthy, _, Crashed) => p.p_crash_healthy,
            (Compromised, _, Crashed) => p.p_crash_compromised,
            // (2d)-(2g): transitions to healthy.
            (Healthy, Recover, Healthy) | (Healthy, Wait, Healthy) => {
                (1.0 - p.p_attack) * (1.0 - p.p_crash_healthy)
            }
            (Compromised, Recover, Healthy) => (1.0 - p.p_attack) * (1.0 - p.p_crash_compromised),
            (Compromised, Wait, Healthy) => (1.0 - p.p_crash_compromised) * p.p_update,
            // (2h)-(2j): transitions to compromised.
            (Healthy, _, Compromised) => (1.0 - p.p_crash_healthy) * p.p_attack,
            (Compromised, Recover, Compromised) => (1.0 - p.p_crash_compromised) * p.p_attack,
            (Compromised, Wait, Compromised) => (1.0 - p.p_crash_compromised) * (1.0 - p.p_update),
        }
    }

    /// Samples the next state.
    pub fn sample_transition<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        state: NodeState,
        action: NodeAction,
    ) -> NodeState {
        let states = [
            NodeState::Healthy,
            NodeState::Compromised,
            NodeState::Crashed,
        ];
        let mut u = rng.random::<f64>();
        for &next in &states {
            u -= self.transition_probability(state, action, next);
            if u <= 0.0 {
                return next;
            }
        }
        NodeState::Crashed
    }

    /// The cost function `c_N(s, a) = η·s − a·η·s + a` of Eq. (5).
    pub fn cost(&self, state: NodeState, action: NodeAction, eta: f64) -> f64 {
        let s = state.cost_value();
        let a = match action {
            NodeAction::Wait => 0.0,
            NodeAction::Recover => 1.0,
        };
        eta * s - a * eta * s + a
    }

    /// The three-state Markov chain of the node under a fixed "always wait"
    /// policy, ordered `[Healthy, Compromised, Crashed]`. This is the chain
    /// behind Fig. 5 of the paper.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Markov`] if the rows fail stochastic validation
    /// (cannot happen for validated parameters).
    pub fn wait_chain(&self) -> Result<MarkovChain> {
        let states = [
            NodeState::Healthy,
            NodeState::Compromised,
            NodeState::Crashed,
        ];
        let rows = states
            .iter()
            .map(|&s| {
                states
                    .iter()
                    .map(|&s2| self.transition_probability(s, NodeAction::Wait, s2))
                    .collect()
            })
            .collect();
        Ok(MarkovChain::new(rows)?)
    }

    /// `P[S_t = C ∪ S_t = ∅]` after `t` steps with no recoveries, starting
    /// healthy (the curves of Fig. 5).
    ///
    /// # Errors
    ///
    /// Propagates Markov-chain construction errors.
    pub fn failure_probability_by(&self, t: u32) -> Result<f64> {
        let chain = self.wait_chain()?;
        let dist = chain.propagate(&[1.0, 0.0, 0.0], t)?;
        Ok(dist[1] + dist[2])
    }

    /// The two-state POMDP over `{Healthy, Compromised}` obtained by
    /// conditioning on the node not crashing, used by the exact
    /// incremental-pruning baseline and by Fig. 4. The crash probabilities of
    /// the paper's evaluation (`1e-5`, `1e-3`) make this conditioning a
    /// faithful approximation; crashes themselves are directly observable and
    /// handled outside the POMDP (a crashed node is evicted, Section V-B).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Solver`] if the resulting model fails validation.
    pub fn to_pomdp(&self, eta: f64, discount: f64) -> Result<tolerance_pomdp::Pomdp> {
        let states = [NodeState::Healthy, NodeState::Compromised];
        let actions = [NodeAction::Wait, NodeAction::Recover];
        let mut transition = vec![vec![vec![0.0; 2]; 2]; 2];
        for (ai, &a) in actions.iter().enumerate() {
            for (si, &s) in states.iter().enumerate() {
                let mut row: Vec<f64> = states
                    .iter()
                    .map(|&s2| self.transition_probability(s, a, s2))
                    .collect();
                let total: f64 = row.iter().sum();
                for v in row.iter_mut() {
                    *v /= total;
                }
                transition[ai][si] = row;
            }
        }
        let observation = vec![
            self.observations.healthy_distribution().to_vec(),
            self.observations.compromised_distribution().to_vec(),
        ];
        let cost = states
            .iter()
            .map(|&s| actions.iter().map(|&a| self.cost(s, a, eta)).collect())
            .collect();
        tolerance_pomdp::Pomdp::new(transition, observation, cost, discount)
            .map_err(CoreError::from)
    }

    /// One Bayesian update of the scalar compromise belief `b = P[S = C]`
    /// (Appendix A restricted to the two operational states), given the
    /// action taken at the previous step and the number of weighted IDS
    /// alerts observed.
    pub fn belief_update(&self, belief: f64, action: NodeAction, alerts: u64) -> f64 {
        let b = belief.clamp(0.0, 1.0);
        // Predicted distribution over {H, C}, conditioned on not crashing.
        let mut predicted = [0.0f64; 2];
        let states = [NodeState::Healthy, NodeState::Compromised];
        let prior = [1.0 - b, b];
        for (si, &s) in states.iter().enumerate() {
            for (ni, &n) in states.iter().enumerate() {
                predicted[ni] += prior[si] * self.transition_probability(s, action, n);
            }
        }
        let total = predicted[0] + predicted[1];
        if total <= 0.0 {
            return b;
        }
        predicted[0] /= total;
        predicted[1] /= total;
        // Bayes with the observation likelihoods.
        let likelihood_h = self.observations.probability(NodeState::Healthy, alerts);
        let likelihood_c = self
            .observations
            .probability(NodeState::Compromised, alerts);
        let numerator = likelihood_c * predicted[1];
        let denominator = likelihood_h * predicted[0] + likelihood_c * predicted[1];
        if denominator <= 0.0 {
            predicted[1]
        } else {
            numerator / denominator
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    fn model() -> NodeModel {
        NodeModel::new(NodeParameters::default(), ObservationModel::paper_default()).unwrap()
    }

    #[test]
    fn default_parameters_satisfy_theorem1_assumptions() {
        assert!(NodeParameters::default().validate_theorem1().is_ok());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let p = NodeParameters {
            p_attack: 0.0,
            ..NodeParameters::default()
        };
        assert!(p.validate_theorem1().is_err());
        let p = NodeParameters {
            p_attack: 0.6,
            p_update: 0.5,
            ..NodeParameters::default()
        };
        assert!(p.validate_theorem1().is_err(), "assumption B must fail");
        let p = NodeParameters {
            p_crash_healthy: 0.5,
            p_crash_compromised: 1e-6,
            ..NodeParameters::default()
        };
        assert!(p.validate_theorem1().is_err(), "assumption C must fail");
    }

    #[test]
    fn transition_rows_are_stochastic_for_all_state_action_pairs() {
        let m = model();
        let states = [
            NodeState::Healthy,
            NodeState::Compromised,
            NodeState::Crashed,
        ];
        for &s in &states {
            for &a in &[NodeAction::Wait, NodeAction::Recover] {
                let total: f64 = states
                    .iter()
                    .map(|&s2| m.transition_probability(s, a, s2))
                    .sum();
                assert_close(total, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn transition_function_matches_eq2() {
        let m = model();
        let p = *m.parameters();
        use NodeAction::*;
        use NodeState::*;
        assert_close(m.transition_probability(Crashed, Wait, Crashed), 1.0, 1e-15);
        assert_close(
            m.transition_probability(Healthy, Wait, Crashed),
            p.p_crash_healthy,
            1e-15,
        );
        assert_close(
            m.transition_probability(Compromised, Recover, Crashed),
            p.p_crash_compromised,
            1e-15,
        );
        assert_close(
            m.transition_probability(Healthy, Wait, Healthy),
            (1.0 - p.p_attack) * (1.0 - p.p_crash_healthy),
            1e-15,
        );
        assert_close(
            m.transition_probability(Compromised, Recover, Healthy),
            (1.0 - p.p_attack) * (1.0 - p.p_crash_compromised),
            1e-15,
        );
        assert_close(
            m.transition_probability(Compromised, Wait, Healthy),
            (1.0 - p.p_crash_compromised) * p.p_update,
            1e-15,
        );
        assert_close(
            m.transition_probability(Healthy, Recover, Compromised),
            (1.0 - p.p_crash_healthy) * p.p_attack,
            1e-15,
        );
        assert_close(
            m.transition_probability(Compromised, Wait, Compromised),
            (1.0 - p.p_crash_compromised) * (1.0 - p.p_update),
            1e-15,
        );
    }

    #[test]
    fn cost_function_matches_eq5() {
        let m = model();
        let eta = 2.0;
        assert_eq!(m.cost(NodeState::Healthy, NodeAction::Wait, eta), 0.0);
        assert_eq!(m.cost(NodeState::Healthy, NodeAction::Recover, eta), 1.0);
        assert_eq!(m.cost(NodeState::Compromised, NodeAction::Wait, eta), 2.0);
        assert_eq!(
            m.cost(NodeState::Compromised, NodeAction::Recover, eta),
            1.0
        );
    }

    #[test]
    fn failure_probability_matches_closed_form_for_fig5() {
        // With p_U = 0 the time to leave H is geometric:
        // P[fail by t] = 1 - ((1-pA)(1-pC1))^t ... but P[C or crashed] also
        // includes paths returning to H via p_U; use p_U ~ 0 for the check.
        let params = NodeParameters {
            p_update: 1e-12,
            ..NodeParameters::default()
        };
        let m = NodeModel::new_unchecked(params, ObservationModel::paper_default());
        for t in [1u32, 5, 20, 100] {
            let expected = 1.0 - params.stay_healthy_probability().powi(t as i32);
            assert_close(m.failure_probability_by(t).unwrap(), expected, 1e-9);
        }
        // Monotone increasing in t.
        let m = model();
        let p10 = m.failure_probability_by(10).unwrap();
        let p50 = m.failure_probability_by(50).unwrap();
        assert!(p50 >= p10);
    }

    #[test]
    fn failure_probability_orders_by_attack_rate() {
        // Fig. 5: larger p_A fails sooner.
        let observations = ObservationModel::paper_default();
        let mut previous = 0.0;
        for p_attack in [0.01, 0.025, 0.05, 0.1] {
            let params = NodeParameters {
                p_attack,
                ..NodeParameters::default()
            };
            let m = NodeModel::new(params, observations.clone()).unwrap();
            let p = m.failure_probability_by(30).unwrap();
            assert!(p > previous, "p_A = {p_attack} should fail more often");
            previous = p;
        }
    }

    #[test]
    fn belief_update_reacts_to_alerts() {
        let m = model();
        let quiet = m.belief_update(0.2, NodeAction::Wait, 0);
        let noisy = m.belief_update(0.2, NodeAction::Wait, 9);
        assert!(
            noisy > 0.2,
            "many alerts must increase the belief, got {noisy}"
        );
        assert!(quiet < noisy);
        // Recovery resets the belief towards the attack prior.
        let after_recovery = m.belief_update(0.95, NodeAction::Recover, 0);
        assert!(after_recovery < 0.5);
        // Belief stays in [0, 1].
        for alerts in 0..=10 {
            for &b in &[0.0, 0.3, 0.9, 1.0] {
                let updated = m.belief_update(b, NodeAction::Wait, alerts);
                assert!((0.0..=1.0).contains(&updated));
            }
        }
    }

    #[test]
    fn belief_converges_towards_one_under_sustained_alerts() {
        let m = model();
        let mut belief = m.parameters().p_attack;
        for _ in 0..20 {
            belief = m.belief_update(belief, NodeAction::Wait, 9);
        }
        assert!(
            belief > 0.95,
            "sustained heavy alerts should saturate the belief, got {belief}"
        );
    }

    #[test]
    fn pomdp_conversion_is_consistent() {
        let m = model();
        let pomdp = m.to_pomdp(2.0, 0.99).unwrap();
        assert_eq!(pomdp.num_states(), 2);
        assert_eq!(pomdp.num_actions(), 2);
        assert_eq!(pomdp.num_observations(), m.observations().support_size());
        assert_eq!(pomdp.cost(1, 0), 2.0);
        assert_eq!(pomdp.cost(0, 1), 1.0);
    }

    #[test]
    fn sampling_follows_the_transition_probabilities() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(3);
        let compromised = (0..20_000)
            .filter(|_| {
                m.sample_transition(&mut rng, NodeState::Healthy, NodeAction::Wait)
                    == NodeState::Compromised
            })
            .count();
        let fraction = compromised as f64 / 20_000.0;
        assert!((fraction - 0.1).abs() < 0.01, "fraction {fraction}");
        // Crashed stays crashed.
        assert_eq!(
            m.sample_transition(&mut rng, NodeState::Crashed, NodeAction::Recover),
            NodeState::Crashed
        );
    }

    #[test]
    fn wait_chain_mttf_is_finite_and_positive() {
        let m = model();
        let chain = m.wait_chain().unwrap();
        let hitting = chain.mean_hitting_time(&[1, 2]).unwrap();
        // From healthy, the expected time to compromise-or-crash is ~1/pA = 10.
        assert!(
            (hitting[0] - 10.0).abs() < 0.5,
            "hitting time {}",
            hitting[0]
        );
    }
}
