//! The IDS-alert observation model `Z_i(o | s)` of Eq. (3).
//!
//! The node controller observes the number of IDS alerts weighted by priority
//! during each time-step. The paper's numeric experiments (Appendix E) model
//! the observation with Beta-binomial distributions —
//! `Z(· | H) = BetaBin(10, 0.7, 3)` and `Z(· | C) = BetaBin(10, 1, 0.7)` —
//! while the testbed evaluation estimates `Ẑ_i` empirically from 25 000
//! samples per container (Fig. 11). Both constructions are supported here,
//! together with the assumption checks of Theorem 1 (positivity, TP-2) and
//! the Kullback–Leibler diagnostics of Figs. 14 and 18.

use crate::error::{CoreError, Result};
use crate::node_model::NodeState;
use rand::Rng;
use tolerance_markov::dist::{BetaBinomial, Categorical};
use tolerance_markov::stats::kl_divergence;
use tolerance_pomdp::structure::is_tp2;

/// The observation model: one distribution over alert counts per operational
/// state (healthy / compromised).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ObservationModel {
    healthy: Vec<f64>,
    compromised: Vec<f64>,
}

impl ObservationModel {
    /// The Beta-binomial observation model of Appendix E:
    /// `Z(·|H) = BetaBin(10, 0.7, 3)`, `Z(·|C) = BetaBin(10, 1, 0.7)`.
    pub fn paper_default() -> Self {
        let healthy = BetaBinomial::new(10, 0.7, 3.0)
            .expect("valid parameters")
            .pmf_vector();
        let compromised = BetaBinomial::new(10, 1.0, 0.7)
            .expect("valid parameters")
            .pmf_vector();
        ObservationModel {
            healthy,
            compromised,
        }
    }

    /// Builds a model from explicit per-state probability vectors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the vectors have different
    /// lengths, are empty, contain negative values or do not sum to one.
    pub fn from_distributions(healthy: Vec<f64>, compromised: Vec<f64>) -> Result<Self> {
        if healthy.is_empty() || healthy.len() != compromised.len() {
            return Err(CoreError::InvalidParameter {
                name: "observation distributions",
                reason: "healthy and compromised distributions must be non-empty and equally long"
                    .into(),
            });
        }
        for (name, dist) in [("healthy", &healthy), ("compromised", &compromised)] {
            let sum: f64 = dist.iter().sum();
            if dist.iter().any(|&p| p < 0.0) || (sum - 1.0).abs() > 1e-6 {
                return Err(CoreError::InvalidParameter {
                    name: "observation distributions",
                    reason: format!("{name} distribution is not a probability vector (sum {sum})"),
                });
            }
        }
        Ok(ObservationModel {
            healthy,
            compromised,
        })
    }

    /// Estimates the model from alert-count samples collected while healthy
    /// and while under intrusion (the `Ẑ_i` of Section VIII-A / Fig. 11),
    /// with Laplace smoothing so assumption D of Theorem 1 holds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Markov`] if either sample set is empty.
    pub fn from_samples(
        healthy_samples: &[u64],
        compromised_samples: &[u64],
        support_size: usize,
        smoothing: f64,
    ) -> Result<Self> {
        let healthy = Categorical::from_samples(healthy_samples, support_size, smoothing)?;
        let compromised = Categorical::from_samples(compromised_samples, support_size, smoothing)?;
        ObservationModel::from_distributions(
            healthy.probabilities().to_vec(),
            compromised.probabilities().to_vec(),
        )
    }

    /// Number of distinct observation values.
    pub fn support_size(&self) -> usize {
        self.healthy.len()
    }

    /// The distribution of alert counts in the healthy state.
    pub fn healthy_distribution(&self) -> &[f64] {
        &self.healthy
    }

    /// The distribution of alert counts in the compromised state.
    pub fn compromised_distribution(&self) -> &[f64] {
        &self.compromised
    }

    /// `Z(o | s)` for the operational states; crashed nodes emit no alerts,
    /// so the healthy distribution is returned for [`NodeState::Crashed`]
    /// (the state is directly observable and never queried in practice).
    pub fn probability(&self, state: NodeState, alerts: u64) -> f64 {
        let dist = match state {
            NodeState::Compromised => &self.compromised,
            NodeState::Healthy | NodeState::Crashed => &self.healthy,
        };
        dist.get(alerts as usize).copied().unwrap_or(0.0)
    }

    /// Samples an alert count for a node in the given state.
    pub fn sample<R: Rng + ?Sized>(&self, state: NodeState, rng: &mut R) -> u64 {
        let dist = match state {
            NodeState::Compromised => &self.compromised,
            NodeState::Healthy | NodeState::Crashed => &self.healthy,
        };
        let mut u = rng.random::<f64>();
        for (o, &p) in dist.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return o as u64;
            }
        }
        (dist.len() - 1) as u64
    }

    /// Mean alert count in a state.
    pub fn mean(&self, state: NodeState) -> f64 {
        let dist = match state {
            NodeState::Compromised => &self.compromised,
            NodeState::Healthy | NodeState::Crashed => &self.healthy,
        };
        dist.iter().enumerate().map(|(o, p)| o as f64 * p).sum()
    }

    /// The Kullback–Leibler divergence `D_KL(Z(·|H) ‖ Z(·|C))`, the detection
    /// information measure of Figs. 14 and 18.
    ///
    /// # Errors
    ///
    /// Propagates divergence computation failures.
    pub fn detection_divergence(&self) -> Result<f64> {
        Ok(kl_divergence(&self.healthy, &self.compromised)?)
    }

    /// Validates assumptions D (full support) and E (TP-2) of Theorem 1.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if any observation has zero
    /// probability or the observation matrix is not TP-2.
    pub fn validate_theorem1(&self) -> Result<()> {
        if self
            .healthy
            .iter()
            .chain(&self.compromised)
            .any(|&p| p <= 0.0)
        {
            return Err(CoreError::InvalidParameter {
                name: "observation model",
                reason: "assumption D requires every observation to have positive probability in every state"
                    .into(),
            });
        }
        let matrix = vec![self.healthy.clone(), self.compromised.clone()];
        if !is_tp2(&matrix, 1e-9) {
            return Err(CoreError::InvalidParameter {
                name: "observation model",
                reason: "assumption E requires the observation matrix to be TP-2".into(),
            });
        }
        Ok(())
    }

    /// Returns a degraded copy of the model in which the compromised
    /// distribution is mixed towards the healthy one:
    /// `Z'(·|C) = (1 - λ) Z(·|C) + λ Z(·|H)`. Increasing `λ ∈ [0, 1]`
    /// decreases the KL divergence between the states, which is the knob
    /// behind the sensitivity analysis of Fig. 14.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `λ` is outside `[0, 1]`.
    pub fn degrade(&self, lambda: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&lambda) {
            return Err(CoreError::InvalidParameter {
                name: "lambda",
                reason: format!("must lie in [0, 1], got {lambda}"),
            });
        }
        let compromised = self
            .compromised
            .iter()
            .zip(&self.healthy)
            .map(|(&c, &h)| (1.0 - lambda) * c + lambda * h)
            .collect();
        ObservationModel::from_distributions(self.healthy.clone(), compromised)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_satisfies_theorem1_assumptions() {
        let model = ObservationModel::paper_default();
        assert!(model.validate_theorem1().is_ok());
        assert_eq!(model.support_size(), 11);
        assert!(model.mean(NodeState::Compromised) > model.mean(NodeState::Healthy));
        assert!(model.detection_divergence().unwrap() > 0.0);
    }

    #[test]
    fn from_distributions_validates_inputs() {
        assert!(ObservationModel::from_distributions(vec![], vec![]).is_err());
        assert!(ObservationModel::from_distributions(vec![1.0], vec![0.5, 0.5]).is_err());
        assert!(ObservationModel::from_distributions(vec![0.5, 0.6], vec![0.5, 0.5]).is_err());
        assert!(ObservationModel::from_distributions(vec![-0.5, 1.5], vec![0.5, 0.5]).is_err());
        let ok = ObservationModel::from_distributions(vec![0.9, 0.1], vec![0.2, 0.8]).unwrap();
        assert_eq!(ok.probability(NodeState::Healthy, 0), 0.9);
        assert_eq!(ok.probability(NodeState::Compromised, 1), 0.8);
        assert_eq!(ok.probability(NodeState::Crashed, 0), 0.9);
        assert_eq!(ok.probability(NodeState::Healthy, 7), 0.0);
    }

    #[test]
    fn empirical_estimation_mimics_fig11() {
        let mut rng = StdRng::seed_from_u64(9);
        let reference = ObservationModel::paper_default();
        let healthy_samples: Vec<u64> = (0..25_000)
            .map(|_| reference.sample(NodeState::Healthy, &mut rng))
            .collect();
        let compromised_samples: Vec<u64> = (0..25_000)
            .map(|_| reference.sample(NodeState::Compromised, &mut rng))
            .collect();
        let estimated =
            ObservationModel::from_samples(&healthy_samples, &compromised_samples, 11, 1.0)
                .unwrap();
        // Glivenko-Cantelli: the empirical model approaches the true one.
        for o in 0..11u64 {
            assert!(
                (estimated.probability(NodeState::Healthy, o)
                    - reference.probability(NodeState::Healthy, o))
                .abs()
                    < 0.02
            );
        }
        assert!(estimated.validate_theorem1().is_ok());
        assert!(ObservationModel::from_samples(&[], &[1], 4, 1.0).is_err());
    }

    #[test]
    fn degrade_reduces_kl_divergence_monotonically() {
        let model = ObservationModel::paper_default();
        let mut previous = f64::INFINITY;
        for lambda in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let degraded = model.degrade(lambda).unwrap();
            let divergence = degraded.detection_divergence().unwrap();
            assert!(
                divergence <= previous + 1e-12,
                "divergence must shrink with lambda"
            );
            previous = divergence;
        }
        let fully_degraded = model.degrade(1.0).unwrap();
        assert!(fully_degraded.detection_divergence().unwrap() < 1e-12);
        assert!(model.degrade(1.5).is_err());
    }

    #[test]
    fn sampling_matches_distribution_means() {
        let model = ObservationModel::paper_default();
        let mut rng = StdRng::seed_from_u64(4);
        let mean_healthy: f64 = (0..8000)
            .map(|_| model.sample(NodeState::Healthy, &mut rng) as f64)
            .sum::<f64>()
            / 8000.0;
        let mean_compromised: f64 = (0..8000)
            .map(|_| model.sample(NodeState::Compromised, &mut rng) as f64)
            .sum::<f64>()
            / 8000.0;
        assert!((mean_healthy - model.mean(NodeState::Healthy)).abs() < 0.15);
        assert!((mean_compromised - model.mean(NodeState::Compromised)).abs() < 0.15);
    }

    #[test]
    fn zero_probability_observations_violate_assumption_d() {
        let model = ObservationModel::from_distributions(vec![1.0, 0.0], vec![0.5, 0.5]).unwrap();
        assert!(model.validate_theorem1().is_err());
    }

    #[test]
    fn non_tp2_model_violates_assumption_e() {
        // Healthy produces more alerts than compromised: reversed ordering.
        let model = ObservationModel::from_distributions(vec![0.1, 0.9], vec![0.9, 0.1]).unwrap();
        assert!(model.validate_theorem1().is_err());
    }
}
