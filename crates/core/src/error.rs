//! Error types for the `tolerance-core` crate.

use std::fmt;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors produced by the TOLERANCE models, algorithms and controllers.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A model parameter violated its admissible range (e.g. probabilities
    /// outside `(0, 1)`, assumptions A–C of Theorem 1).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The replication problem is infeasible for the requested availability
    /// bound (assumption A of Theorem 2 does not hold).
    Infeasible,
    /// A solver failed; the inner string carries the underlying reason.
    Solver(String),
    /// An error bubbled up from the probability/Markov layer.
    Markov(String),
    /// A scenario name was not found in the
    /// [`ScenarioRegistry`](crate::runtime::ScenarioRegistry).
    UnknownScenario(String),
    /// A fault-injection run violated one of the invariant oracles of
    /// [`simnet`](crate::simnet); the string describes the violated
    /// invariant and the step at which it broke.
    Invariant(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CoreError::Infeasible => write!(
                f,
                "replication problem is infeasible for the requested availability"
            ),
            CoreError::Solver(why) => write!(f, "solver failure: {why}"),
            CoreError::Markov(why) => write!(f, "probability computation failed: {why}"),
            CoreError::UnknownScenario(name) => {
                write!(f, "no scenario named `{name}` is registered")
            }
            CoreError::Invariant(detail) => {
                write!(f, "invariant violation: {detail}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<tolerance_markov::MarkovError> for CoreError {
    fn from(err: tolerance_markov::MarkovError) -> Self {
        CoreError::Markov(err.to_string())
    }
}

impl From<tolerance_optim::OptimError> for CoreError {
    fn from(err: tolerance_optim::OptimError) -> Self {
        match err {
            tolerance_optim::OptimError::Infeasible => CoreError::Infeasible,
            other => CoreError::Solver(other.to_string()),
        }
    }
}

impl From<tolerance_pomdp::PomdpError> for CoreError {
    fn from(err: tolerance_pomdp::PomdpError) -> Self {
        match err {
            tolerance_pomdp::PomdpError::Infeasible => CoreError::Infeasible,
            other => CoreError::Solver(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = CoreError::InvalidParameter {
            name: "p_a",
            reason: "must be in (0,1)".into(),
        };
        assert!(e.to_string().contains("p_a"));
        assert!(CoreError::Infeasible.to_string().contains("infeasible"));
        assert!(CoreError::Solver("x".into()).to_string().contains("x"));
        assert!(CoreError::Markov("y".into()).to_string().contains("y"));

        let from_markov: CoreError = tolerance_markov::MarkovError::EmptyInput("samples").into();
        assert!(matches!(from_markov, CoreError::Markov(_)));
        let from_optim: CoreError = tolerance_optim::OptimError::Infeasible.into();
        assert_eq!(from_optim, CoreError::Infeasible);
        let from_pomdp: CoreError = tolerance_pomdp::PomdpError::Infeasible.into();
        assert_eq!(from_pomdp, CoreError::Infeasible);
        let from_pomdp: CoreError = tolerance_pomdp::PomdpError::DidNotConverge("vi").into();
        assert!(matches!(from_pomdp, CoreError::Solver(_)));
    }
}
