//! Problem 2: optimal replication factor.
//!
//! The system controller tracks the expected number of healthy nodes `s_t`
//! (computed from the node beliefs, Eq. 8) and decides at every step whether
//! to add a node (`a_t ∈ {0, 1}`). It minimizes the long-run average number
//! of nodes (Eq. 9) subject to the availability constraint
//! `T(A) ≥ ε_A` — the classic inventory replenishment trade-off. The problem
//! is a constrained MDP solved exactly by the occupation-measure LP of
//! Algorithm 2; Theorem 2 guarantees the optimal policy mixes at most two
//! threshold policies.

use crate::error::{CoreError, Result};
use rand::Rng;
use tolerance_markov::dist::{Binomial, DiscreteDistribution};
use tolerance_pomdp::cmdp::{Cmdp, CmdpConstraint, CmdpSolution, ConstraintSense};
use tolerance_pomdp::mdp::Mdp;

/// Configuration of the replication problem.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplicationConfig {
    /// Maximum number of nodes `s_max` (paper: 13 in the testbed evaluation,
    /// up to 2048 in Fig. 9).
    pub s_max: usize,
    /// The tolerance threshold `f`: service is available while at least
    /// `f + 1` nodes are healthy (Proposition 1 / Eq. 9).
    pub fault_threshold: usize,
    /// Lower bound `ε_A` on the long-run average availability (paper: 0.9).
    pub availability_target: f64,
    /// Per-step probability that a healthy node remains healthy (one minus
    /// the per-step failure probability); derived from the node parameters,
    /// e.g. `(1 - p_A)(1 - p_C1)` when failures are not recovered within the
    /// step, or a larger value when node controllers recover promptly.
    pub node_survival_probability: f64,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig {
            s_max: 13,
            fault_threshold: 3,
            availability_target: 0.9,
            node_survival_probability: 0.9,
        }
    }
}

/// The randomized stationary replication strategy produced by Algorithm 2:
/// `π(a = 1 | s)` is the probability of adding a node when the expected
/// number of healthy nodes is `s` (Fig. 13a).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReplicationStrategy {
    add_probability: Vec<f64>,
    objective: f64,
    availability: f64,
    lp_pivots: usize,
}

impl ReplicationStrategy {
    /// `π(a = 1 | s)` for every state `s ∈ {0, ..., s_max}`.
    pub fn add_probabilities(&self) -> &[f64] {
        &self.add_probability
    }

    /// The probability of adding a node in state `s` (0 beyond `s_max`).
    pub fn add_probability(&self, state: usize) -> f64 {
        self.add_probability.get(state).copied().unwrap_or(0.0)
    }

    /// Samples the add decision in state `s`.
    pub fn decide<R: Rng + ?Sized>(&self, state: usize, rng: &mut R) -> bool {
        rng.random::<f64>() < self.add_probability(state)
    }

    /// The optimal long-run average number of nodes (the objective of Eq. 9).
    pub fn expected_cost(&self) -> f64 {
        self.objective
    }

    /// The long-run average availability achieved by the strategy.
    pub fn availability(&self) -> f64 {
        self.availability
    }

    /// Number of LP pivots Algorithm 2 needed (a size-independent measure of
    /// the work reported in Fig. 9).
    pub fn lp_pivots(&self) -> usize {
        self.lp_pivots
    }

    /// Checks the Theorem 2 structure: the policy must be non-increasing in
    /// `s` up to at most one randomized switching state (a mixture of two
    /// threshold policies).
    pub fn has_threshold_structure(&self, tolerance: f64) -> bool {
        // Quantize to {add, randomize, keep} and require the pattern
        // 1...1 [fraction] 0...0.
        let mut phase = 0u8; // 0 = adding, 1 = after the switch
        for &p in &self.add_probability {
            let symbol = if p >= 1.0 - tolerance {
                0u8
            } else if p <= tolerance {
                2u8
            } else {
                1u8
            };
            match (phase, symbol) {
                (0, 0) => {}
                (0, 1) | (0, 2) => phase = 1,
                (1, 2) => {}
                (1, 0) | (1, 1) => return false,
                _ => {}
            }
        }
        true
    }
}

/// Problem 2: the replication CMDP.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicationProblem {
    config: ReplicationConfig,
}

impl ReplicationProblem {
    /// Creates the problem.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the configuration is
    /// inconsistent (e.g. `s_max <= f`, probabilities outside `[0, 1]`).
    pub fn new(config: ReplicationConfig) -> Result<Self> {
        if config.s_max <= config.fault_threshold {
            return Err(CoreError::InvalidParameter {
                name: "s_max",
                reason: format!(
                    "must exceed the fault threshold {} to ever be available",
                    config.fault_threshold
                ),
            });
        }
        if !(0.0..=1.0).contains(&config.availability_target) {
            return Err(CoreError::InvalidParameter {
                name: "availability_target",
                reason: format!("must lie in [0, 1], got {}", config.availability_target),
            });
        }
        if !(0.0 < config.node_survival_probability && config.node_survival_probability <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "node_survival_probability",
                reason: format!(
                    "must lie in (0, 1], got {}",
                    config.node_survival_probability
                ),
            });
        }
        Ok(ReplicationProblem { config })
    }

    /// The configuration.
    pub fn config(&self) -> &ReplicationConfig {
        &self.config
    }

    /// Number of states of the CMDP (`s ∈ {0, ..., s_max}`).
    pub fn num_states(&self) -> usize {
        self.config.s_max + 1
    }

    /// The transition function `f_S(s' | s, a)` of Eq. (8): after optionally
    /// adding a node, each healthy node independently survives the step with
    /// probability `node_survival_probability`, so the next state is a
    /// binomial thinning clamped to `[0, s_max]`. The rows of this function
    /// for a few states are what Fig. 16 plots.
    pub fn transition_row(&self, state: usize, add: bool) -> Vec<f64> {
        let s_max = self.config.s_max;
        let after_add = (state + usize::from(add)).min(s_max);
        let binomial = Binomial::new(after_add as u64, self.config.node_survival_probability)
            .expect("validated probability");
        let mut row = vec![0.0; s_max + 1];
        for (next, slot) in row.iter_mut().enumerate() {
            *slot = binomial.pmf(next as u64);
        }
        // Numerical safety: renormalize (the binomial already sums to 1).
        let total: f64 = row.iter().sum();
        if total > 0.0 {
            for v in row.iter_mut() {
                *v /= total;
            }
        }
        row
    }

    /// Builds the CMDP of Algorithm 2: cost = number of nodes kept, and the
    /// availability signal `1{s >= f + 1}` constrained to average at least
    /// `ε_A`.
    ///
    /// # Errors
    ///
    /// Propagates model-construction failures.
    pub fn to_cmdp(&self) -> Result<Cmdp> {
        let states = self.num_states();
        let transition: Vec<Vec<Vec<f64>>> = (0..2)
            .map(|a| {
                (0..states)
                    .map(|s| self.transition_row(s, a == 1))
                    .collect()
            })
            .collect();
        // Cost of Eq. (9): the number of nodes operated this step (adding a
        // node is accounted for by paying for it immediately).
        let cost: Vec<Vec<f64>> = (0..states)
            .map(|s| vec![s as f64, (s + 1).min(self.config.s_max) as f64])
            .collect();
        let mdp = Mdp::new(transition, cost)?;
        let availability_signal: Vec<Vec<f64>> = (0..states)
            .map(|s| {
                let available = if s > self.config.fault_threshold {
                    1.0
                } else {
                    0.0
                };
                vec![available, available]
            })
            .collect();
        let constraint = CmdpConstraint {
            signal: availability_signal,
            sense: ConstraintSense::AtLeast,
            bound: self.config.availability_target,
        };
        Ok(Cmdp::new(mdp, vec![constraint])?)
    }

    /// Solves the problem with Algorithm 2 (the occupation-measure LP).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] if no policy meets the availability
    /// target (assumption A of Theorem 2 fails) and propagates LP failures.
    pub fn solve(&self) -> Result<ReplicationStrategy> {
        let cmdp = self.to_cmdp()?;
        let solution: CmdpSolution = cmdp.solve()?;
        let add_probability = solution.policy.iter().map(|row| row[1]).collect();
        Ok(ReplicationStrategy {
            add_probability,
            objective: solution.objective,
            availability: solution.constraint_values.first().copied().unwrap_or(0.0),
            lp_pivots: solution.lp_pivots,
        })
    }

    /// The expected number of healthy nodes implied by a set of node beliefs
    /// (the state estimate `⌊Σ_i (1 - b_i)⌋` of Eq. 8).
    pub fn expected_healthy(beliefs: &[f64]) -> usize {
        beliefs
            .iter()
            .map(|b| 1.0 - b.clamp(0.0, 1.0))
            .sum::<f64>()
            .floor()
            .max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn problem(s_max: usize, epsilon: f64) -> ReplicationProblem {
        ReplicationProblem::new(ReplicationConfig {
            s_max,
            fault_threshold: 2,
            availability_target: epsilon,
            node_survival_probability: 0.9,
        })
        .unwrap()
    }

    #[test]
    fn construction_validates_configuration() {
        assert!(ReplicationProblem::new(ReplicationConfig {
            s_max: 2,
            fault_threshold: 3,
            ..ReplicationConfig::default()
        })
        .is_err());
        assert!(ReplicationProblem::new(ReplicationConfig {
            availability_target: 1.5,
            ..ReplicationConfig::default()
        })
        .is_err());
        assert!(ReplicationProblem::new(ReplicationConfig {
            node_survival_probability: 0.0,
            ..ReplicationConfig::default()
        })
        .is_err());
    }

    #[test]
    fn transition_rows_are_stochastic_and_shift_with_action() {
        let p = problem(10, 0.9);
        for s in 0..=10usize {
            for add in [false, true] {
                let row = p.transition_row(s, add);
                assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            }
        }
        // Adding a node shifts the distribution upwards (in expectation).
        let without: f64 = p
            .transition_row(5, false)
            .iter()
            .enumerate()
            .map(|(s, q)| s as f64 * q)
            .sum();
        let with: f64 = p
            .transition_row(5, true)
            .iter()
            .enumerate()
            .map(|(s, q)| s as f64 * q)
            .sum();
        assert!(with > without);
        // At s_max the add action saturates.
        let saturated = p.transition_row(10, true);
        let baseline = p.transition_row(10, false);
        assert_eq!(saturated, baseline);
    }

    #[test]
    fn algorithm2_meets_the_availability_constraint() {
        let p = problem(10, 0.9);
        let strategy = p.solve().unwrap();
        assert!(
            strategy.availability() >= 0.9 - 1e-6,
            "availability {} below the target",
            strategy.availability()
        );
        // The optimal cost is at least the number of nodes needed for
        // availability (f + 1 = 3) times the availability mass.
        assert!(strategy.expected_cost() >= 2.5);
        assert!(strategy.lp_pivots() > 0);
    }

    #[test]
    fn optimal_policy_has_theorem2_threshold_structure() {
        let p = problem(12, 0.92);
        let strategy = p.solve().unwrap();
        assert!(
            strategy.has_threshold_structure(1e-6),
            "policy {:?} is not a threshold mixture",
            strategy.add_probabilities()
        );
        // Low states must add with high probability, high states must not.
        assert!(strategy.add_probability(0) > 0.5);
        assert!(strategy.add_probability(12) < 0.5);
    }

    #[test]
    fn tighter_availability_costs_more() {
        let relaxed = problem(10, 0.8).solve().unwrap();
        let strict = problem(10, 0.99).solve().unwrap();
        assert!(strict.expected_cost() >= relaxed.expected_cost() - 1e-9);
        assert!(strict.availability() >= 0.99 - 1e-6);
    }

    #[test]
    fn impossible_availability_is_infeasible() {
        // With survival probability 0.1 and s_max = 4, sustaining 3 healthy
        // nodes 99.9% of the time is impossible.
        let p = ReplicationProblem::new(ReplicationConfig {
            s_max: 4,
            fault_threshold: 2,
            availability_target: 0.999,
            node_survival_probability: 0.1,
        })
        .unwrap();
        assert_eq!(p.solve().unwrap_err(), CoreError::Infeasible);
    }

    #[test]
    fn expected_healthy_floors_the_belief_sum() {
        assert_eq!(ReplicationProblem::expected_healthy(&[0.0, 0.0, 0.0]), 3);
        assert_eq!(ReplicationProblem::expected_healthy(&[0.5, 0.5, 0.0]), 2);
        assert_eq!(ReplicationProblem::expected_healthy(&[0.9, 0.9, 0.9]), 0);
        assert_eq!(ReplicationProblem::expected_healthy(&[]), 0);
        // Values outside [0, 1] are clamped.
        assert_eq!(ReplicationProblem::expected_healthy(&[-1.0, 2.0]), 1);
    }

    #[test]
    fn strategy_sampling_follows_probabilities() {
        let p = problem(8, 0.9);
        let strategy = p.solve().unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let state = 0usize;
        let adds = (0..2000)
            .filter(|_| strategy.decide(state, &mut rng))
            .count();
        let fraction = adds as f64 / 2000.0;
        assert!((fraction - strategy.add_probability(state)).abs() < 0.05);
        assert!(
            !strategy.decide(100, &mut rng),
            "states beyond s_max never add"
        );
    }
}
