//! The intrusion-tolerance metrics of Section III-C.
//!
//! * `T(A)` — average availability: the fraction of time-steps in which the
//!   number of compromised and crashed nodes is at most `f`.
//! * `T(R)` — average time-to-recovery: the mean number of time-steps from a
//!   node compromise until its recovery starts. Intrusions that are never
//!   recovered within an evaluation episode are charged the paper's cap of
//!   `10^3` steps (the value reported for NO-RECOVERY in Table 7).
//! * `F(R)` — recovery frequency: the fraction of time-steps in which a
//!   recovery occurs.

use serde::{Deserialize, Serialize};

/// The cap charged for intrusions that are never recovered (Table 7 reports
/// `10^3` for the NO-RECOVERY baseline).
pub const UNRECOVERED_CAP: f64 = 1000.0;

/// Accumulator for the three evaluation metrics of an emulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvaluationMetrics {
    steps: u64,
    available_steps: u64,
    steps_with_recovery: u64,
    recovery_delays: Vec<f64>,
    unrecovered_intrusions: u64,
}

/// The finalized metric values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricReport {
    /// Average availability `T(A)`.
    pub availability: f64,
    /// Average time-to-recovery `T(R)` in time-steps.
    pub time_to_recovery: f64,
    /// Recovery frequency `F(R)`.
    pub recovery_frequency: f64,
    /// Number of time-steps the run lasted.
    pub steps: u64,
}

impl EvaluationMetrics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        EvaluationMetrics::default()
    }

    /// Records one time-step of the system.
    ///
    /// * `compromised_and_crashed` — number of nodes that are compromised or
    ///   crashed during the step.
    /// * `fault_threshold` — the `f` the consensus protocol tolerates at the
    ///   current replication factor.
    /// * `recoveries_started` — number of recoveries started this step.
    pub fn record_step(
        &mut self,
        compromised_and_crashed: usize,
        fault_threshold: usize,
        recoveries_started: usize,
    ) {
        self.steps += 1;
        if compromised_and_crashed <= fault_threshold {
            self.available_steps += 1;
        }
        if recoveries_started > 0 {
            self.steps_with_recovery += 1;
        }
    }

    /// Records that an intrusion which began `delay` steps ago was recovered
    /// this step.
    pub fn record_recovery_delay(&mut self, delay: u64) {
        self.recovery_delays.push(delay as f64);
    }

    /// Records an intrusion that was still unrecovered when the run ended; it
    /// is charged the paper's cap of `10^3` steps.
    pub fn record_unrecovered_intrusion(&mut self) {
        self.unrecovered_intrusions += 1;
    }

    /// Number of recorded time-steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Finalizes the metrics. If no intrusion ever occurred the
    /// time-to-recovery is reported as 0.
    pub fn report(&self) -> MetricReport {
        let availability = if self.steps == 0 {
            1.0
        } else {
            self.available_steps as f64 / self.steps as f64
        };
        let recovery_frequency = if self.steps == 0 {
            0.0
        } else {
            self.steps_with_recovery as f64 / self.steps as f64
        };
        let intrusion_count = self.recovery_delays.len() as u64 + self.unrecovered_intrusions;
        let time_to_recovery = if intrusion_count == 0 {
            0.0
        } else {
            let recovered_sum: f64 = self.recovery_delays.iter().sum();
            (recovered_sum + self.unrecovered_intrusions as f64 * UNRECOVERED_CAP)
                / intrusion_count as f64
        };
        MetricReport {
            availability,
            time_to_recovery,
            recovery_frequency,
            steps: self.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn empty_run_reports_neutral_values() {
        let report = EvaluationMetrics::new().report();
        assert_eq!(report.availability, 1.0);
        assert_eq!(report.time_to_recovery, 0.0);
        assert_eq!(report.recovery_frequency, 0.0);
        assert_eq!(report.steps, 0);
    }

    #[test]
    fn availability_counts_steps_within_the_fault_budget() {
        let mut metrics = EvaluationMetrics::new();
        // 6 available steps, 4 unavailable.
        for _ in 0..6 {
            metrics.record_step(1, 1, 0);
        }
        for _ in 0..4 {
            metrics.record_step(3, 1, 0);
        }
        let report = metrics.report();
        assert_close(report.availability, 0.6, 1e-12);
        assert_eq!(report.steps, 10);
    }

    #[test]
    fn recovery_frequency_counts_steps_with_recoveries() {
        let mut metrics = EvaluationMetrics::new();
        metrics.record_step(0, 1, 2);
        metrics.record_step(0, 1, 0);
        metrics.record_step(0, 1, 1);
        metrics.record_step(0, 1, 0);
        assert_close(metrics.report().recovery_frequency, 0.5, 1e-12);
    }

    #[test]
    fn time_to_recovery_averages_delays_and_caps_unrecovered() {
        let mut metrics = EvaluationMetrics::new();
        metrics.record_step(0, 1, 0);
        metrics.record_recovery_delay(2);
        metrics.record_recovery_delay(4);
        assert_close(metrics.report().time_to_recovery, 3.0, 1e-12);
        // An unrecovered intrusion pulls the mean towards the cap.
        metrics.record_unrecovered_intrusion();
        assert_close(
            metrics.report().time_to_recovery,
            (2.0 + 4.0 + 1000.0) / 3.0,
            1e-9,
        );
    }

    #[test]
    fn no_recovery_run_reports_the_cap() {
        let mut metrics = EvaluationMetrics::new();
        for _ in 0..100 {
            metrics.record_step(5, 1, 0);
        }
        metrics.record_unrecovered_intrusion();
        metrics.record_unrecovered_intrusion();
        let report = metrics.report();
        assert_close(report.time_to_recovery, UNRECOVERED_CAP, 1e-9);
        assert_close(report.availability, 0.0, 1e-12);
        assert_close(report.recovery_frequency, 0.0, 1e-12);
    }
}
