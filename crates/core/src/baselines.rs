//! The baseline control strategies of Section VIII-B.
//!
//! The paper compares TOLERANCE against the strategies used by
//! state-of-the-art intrusion-tolerant systems:
//!
//! * **NO-RECOVERY** — never recovers and never adds nodes (RAMPART,
//!   SECURE-RING).
//! * **PERIODIC** — recovers every `Δ_R` steps, never adds nodes (PBFT,
//!   VM-FIT, WORM-IT, PRRW, SCIT, BFT-SMaRt, UpRight, ...).
//! * **PERIODIC-ADAPTIVE** — recovers every `Δ_R` steps and adds a node when
//!   the observed alert count exceeds twice its mean (SITAR, ITSI, ITUA).
//!
//! TOLERANCE itself is represented by [`crate::controller::NodeController`] /
//! [`crate::controller::SystemController`]; the enum here gives the
//! emulation a uniform way to instantiate any of the four per-node recovery
//! policies plus the matching replication behaviour.

use crate::node_model::NodeAction;
use serde::{Deserialize, Serialize};

/// Which baseline strategy to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BaselineKind {
    /// Never recover, never add nodes.
    NoRecovery,
    /// Recover every `Δ_R` steps, never add nodes.
    Periodic,
    /// Recover every `Δ_R` steps and add a node on alert bursts.
    PeriodicAdaptive,
}

impl BaselineKind {
    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::NoRecovery => "no-recovery",
            BaselineKind::Periodic => "periodic",
            BaselineKind::PeriodicAdaptive => "periodic-adaptive",
        }
    }
}

/// The per-step decision of a recovery strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryDecision {
    /// Leave the replica running.
    Wait,
    /// Recover the replica.
    Recover,
}

impl From<NodeAction> for RecoveryDecision {
    fn from(action: NodeAction) -> Self {
        match action {
            NodeAction::Wait => RecoveryDecision::Wait,
            NodeAction::Recover => RecoveryDecision::Recover,
        }
    }
}

/// A baseline per-node recovery strategy with its replication heuristic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStrategy {
    kind: BaselineKind,
    /// The period `Δ_R`; `None` represents `Δ_R = ∞`.
    delta_r: Option<u32>,
    /// Mean alert count `E[O_t]` used by the adaptive replication heuristic.
    expected_alerts: f64,
    steps_since_recovery: u32,
}

impl RecoveryStrategy {
    /// Creates a baseline strategy.
    pub fn new(kind: BaselineKind, delta_r: Option<u32>, expected_alerts: f64) -> Self {
        RecoveryStrategy {
            kind,
            delta_r,
            expected_alerts,
            steps_since_recovery: 0,
        }
    }

    /// Offsets the position within the recovery period, staggering periodic
    /// recoveries across nodes so that at most a few replicas recover in the
    /// same time-step (how proactive-recovery systems schedule their
    /// rejuvenation windows).
    pub fn with_initial_phase(mut self, offset: u32) -> Self {
        if let Some(period) = self.delta_r {
            if period > 0 {
                self.steps_since_recovery = offset % period;
            }
        }
        self
    }

    /// The baseline kind.
    pub fn kind(&self) -> BaselineKind {
        self.kind
    }

    /// The per-step recovery decision of the baseline. Baselines ignore the
    /// alert count for recovery purposes — they are driven purely by time —
    /// which is exactly why their time-to-recovery is an order of magnitude
    /// larger than TOLERANCE's (Fig. 12).
    pub fn decide(&mut self) -> RecoveryDecision {
        match self.kind {
            BaselineKind::NoRecovery => RecoveryDecision::Wait,
            BaselineKind::Periodic | BaselineKind::PeriodicAdaptive => match self.delta_r {
                Some(period) if period > 0 && self.steps_since_recovery + 1 >= period => {
                    self.steps_since_recovery = 0;
                    RecoveryDecision::Recover
                }
                _ => {
                    self.steps_since_recovery += 1;
                    RecoveryDecision::Wait
                }
            },
        }
    }

    /// Whether the baseline's replication heuristic wants to add a node given
    /// this step's observed alert count (`o_t >= 2 E[O_t]`, Section VIII-B).
    pub fn wants_additional_node(&self, observed_alerts: f64) -> bool {
        match self.kind {
            BaselineKind::PeriodicAdaptive => observed_alerts >= 2.0 * self.expected_alerts,
            BaselineKind::NoRecovery | BaselineKind::Periodic => false,
        }
    }

    /// Resets the period position (e.g. after an externally forced recovery).
    pub fn notify_recovered(&mut self) {
        self.steps_since_recovery = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_the_paper() {
        assert_eq!(BaselineKind::NoRecovery.name(), "no-recovery");
        assert_eq!(BaselineKind::Periodic.name(), "periodic");
        assert_eq!(BaselineKind::PeriodicAdaptive.name(), "periodic-adaptive");
    }

    #[test]
    fn no_recovery_never_recovers_or_adds() {
        let mut strategy = RecoveryStrategy::new(BaselineKind::NoRecovery, Some(5), 3.0);
        for _ in 0..100 {
            assert_eq!(strategy.decide(), RecoveryDecision::Wait);
        }
        assert!(!strategy.wants_additional_node(100.0));
    }

    #[test]
    fn periodic_recovers_every_delta_r_steps() {
        let mut strategy = RecoveryStrategy::new(BaselineKind::Periodic, Some(5), 3.0);
        let decisions: Vec<RecoveryDecision> = (0..15).map(|_| strategy.decide()).collect();
        let recoveries = decisions
            .iter()
            .filter(|d| **d == RecoveryDecision::Recover)
            .count();
        assert_eq!(recoveries, 3, "one recovery per 5 steps over 15 steps");
        // Recoveries are evenly spaced.
        assert_eq!(decisions[4], RecoveryDecision::Recover);
        assert_eq!(decisions[9], RecoveryDecision::Recover);
        assert!(
            !strategy.wants_additional_node(100.0),
            "periodic never adds nodes"
        );
    }

    #[test]
    fn periodic_with_infinite_period_degenerates_to_no_recovery() {
        let mut strategy = RecoveryStrategy::new(BaselineKind::Periodic, None, 3.0);
        for _ in 0..50 {
            assert_eq!(strategy.decide(), RecoveryDecision::Wait);
        }
    }

    #[test]
    fn adaptive_adds_nodes_on_alert_bursts() {
        let strategy = RecoveryStrategy::new(BaselineKind::PeriodicAdaptive, Some(5), 3.0);
        assert!(!strategy.wants_additional_node(5.0));
        assert!(strategy.wants_additional_node(6.0));
        assert!(strategy.wants_additional_node(20.0));
    }

    #[test]
    fn notify_recovered_resets_the_period() {
        let mut strategy = RecoveryStrategy::new(BaselineKind::Periodic, Some(3), 3.0);
        strategy.decide();
        strategy.decide();
        strategy.notify_recovered();
        // After the reset it takes a full period again before recovering.
        assert_eq!(strategy.decide(), RecoveryDecision::Wait);
        assert_eq!(strategy.decide(), RecoveryDecision::Wait);
        assert_eq!(strategy.decide(), RecoveryDecision::Recover);
    }

    #[test]
    fn conversion_from_node_action() {
        assert_eq!(
            RecoveryDecision::from(NodeAction::Wait),
            RecoveryDecision::Wait
        );
        assert_eq!(
            RecoveryDecision::from(NodeAction::Recover),
            RecoveryDecision::Recover
        );
    }
}
