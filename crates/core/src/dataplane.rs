//! Data-plane throughput scenarios for the scenario runtime.
//!
//! The TOLERANCE architecture assumes its replicated service plane keeps
//! serving client traffic while the two control levels act on it. These
//! scenarios make the service plane sweepable like any other workload: a
//! MinBFT cluster (with configurable leader batching, checkpoint compaction
//! and USIG signature cost) driven by an open- or closed-loop client
//! workload, reporting through the shared
//! [`MetricReport`](crate::metrics::MetricReport) currency of the
//! [`ScenarioRegistry`].

use crate::error::Result;
use crate::metrics::MetricReport;
use crate::runtime::{AsMetricReport, MetricScenario, Scenario, ScenarioRegistry};
use tolerance_consensus::workload::{Arrival, WorkloadConfig, WorkloadReport};
use tolerance_consensus::{MinBftCluster, MinBftConfig};

impl AsMetricReport for WorkloadReport {
    /// Maps the data-plane outcome onto the shared metric currency:
    /// availability is the completed fraction of offered requests,
    /// time-to-recovery doubles as mean request latency, and `steps` counts
    /// completed requests.
    fn metric_report(&self) -> MetricReport {
        MetricReport {
            availability: if self.offered == 0 {
                1.0
            } else {
                self.completed_requests as f64 / self.offered as f64
            },
            time_to_recovery: self.mean_latency,
            recovery_frequency: 0.0,
            steps: self.completed_requests,
        }
    }
}

/// A sweepable data-plane scenario: one MinBFT cluster configuration plus
/// one client workload.
#[derive(Debug, Clone)]
pub struct DataPlaneScenario {
    label: String,
    cluster: MinBftConfig,
    workload: WorkloadConfig,
}

impl DataPlaneScenario {
    /// Creates a scenario running `workload` against a cluster built from
    /// `cluster` (the per-run seed overrides both configs' seeds).
    pub fn new(label: impl Into<String>, cluster: MinBftConfig, workload: WorkloadConfig) -> Self {
        DataPlaneScenario {
            label: label.into(),
            cluster,
            workload,
        }
    }

    /// The cluster configuration (the seed field is overridden per run).
    pub fn cluster_config(&self) -> &MinBftConfig {
        &self.cluster
    }

    /// The workload configuration (the seed field is overridden per run).
    pub fn workload_config(&self) -> &WorkloadConfig {
        &self.workload
    }
}

impl Scenario for DataPlaneScenario {
    type Output = WorkloadReport;

    fn label(&self) -> String {
        self.label.clone()
    }

    fn run(&self, seed: u64) -> Result<WorkloadReport> {
        // Sweep axes can produce flush windows below the batch-fill floor
        // (`batch_delay < batch_size × per-message cost`), which silently
        // degrades every batch to a partial flush; the clamp keeps any grid
        // point meaningfully batched (see `MinBftConfig::validate`).
        let mut cluster = MinBftCluster::new(
            MinBftConfig {
                seed,
                ..self.cluster.clone()
            }
            .clamped(),
        );
        let report = cluster.run_workload(&WorkloadConfig {
            seed: seed ^ 0x6461_7461_706c_616e,
            ..self.workload
        });
        Ok(report)
    }
}

fn quick_cluster(batch_size: usize) -> MinBftConfig {
    MinBftConfig {
        initial_replicas: 4,
        batch_size,
        batch_delay: 0.05,
        // A visible signature cost is what batching amortizes.
        signature_time: 0.002,
        checkpoint_period: 50,
        ..MinBftConfig::default()
    }
}

/// Registers the built-in data-plane scenarios: closed-loop workloads at
/// batch sizes 1 and 16 (the like-for-like batching comparison), an
/// open-loop Poisson arrival workload, and `dataplane/load-swing` — the
/// self-tuning plane under a 10x diurnal offered-load swing
/// ([`crate::simnet::sharded::load_swing_config`]), run under the fleet
/// engine's full oracle suite with per-window autotune decisions in the
/// report.
pub fn register_dataplane_scenarios(registry: &mut ScenarioRegistry) {
    let closed = WorkloadConfig {
        clients: 16,
        arrival: Arrival::Closed,
        duration: 1.0,
        ..WorkloadConfig::default()
    };
    for batch_size in [1usize, 16] {
        let workload = closed;
        registry.register(format!("dataplane/closed-b{batch_size}"), move || {
            Ok(Box::new(DataPlaneScenario::new(
                format!("dataplane/closed-b{batch_size}"),
                quick_cluster(batch_size),
                workload,
            )) as Box<dyn MetricScenario>)
        });
    }
    registry.register("dataplane/open-poisson", move || {
        Ok(Box::new(DataPlaneScenario::new(
            "dataplane/open-poisson",
            quick_cluster(8),
            WorkloadConfig {
                clients: 16,
                arrival: Arrival::Open { rate: 60.0 },
                duration: 1.0,
                ..WorkloadConfig::default()
            },
        )) as Box<dyn MetricScenario>)
    });
    registry.register("dataplane/load-swing", || {
        Ok(Box::new(crate::simnet::sharded::ShardedSimnetScenario::new(
            "dataplane/load-swing",
            crate::simnet::sharded::load_swing_config(),
        )) as Box<dyn MetricScenario>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::Runner;

    #[test]
    fn dataplane_scenarios_register_and_run() {
        let mut registry = ScenarioRegistry::new();
        register_dataplane_scenarios(&mut registry);
        for name in [
            "dataplane/closed-b1",
            "dataplane/closed-b16",
            "dataplane/open-poisson",
            "dataplane/load-swing",
        ] {
            assert!(registry.contains(name), "missing {name}");
        }
        let run = registry
            .run("dataplane/closed-b16", &Runner::serial(), &[1, 2])
            .unwrap();
        assert_eq!(run.reports.len(), 2);
        for report in &run.reports {
            assert!(report.steps > 0, "no requests completed: {report:?}");
            assert!((0.0..=1.0).contains(&report.availability));
            assert!(report.time_to_recovery > 0.0, "latency must be positive");
        }
    }

    #[test]
    fn batching_increases_registry_visible_throughput() {
        // The registry-facing comparison behind the bench: at the same
        // workload and signature cost, batch 16 completes far more requests
        // than batch 1.
        let mut registry = ScenarioRegistry::new();
        register_dataplane_scenarios(&mut registry);
        let runner = Runner::serial();
        let b1 = registry.run("dataplane/closed-b1", &runner, &[7]).unwrap();
        let b16 = registry.run("dataplane/closed-b16", &runner, &[7]).unwrap();
        assert!(
            b16.reports[0].steps > b1.reports[0].steps,
            "batch 16 must outperform batch 1: {} vs {}",
            b16.reports[0].steps,
            b1.reports[0].steps
        );
    }

    #[test]
    fn scenario_runs_are_deterministic_in_the_seed() {
        let scenario = DataPlaneScenario::new(
            "test/dataplane",
            quick_cluster(8),
            WorkloadConfig {
                clients: 8,
                duration: 0.5,
                ..WorkloadConfig::default()
            },
        );
        assert_eq!(scenario.run(5).unwrap(), scenario.run(5).unwrap());
        assert_ne!(scenario.run(5).unwrap(), scenario.run(6).unwrap());
    }
}
