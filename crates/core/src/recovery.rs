//! Problem 1: optimal intrusion recovery.
//!
//! The node controller minimizes the bi-objective of Eq. (5) — a weighted sum
//! of the time-to-recovery and the recovery frequency — subject to the
//! bounded-time-to-recovery (BTR) constraint that forces a recovery at least
//! every `Δ_R` steps (Eq. 6b). Theorem 1 shows that the optimal strategy is a
//! belief threshold, and Corollary 1 that the per-step thresholds increase
//! towards the next forced recovery; [`ThresholdStrategy`] is exactly that
//! parameterization, and [`RecoveryProblem`] evaluates its long-run cost by
//! Monte-Carlo simulation of the node model (the objective that Algorithm 1
//! minimizes).

use crate::algorithms::{Alg1, Alg1Config, OptimizerKind};
use crate::error::{CoreError, Result};
use crate::node_model::{NodeAction, NodeModel, NodeState};
use rand::Rng;

/// Configuration of the recovery problem.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryConfig {
    /// The weight `η ≥ 1` on the time-to-recovery term of Eq. (5)
    /// (paper: 2).
    pub eta: f64,
    /// The BTR constraint `Δ_R`: a recovery is forced every `Δ_R` steps.
    /// `None` means `Δ_R = ∞` (no periodic recoveries).
    pub delta_r: Option<u32>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            eta: 2.0,
            delta_r: None,
        }
    }
}

/// A (possibly time-dependent) threshold recovery strategy (Theorem 1 /
/// Algorithm 1): recover exactly when the compromise belief reaches the
/// threshold for the current position within the recovery period.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThresholdStrategy {
    thresholds: Vec<f64>,
    delta_r: Option<u32>,
}

impl ThresholdStrategy {
    /// Creates a strategy from per-step thresholds. With `Δ_R = None` a
    /// single threshold is used at every step; with `Δ_R = d` the vector
    /// holds the thresholds for positions `0..d-1` within the period (the
    /// last step of the period recovers unconditionally, enforcing the BTR
    /// constraint).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if no thresholds are given or
    /// any threshold lies outside `[0, 1]`.
    pub fn new(thresholds: Vec<f64>, delta_r: Option<u32>) -> Result<Self> {
        if thresholds.is_empty() {
            return Err(CoreError::InvalidParameter {
                name: "thresholds",
                reason: "at least one threshold is required".into(),
            });
        }
        if thresholds.iter().any(|t| !(0.0..=1.0).contains(t)) {
            return Err(CoreError::InvalidParameter {
                name: "thresholds",
                reason: "thresholds must lie in [0, 1]".into(),
            });
        }
        Ok(ThresholdStrategy {
            thresholds,
            delta_r,
        })
    }

    /// A single time-independent threshold (the `Δ_R = ∞` case of
    /// Corollary 1).
    ///
    /// # Errors
    ///
    /// Same as [`ThresholdStrategy::new`].
    pub fn stationary(threshold: f64) -> Result<Self> {
        ThresholdStrategy::new(vec![threshold], None)
    }

    /// The BTR period this strategy was built for.
    pub fn delta_r(&self) -> Option<u32> {
        self.delta_r
    }

    /// The threshold applied at `steps_since_recovery` steps after the last
    /// recovery.
    pub fn threshold_at(&self, steps_since_recovery: u32) -> f64 {
        let index = (steps_since_recovery as usize).min(self.thresholds.len() - 1);
        self.thresholds[index]
    }

    /// The raw threshold vector.
    pub fn thresholds(&self) -> &[f64] {
        &self.thresholds
    }

    /// The recovery decision (Eq. 7 plus the BTR constraint 6b).
    pub fn decide(&self, belief: f64, steps_since_recovery: u32) -> NodeAction {
        if let Some(delta_r) = self.delta_r {
            if delta_r > 0 && steps_since_recovery + 1 >= delta_r {
                return NodeAction::Recover;
            }
        }
        if belief >= self.threshold_at(steps_since_recovery) {
            NodeAction::Recover
        } else {
            NodeAction::Wait
        }
    }
}

/// The outcome of simulating one node trajectory.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EpisodeOutcome {
    /// Average cost per step (the `J_i` of Eq. 5 over the episode).
    pub average_cost: f64,
    /// Number of recoveries performed.
    pub recoveries: u32,
    /// Number of steps the node spent compromised.
    pub compromised_steps: u32,
    /// Number of steps simulated before the episode ended (crash or horizon).
    pub steps: u32,
}

/// Problem 1: the intrusion-recovery POMDP of a single node.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryProblem {
    model: NodeModel,
    config: RecoveryConfig,
}

impl RecoveryProblem {
    /// Creates the problem.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `η < 1` or `Δ_R == 0`.
    pub fn new(model: NodeModel, config: RecoveryConfig) -> Result<Self> {
        if config.eta < 1.0 {
            return Err(CoreError::InvalidParameter {
                name: "eta",
                reason: format!(
                    "the trade-off weight must be at least 1, got {}",
                    config.eta
                ),
            });
        }
        if config.delta_r == Some(0) {
            return Err(CoreError::InvalidParameter {
                name: "delta_r",
                reason: "the BTR period must be at least 1 (use None for no periodic recovery)"
                    .into(),
            });
        }
        Ok(RecoveryProblem { model, config })
    }

    /// The node model.
    pub fn model(&self) -> &NodeModel {
        &self.model
    }

    /// The configuration.
    pub fn config(&self) -> &RecoveryConfig {
        &self.config
    }

    /// Number of threshold parameters Algorithm 1 optimizes for this problem:
    /// `Δ_R - 1` for a finite period (the last step recovers unconditionally)
    /// and 1 for `Δ_R = ∞` (Algorithm 1, line 4).
    pub fn parameter_dimension(&self) -> usize {
        match self.config.delta_r {
            Some(d) => (d as usize).saturating_sub(1).max(1),
            None => 1,
        }
    }

    /// Builds the threshold strategy encoded by a parameter vector in
    /// `[0, 1]^d` (the mapping used by Algorithm 1).
    ///
    /// # Errors
    ///
    /// Propagates threshold validation errors.
    pub fn strategy_from_parameters(&self, parameters: &[f64]) -> Result<ThresholdStrategy> {
        let clamped: Vec<f64> = parameters.iter().map(|p| p.clamp(0.0, 1.0)).collect();
        ThresholdStrategy::new(clamped, self.config.delta_r)
    }

    /// Simulates one episode under an arbitrary policy (a function of the
    /// belief and the number of steps since the last recovery).
    pub fn simulate_policy<R, P>(&self, policy: P, horizon: u32, rng: &mut R) -> EpisodeOutcome
    where
        R: Rng + ?Sized,
        P: Fn(f64, u32) -> NodeAction,
    {
        let p_attack = self.model.parameters().p_attack;
        let mut state = if rng.random::<f64>() < p_attack {
            NodeState::Compromised
        } else {
            NodeState::Healthy
        };
        let mut belief = p_attack;
        let mut steps_since_recovery = 0u32;
        let mut previous_action = NodeAction::Wait;
        let mut total_cost = 0.0;
        let mut recoveries = 0u32;
        let mut compromised_steps = 0u32;
        let mut steps = 0u32;

        for _ in 0..horizon {
            if state == NodeState::Crashed {
                break;
            }
            steps += 1;
            // Observe and update the belief (Eq. 4 / Appendix A).
            let alerts = self.model.observations().sample(state, rng);
            belief = self.model.belief_update(belief, previous_action, alerts);

            // Decide.
            let action = policy(belief, steps_since_recovery);
            total_cost += self.model.cost(state, action, self.config.eta);
            if state == NodeState::Compromised {
                compromised_steps += 1;
            }
            match action {
                NodeAction::Recover => {
                    recoveries += 1;
                    steps_since_recovery = 0;
                    belief = p_attack;
                }
                NodeAction::Wait => steps_since_recovery += 1,
            }
            // Transition.
            state = self.model.sample_transition(rng, state, action);
            previous_action = action;
        }
        EpisodeOutcome {
            average_cost: if steps == 0 {
                0.0
            } else {
                total_cost / steps as f64
            },
            recoveries,
            compromised_steps,
            steps,
        }
    }

    /// Simulates one episode under a threshold strategy.
    pub fn simulate_strategy<R: Rng + ?Sized>(
        &self,
        strategy: &ThresholdStrategy,
        horizon: u32,
        rng: &mut R,
    ) -> EpisodeOutcome {
        self.simulate_policy(|belief, steps| strategy.decide(belief, steps), horizon, rng)
    }

    /// Monte-Carlo estimate of the objective `J_i` (Eq. 5) of a strategy.
    pub fn evaluate_strategy<R: Rng + ?Sized>(
        &self,
        strategy: &ThresholdStrategy,
        episodes: usize,
        horizon: u32,
        rng: &mut R,
    ) -> f64 {
        if episodes == 0 {
            return 0.0;
        }
        (0..episodes)
            .map(|_| self.simulate_strategy(strategy, horizon, rng).average_cost)
            .sum::<f64>()
            / episodes as f64
    }

    /// Solves the problem with Algorithm 1 and the cross-entropy optimizer
    /// (the paper's default choice, Appendix E).
    ///
    /// # Errors
    ///
    /// Propagates optimizer failures.
    pub fn solve_with_cem(&self, config: &Alg1Config) -> Result<ThresholdStrategy> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let result = Alg1::new(config.clone()).solve(self, OptimizerKind::Cem, &mut rng)?;
        Ok(result.strategy)
    }
}

use rand::SeedableRng;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_model::NodeParameters;
    use crate::observation::ObservationModel;
    use rand::rngs::StdRng;

    fn problem(delta_r: Option<u32>) -> RecoveryProblem {
        let model =
            NodeModel::new(NodeParameters::default(), ObservationModel::paper_default()).unwrap();
        RecoveryProblem::new(model, RecoveryConfig { eta: 2.0, delta_r }).unwrap()
    }

    #[test]
    fn construction_validates_config() {
        let model =
            NodeModel::new(NodeParameters::default(), ObservationModel::paper_default()).unwrap();
        assert!(RecoveryProblem::new(
            model.clone(),
            RecoveryConfig {
                eta: 0.5,
                delta_r: None
            }
        )
        .is_err());
        assert!(RecoveryProblem::new(
            model,
            RecoveryConfig {
                eta: 2.0,
                delta_r: Some(0)
            }
        )
        .is_err());
    }

    #[test]
    fn threshold_strategy_validation_and_lookup() {
        assert!(ThresholdStrategy::new(vec![], None).is_err());
        assert!(ThresholdStrategy::new(vec![1.5], None).is_err());
        let s = ThresholdStrategy::new(vec![0.2, 0.5, 0.9], Some(4)).unwrap();
        assert_eq!(s.threshold_at(0), 0.2);
        assert_eq!(s.threshold_at(2), 0.9);
        assert_eq!(s.threshold_at(10), 0.9, "clamps to the last threshold");
        assert_eq!(s.delta_r(), Some(4));
        assert_eq!(s.thresholds().len(), 3);
    }

    #[test]
    fn decide_implements_threshold_rule_and_btr_constraint() {
        let s = ThresholdStrategy::new(vec![0.6], Some(5)).unwrap();
        assert_eq!(s.decide(0.5, 0), NodeAction::Wait);
        assert_eq!(s.decide(0.7, 0), NodeAction::Recover);
        // Step 4 (the 5th step since recovery) must recover regardless of belief.
        assert_eq!(s.decide(0.0, 4), NodeAction::Recover);
        // Without a BTR period, only the belief matters.
        let s = ThresholdStrategy::stationary(0.6).unwrap();
        assert_eq!(s.decide(0.0, 1000), NodeAction::Wait);
    }

    #[test]
    fn parameter_dimension_follows_algorithm1() {
        assert_eq!(problem(None).parameter_dimension(), 1);
        assert_eq!(problem(Some(5)).parameter_dimension(), 4);
        assert_eq!(problem(Some(1)).parameter_dimension(), 1);
        let s = problem(Some(5))
            .strategy_from_parameters(&[0.1, 0.2, 0.3, 0.4])
            .unwrap();
        assert_eq!(s.thresholds().len(), 4);
    }

    #[test]
    fn never_recovering_accumulates_compromise_cost() {
        let p = problem(None);
        let never = ThresholdStrategy::stationary(1.0).unwrap();
        let always = ThresholdStrategy::stationary(0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let never_cost = p.evaluate_strategy(&never, 30, 200, &mut rng);
        let always_cost = p.evaluate_strategy(&always, 30, 200, &mut rng);
        // Never recovering leaves the node compromised (cost ~ eta = 2);
        // always recovering pays ~1 per step. A sensible threshold beats both.
        assert!(never_cost > 1.0, "never-recover cost {never_cost}");
        assert!(
            (always_cost - 1.0).abs() < 0.2,
            "always-recover cost {always_cost}"
        );
        let tuned = ThresholdStrategy::stationary(0.75).unwrap();
        let tuned_cost = p.evaluate_strategy(&tuned, 60, 200, &mut rng);
        assert!(tuned_cost < never_cost);
        assert!(tuned_cost < always_cost);
    }

    #[test]
    fn btr_constraint_bounds_time_between_recoveries() {
        let p = problem(Some(10));
        // A threshold of 1.0 would never recover voluntarily; the BTR
        // constraint still forces a recovery every 10 steps.
        let strategy = p.strategy_from_parameters(&[1.0; 9]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = p.simulate_strategy(&strategy, 200, &mut rng);
        assert!(
            outcome.recoveries >= outcome.steps / 10,
            "outcome {outcome:?}"
        );
    }

    #[test]
    fn episode_ends_at_crash() {
        let params = NodeParameters {
            p_crash_healthy: 0.5,
            p_crash_compromised: 0.6,
            ..NodeParameters::default()
        };
        let model = NodeModel::new_unchecked(params, ObservationModel::paper_default());
        let p = RecoveryProblem::new(model, RecoveryConfig::default()).unwrap();
        let strategy = ThresholdStrategy::stationary(0.9).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = p.simulate_strategy(&strategy, 1000, &mut rng);
        assert!(
            outcome.steps < 1000,
            "with 50% crash probability the episode must end early"
        );
    }

    #[test]
    fn evaluate_strategy_zero_episodes_is_zero() {
        let p = problem(None);
        let s = ThresholdStrategy::stationary(0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(p.evaluate_strategy(&s, 0, 100, &mut rng), 0.0);
    }
}
