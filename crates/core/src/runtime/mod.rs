//! The unified scenario runtime shared by the core, emulation and bench
//! layers.
//!
//! The paper's evaluation (Table 7, Figs. 4–18) is a grid of closed-loop
//! runs — strategy × `N_1` × `Δ_R` × seeds — and before this module existed
//! the run loop was re-implemented in three places (the emulation, the
//! comparison harness and each figure of the experiment binary), always
//! sequentially. The runtime factors that shape out once:
//!
//! * [`Scenario`] — anything that can execute one closed-loop run for a
//!   seed and produce an output ([`FnScenario`] adapts a plain closure).
//! * [`Runner`] — executes a scenario over a seed grid, or a whole slice of
//!   scenarios over a seed grid ([`Runner::run_cells`]), either serially or
//!   across worker threads. Results are returned in input order, so a
//!   parallel run is byte-identical to a serial one.
//! * [`WorkerPool`] — the persistent process-wide thread pool behind every
//!   parallel path (the `Runner` batches *and* the fleet simulation
//!   engine's per-shard phases), so repeated sweeps stop paying per-batch
//!   thread-spawn cost.
//! * [`MetricSummary`] — the mean / 95%-CI aggregation of
//!   [`MetricReport`](crate::metrics::MetricReport)s that every table of the
//!   paper repeats.
//! * [`ScenarioRegistry`] — named scenario factories, so new workloads
//!   (bursty attackers, heterogeneous fleets, …) are declared as data
//!   instead of new run loops.
//! * [`StrategyKind`] / [`NodeStrategy`] — the shared construction of the
//!   per-node decision maker (TOLERANCE controller or baseline) and the
//!   system controller, previously duplicated by every caller.

mod pool;
mod registry;
mod runner;
mod strategy;
mod summary;

pub use pool::WorkerPool;
pub use registry::{AsMetricReport, MetricScenario, ScenarioRegistry, ScenarioRun};
pub use runner::{ExecutionMode, FnScenario, Runner, Scenario};
pub use strategy::{NodeStrategy, NodeStrategyConfig, StrategyKind};
pub use summary::MetricSummary;
