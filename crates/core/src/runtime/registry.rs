//! Named scenario factories: workloads declared as data.

use crate::error::{CoreError, Result};
use crate::metrics::MetricReport;
use crate::runtime::runner::{Runner, Scenario};
use crate::runtime::summary::MetricSummary;
use std::collections::BTreeMap;

/// Outputs that expose the paper's three evaluation metrics.
pub trait AsMetricReport {
    /// The metric report of this run.
    fn metric_report(&self) -> MetricReport;
}

impl AsMetricReport for MetricReport {
    fn metric_report(&self) -> MetricReport {
        *self
    }
}

/// Object-safe face of a [`Scenario`] whose output carries metrics — the
/// common currency of the [`ScenarioRegistry`].
///
/// Blanket-implemented for every `Scenario` with an [`AsMetricReport`]
/// output, so scenario types only implement [`Scenario`].
pub trait MetricScenario: Send + Sync {
    /// A short human-readable label.
    fn label(&self) -> String;

    /// Executes one run and returns its metric report.
    ///
    /// # Errors
    ///
    /// Propagates the underlying scenario failure.
    fn run_metrics(&self, seed: u64) -> Result<MetricReport>;
}

impl<S> MetricScenario for S
where
    S: Scenario + Send,
    S::Output: AsMetricReport,
{
    fn label(&self) -> String {
        Scenario::label(self)
    }

    fn run_metrics(&self, seed: u64) -> Result<MetricReport> {
        self.run(seed).map(|output| output.metric_report())
    }
}

/// The result of running one registered scenario over a seed grid.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRun {
    /// The scenario's label.
    pub label: String,
    /// One report per seed, in seed order.
    pub reports: Vec<MetricReport>,
    /// The cross-seed aggregate.
    pub summary: MetricSummary,
}

type ScenarioFactory = Box<dyn Fn() -> Result<Box<dyn MetricScenario>> + Send + Sync>;

struct Entry {
    factory: ScenarioFactory,
    /// Whether `(name, seed)` fully determines the output. Wall-clock
    /// scenarios (e.g. the live threaded service) are registered as
    /// non-deterministic and excluded from byte-identical-replay suites.
    deterministic: bool,
}

/// A registry of named scenario factories.
///
/// New workloads — different attacker profiles, IDS models, `Δ_R`
/// schedules, node-churn patterns — are registered as data (a name plus a
/// factory) instead of new run loops; any registered scenario can then be
/// executed over any seed grid through the shared [`Runner`].
#[derive(Default)]
pub struct ScenarioRegistry {
    factories: BTreeMap<String, Entry>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// Registers (or replaces) a deterministic scenario factory under
    /// `name` (`(name, seed)` fully determines the output).
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> Result<Box<dyn MetricScenario>> + Send + Sync + 'static,
    {
        self.factories.insert(
            name.into(),
            Entry {
                factory: Box::new(factory),
                deterministic: true,
            },
        );
    }

    /// Registers (or replaces) a **wall-clock** scenario factory: one whose
    /// output depends on real time and thread scheduling (e.g. the live
    /// threaded service), so replay suites must not expect byte-identical
    /// reruns.
    pub fn register_wall_clock<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn() -> Result<Box<dyn MetricScenario>> + Send + Sync + 'static,
    {
        self.factories.insert(
            name.into(),
            Entry {
                factory: Box::new(factory),
                deterministic: false,
            },
        );
    }

    /// Whether `name` is registered as deterministic (unknown names are
    /// `false`).
    pub fn is_deterministic(&self, name: &str) -> bool {
        self.factories
            .get(name)
            .map(|entry| entry.deterministic)
            .unwrap_or(false)
    }

    /// The registered names of deterministic scenarios, sorted (the set
    /// replay suites iterate).
    pub fn deterministic_names(&self) -> Vec<&str> {
        self.factories
            .iter()
            .filter(|(_, entry)| entry.deterministic)
            .map(|(name, _)| name.as_str())
            .collect()
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.factories.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Instantiates the scenario registered under `name`.
    ///
    /// # Errors
    ///
    /// Fails for unknown names, and propagates factory failures.
    pub fn build(&self, name: &str) -> Result<Box<dyn MetricScenario>> {
        match self.factories.get(name) {
            Some(entry) => (entry.factory)(),
            None => Err(CoreError::UnknownScenario(name.to_string())),
        }
    }

    /// Builds the scenario registered under `name` and executes it over the
    /// seed grid through `runner`.
    ///
    /// # Errors
    ///
    /// Fails for unknown names, empty seed grids, and propagates run
    /// failures.
    pub fn run(&self, name: &str, runner: &Runner, seeds: &[u64]) -> Result<ScenarioRun> {
        let scenario = self.build(name)?;
        let reports = runner.run_metric_seeds(scenario.as_ref(), seeds)?;
        let summary = MetricSummary::from_reports(&reports)?;
        Ok(ScenarioRun {
            label: scenario.label(),
            reports,
            summary,
        })
    }
}

impl Runner {
    /// Runs an object-safe [`MetricScenario`] for every seed (the dynamic
    /// counterpart of [`Runner::run_seeds`]).
    ///
    /// # Errors
    ///
    /// Returns the first (in seed order) error produced by the scenario.
    pub fn run_metric_seeds(
        &self,
        scenario: &dyn MetricScenario,
        seeds: &[u64],
    ) -> Result<Vec<MetricReport>> {
        let adapter = crate::runtime::runner::FnScenario::new(scenario.label(), |seed| {
            scenario.run_metrics(seed)
        });
        self.run_seeds(&adapter, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::runner::FnScenario;

    fn synthetic(name: &'static str, base: f64) -> impl Fn() -> Result<Box<dyn MetricScenario>> {
        move || {
            Ok(Box::new(FnScenario::new(name, move |seed| {
                Ok(MetricReport {
                    availability: base + seed as f64 / 1000.0,
                    time_to_recovery: 10.0,
                    recovery_frequency: 0.1,
                    steps: 100,
                })
            })) as Box<dyn MetricScenario>)
        }
    }

    #[test]
    fn registry_builds_and_runs_by_name() {
        let mut registry = ScenarioRegistry::new();
        registry.register("good", synthetic("good", 0.9));
        registry.register("bad", synthetic("bad", 0.1));
        assert_eq!(registry.names(), ["bad", "good"]);
        assert_eq!(registry.len(), 2);
        assert!(registry.contains("good"));
        assert!(!registry.contains("missing"));

        let run = registry
            .run("good", &Runner::parallel(), &[0, 1, 2, 3])
            .unwrap();
        assert_eq!(run.label, "good");
        assert_eq!(run.reports.len(), 4);
        assert_eq!(run.summary.samples, 4);
        assert!((run.summary.availability.0 - 0.9015).abs() < 1e-9);
    }

    #[test]
    fn unknown_names_error() {
        let registry = ScenarioRegistry::new();
        let error = match registry.build("nope") {
            Ok(_) => panic!("unknown scenario must not build"),
            Err(error) => error,
        };
        assert_eq!(error, CoreError::UnknownScenario("nope".into()));
        assert!(error.to_string().contains("nope"));
    }

    #[test]
    fn dynamic_and_static_runs_agree() {
        let mut registry = ScenarioRegistry::new();
        registry.register("s", synthetic("s", 0.5));
        let seeds: Vec<u64> = (0..16).collect();
        let dynamic = registry.run("s", &Runner::parallel(), &seeds).unwrap();
        let serial = registry.run("s", &Runner::serial(), &seeds).unwrap();
        assert_eq!(dynamic.reports, serial.reports);
        assert_eq!(dynamic.summary, serial.summary);
    }
}
