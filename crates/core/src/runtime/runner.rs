//! The [`Scenario`] abstraction and the parallel [`Runner`].

use crate::error::Result;
use crate::runtime::pool::WorkerPool;

/// One closed-loop experiment: everything needed to execute a run for a
/// given seed.
///
/// Implementations must be deterministic in the seed — `run(seed)` called
/// twice must produce the same output — which is what lets the [`Runner`]
/// guarantee that serial and parallel executions of the same grid are
/// byte-identical.
pub trait Scenario: Sync {
    /// The outcome of one run.
    type Output: Send;

    /// A short human-readable label used in reports and registries.
    fn label(&self) -> String;

    /// Executes one run.
    ///
    /// # Errors
    ///
    /// Propagates construction or model failures of the underlying system.
    fn run(&self, seed: u64) -> Result<Self::Output>;
}

/// Adapts a closure into a [`Scenario`], so ad-hoc experiments (e.g. the
/// per-figure seed sweeps of the bench harness) can use the [`Runner`]
/// without defining a type.
pub struct FnScenario<F> {
    label: String,
    run: F,
}

impl<F> FnScenario<F> {
    /// Wraps `run` under the given label.
    pub fn new<O>(label: impl Into<String>, run: F) -> Self
    where
        F: Fn(u64) -> Result<O> + Sync,
        O: Send,
    {
        FnScenario {
            label: label.into(),
            run,
        }
    }
}

impl<F, O> Scenario for FnScenario<F>
where
    F: Fn(u64) -> Result<O> + Sync,
    O: Send,
{
    type Output = O;

    fn label(&self) -> String {
        self.label.clone()
    }

    fn run(&self, seed: u64) -> Result<O> {
        (self.run)(seed)
    }
}

/// How a [`Runner`] schedules its jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// One job after the other on the calling thread.
    Serial,
    /// Jobs distributed over `threads` worker threads (`None` = one per
    /// available CPU).
    Parallel {
        /// Worker-thread count; `None` picks the available parallelism.
        threads: Option<usize>,
    },
}

/// Executes scenarios over seed/parameter grids.
///
/// The runner hands each (scenario, seed) pair to a worker as an independent
/// job and collects outputs **in input order**, so the execution mode never
/// changes the result — only the wall-clock time. This is what makes the
/// full Table-7 grid embarrassingly parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    mode: ExecutionMode,
}

impl Default for Runner {
    fn default() -> Self {
        Runner::parallel()
    }
}

impl Runner {
    /// A runner executing jobs serially on the calling thread.
    pub fn serial() -> Self {
        Runner {
            mode: ExecutionMode::Serial,
        }
    }

    /// A runner using one worker per available CPU.
    pub fn parallel() -> Self {
        Runner {
            mode: ExecutionMode::Parallel { threads: None },
        }
    }

    /// A runner using exactly `threads` workers (`0` behaves like `1`).
    pub fn with_threads(threads: usize) -> Self {
        Runner {
            mode: ExecutionMode::Parallel {
                threads: Some(threads),
            },
        }
    }

    /// The configured execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// The number of worker threads this runner will use for `jobs` jobs.
    pub fn effective_threads(&self, jobs: usize) -> usize {
        let workers = match self.mode {
            ExecutionMode::Serial => 1,
            ExecutionMode::Parallel { threads: Some(n) } => n.max(1),
            ExecutionMode::Parallel { threads: None } => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        };
        workers.min(jobs).max(1)
    }

    /// Runs one scenario for every seed and returns the outputs in seed
    /// order.
    ///
    /// # Errors
    ///
    /// Returns the first (in seed order) error produced by the scenario.
    pub fn run_seeds<S: Scenario>(&self, scenario: &S, seeds: &[u64]) -> Result<Vec<S::Output>> {
        self.execute(seeds.len(), |job| scenario.run(seeds[job]))
            .into_iter()
            .collect()
    }

    /// Runs every scenario (grid cell) for every seed, pooling all
    /// (cell, seed) pairs into one parallel job queue, and returns one
    /// output vector per cell (seed order within the cell).
    ///
    /// # Errors
    ///
    /// Returns the first (in grid order) error produced by any cell.
    pub fn run_cells<S: Scenario>(
        &self,
        cells: &[S],
        seeds: &[u64],
    ) -> Result<Vec<Vec<S::Output>>> {
        if seeds.is_empty() {
            return Ok(cells.iter().map(|_| Vec::new()).collect());
        }
        let per_cell = seeds.len();
        let outputs = self.execute(cells.len() * per_cell, |job| {
            cells[job / per_cell].run(seeds[job % per_cell])
        });
        let mut grouped: Vec<Vec<S::Output>> = Vec::with_capacity(cells.len());
        let mut current = Vec::with_capacity(per_cell);
        for output in outputs {
            current.push(output?);
            if current.len() == per_cell {
                grouped.push(std::mem::replace(
                    &mut current,
                    Vec::with_capacity(per_cell),
                ));
            }
        }
        Ok(grouped)
    }

    /// Executes `jobs` independent jobs and returns their results in job
    /// order. The scheduling (serial, or claimed across the persistent
    /// [`WorkerPool`]) is invisible in the result.
    fn execute<T, F>(&self, jobs: usize, job_fn: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.effective_threads(jobs);
        if workers <= 1 || jobs <= 1 {
            return (0..jobs).map(job_fn).collect();
        }
        WorkerPool::global().run_indexed(jobs, workers, job_fn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;

    fn squares() -> FnScenario<impl Fn(u64) -> Result<u64> + Sync> {
        FnScenario::new("squares", |seed| Ok(seed * seed))
    }

    #[test]
    fn outputs_preserve_seed_order() {
        let seeds: Vec<u64> = (0..100).collect();
        let outputs = Runner::parallel().run_seeds(&squares(), &seeds).unwrap();
        assert_eq!(outputs, seeds.iter().map(|s| s * s).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let seeds: Vec<u64> = (0..37).collect();
        let serial = Runner::serial().run_seeds(&squares(), &seeds).unwrap();
        for workers in [1, 2, 3, 8, 64] {
            let parallel = Runner::with_threads(workers)
                .run_seeds(&squares(), &seeds)
                .unwrap();
            assert_eq!(serial, parallel, "{workers} workers");
        }
    }

    #[test]
    fn cells_group_outputs_per_scenario() {
        let cells: Vec<_> = (0..4u64)
            .map(|offset| {
                FnScenario::new(
                    format!("cell-{offset}"),
                    move |seed| Ok(offset * 100 + seed),
                )
            })
            .collect();
        let grouped = Runner::parallel().run_cells(&cells, &[1, 2, 3]).unwrap();
        assert_eq!(grouped.len(), 4);
        assert_eq!(grouped[0], vec![1, 2, 3]);
        assert_eq!(grouped[1], vec![101, 102, 103]);
        assert_eq!(grouped[3], vec![301, 302, 303]);
    }

    #[test]
    fn first_error_in_seed_order_wins() {
        let scenario = FnScenario::new("failing", |seed| {
            if seed >= 5 {
                Err(CoreError::Solver(format!("seed {seed}")))
            } else {
                Ok(seed)
            }
        });
        let seeds: Vec<u64> = (0..20).collect();
        let error = Runner::parallel().run_seeds(&scenario, &seeds).unwrap_err();
        assert_eq!(error, CoreError::Solver("seed 5".into()));
    }

    #[test]
    fn empty_grids_are_fine() {
        let outputs = Runner::parallel().run_seeds(&squares(), &[]).unwrap();
        assert!(outputs.is_empty());
        let cells = vec![squares(), squares()];
        let grouped = Runner::parallel().run_cells(&cells, &[]).unwrap();
        assert_eq!(grouped, vec![Vec::<u64>::new(), Vec::new()]);
    }

    #[test]
    fn effective_threads_never_exceeds_jobs() {
        assert_eq!(Runner::with_threads(16).effective_threads(3), 3);
        assert_eq!(Runner::with_threads(0).effective_threads(10), 1);
        assert_eq!(Runner::serial().effective_threads(10), 1);
        assert!(Runner::parallel().effective_threads(1000) >= 1);
    }

    #[test]
    fn labels_flow_through_fn_scenarios() {
        assert_eq!(squares().label(), "squares");
    }
}
