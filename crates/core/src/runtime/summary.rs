//! Mean / confidence-interval aggregation of metric reports.

use crate::error::Result;
use crate::metrics::MetricReport;
use serde::{Deserialize, Serialize};
use tolerance_markov::stats::SummaryStatistics;

/// The cross-seed aggregate of the paper's three evaluation metrics: each
/// entry is `(mean, 95% CI half-width)` over the seeds of one grid cell,
/// exactly the numbers printed in Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Average availability `T(A)`.
    pub availability: (f64, f64),
    /// Average time-to-recovery `T(R)`.
    pub time_to_recovery: (f64, f64),
    /// Recovery frequency `F(R)`.
    pub recovery_frequency: (f64, f64),
    /// Number of aggregated runs (seeds).
    pub samples: usize,
}

impl MetricSummary {
    /// Aggregates the reports of one grid cell.
    ///
    /// # Errors
    ///
    /// Fails on an empty report slice.
    pub fn from_reports(reports: &[MetricReport]) -> Result<Self> {
        let summarize = |metric: fn(&MetricReport) -> f64| -> Result<(f64, f64)> {
            let samples: Vec<f64> = reports.iter().map(metric).collect();
            let stats = SummaryStatistics::from_samples(&samples)?;
            Ok((stats.mean, stats.ci95_half_width))
        };
        Ok(MetricSummary {
            availability: summarize(|r| r.availability)?,
            time_to_recovery: summarize(|r| r.time_to_recovery)?,
            recovery_frequency: summarize(|r| r.recovery_frequency)?,
            samples: reports.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(availability: f64, ttr: f64, freq: f64) -> MetricReport {
        MetricReport {
            availability,
            time_to_recovery: ttr,
            recovery_frequency: freq,
            steps: 100,
        }
    }

    #[test]
    fn means_and_cis_match_hand_computation() {
        let reports = [report(0.8, 10.0, 0.1), report(1.0, 20.0, 0.3)];
        let summary = MetricSummary::from_reports(&reports).unwrap();
        assert!((summary.availability.0 - 0.9).abs() < 1e-12);
        assert!((summary.time_to_recovery.0 - 15.0).abs() < 1e-12);
        assert!((summary.recovery_frequency.0 - 0.2).abs() < 1e-12);
        assert_eq!(summary.samples, 2);
        // Two samples, sd = 0.1414.., t_1 = 12.706.
        assert!(summary.availability.1 > 1.0, "tiny samples give wide CIs");
    }

    #[test]
    fn single_report_has_zero_ci() {
        let summary = MetricSummary::from_reports(&[report(0.5, 5.0, 0.2)]).unwrap();
        assert_eq!(summary.availability, (0.5, 0.0));
        assert_eq!(summary.samples, 1);
    }

    #[test]
    fn empty_reports_error() {
        assert!(MetricSummary::from_reports(&[]).is_err());
    }
}
