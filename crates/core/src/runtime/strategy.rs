//! Shared construction of the control strategies under evaluation.
//!
//! Every layer that runs the closed loop — the emulated testbed, the
//! comparison harness, the experiment binary — needs the same two factories:
//! "give me the per-node decision maker for this strategy" and "give me the
//! system controller for this strategy". Before the runtime existed each
//! caller re-implemented the `match` over [`StrategyKind`]; it lives here
//! once now.

use crate::baselines::{BaselineKind, RecoveryDecision, RecoveryStrategy};
use crate::controller::{NodeController, SystemController};
use crate::error::Result;
use crate::node_model::NodeModel;
use crate::recovery::ThresholdStrategy;
use crate::replication::{ReplicationConfig, ReplicationProblem};
use serde::{Deserialize, Serialize};

/// Which control strategy a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    /// The TOLERANCE architecture: belief-threshold recovery (Theorem 1)
    /// plus the Algorithm 2 replication strategy.
    Tolerance,
    /// One of the baseline strategies of Section VIII-B.
    Baseline(BaselineKind),
}

impl StrategyKind {
    /// Display name used in tables.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Tolerance => "tolerance",
            StrategyKind::Baseline(kind) => kind.name(),
        }
    }

    /// The four strategies compared in Table 7, in the paper's order.
    pub fn paper_set() -> [StrategyKind; 4] {
        [
            StrategyKind::Tolerance,
            StrategyKind::Baseline(BaselineKind::NoRecovery),
            StrategyKind::Baseline(BaselineKind::Periodic),
            StrategyKind::Baseline(BaselineKind::PeriodicAdaptive),
        ]
    }

    /// Builds the per-node decision maker for this strategy.
    ///
    /// * `model` — the node's POMDP model (built from its container's
    ///   observation model).
    /// * `expected_alerts` — the healthy-state mean alert count, used by the
    ///   PERIODIC-ADAPTIVE replication heuristic.
    /// * `config` — threshold, BTR period and period phase.
    ///
    /// # Errors
    ///
    /// Propagates invalid threshold configurations.
    pub fn build_node_strategy(
        self,
        model: NodeModel,
        expected_alerts: f64,
        config: &NodeStrategyConfig,
    ) -> Result<NodeStrategy> {
        match self {
            StrategyKind::Tolerance => {
                let thresholds = match config.delta_r {
                    Some(period) => {
                        vec![config.recovery_threshold; (period as usize).saturating_sub(1).max(1)]
                    }
                    None => vec![config.recovery_threshold],
                };
                let strategy = ThresholdStrategy::new(thresholds, config.delta_r)?;
                Ok(NodeStrategy::Tolerance(Box::new(NodeController::new(
                    model, strategy,
                ))))
            }
            StrategyKind::Baseline(kind) => Ok(NodeStrategy::Baseline(
                RecoveryStrategy::new(kind, config.delta_r, expected_alerts)
                    .with_initial_phase(config.initial_phase),
            )),
        }
    }

    /// Builds the system controller for this strategy: TOLERANCE solves the
    /// replication CMDP with Algorithm 2 up front (the training phase of
    /// Section X); baselines manage no replication factor and get `None`.
    ///
    /// # Errors
    ///
    /// Propagates model-construction and LP failures.
    pub fn build_system_controller(
        self,
        replication: ReplicationConfig,
    ) -> Result<Option<SystemController>> {
        match self {
            StrategyKind::Tolerance => {
                let problem = ReplicationProblem::new(replication)?;
                Ok(Some(SystemController::new(problem.solve()?)))
            }
            StrategyKind::Baseline(_) => Ok(None),
        }
    }
}

/// Node-level strategy parameters shared by all scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeStrategyConfig {
    /// Belief threshold of the TOLERANCE node controllers (Fig. 13b reports
    /// 0.76).
    pub recovery_threshold: f64,
    /// BTR period `Δ_R` (`None` = ∞).
    pub delta_r: Option<u32>,
    /// Offset within the recovery period, staggering periodic baselines
    /// across nodes.
    pub initial_phase: u32,
}

/// The per-node decision maker of a scenario: either a TOLERANCE belief
/// controller or a baseline recovery schedule, behind one uniform API.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeStrategy {
    /// The belief-threshold node controller (Theorem 1). Boxed: the
    /// controller carries its incremental belief tracker, which dwarfs the
    /// baseline variant.
    Tolerance(Box<NodeController>),
    /// A baseline recovery schedule (Section VIII-B).
    Baseline(RecoveryStrategy),
}

impl NodeStrategy {
    /// Whether this is the TOLERANCE belief controller.
    pub fn is_controller(&self) -> bool {
        matches!(self, NodeStrategy::Tolerance(_))
    }

    /// Processes one time-step: consumes the weighted alert count and
    /// returns the recovery decision.
    pub fn observe_and_decide(&mut self, weighted_alerts: u64) -> RecoveryDecision {
        match self {
            NodeStrategy::Tolerance(controller) => {
                RecoveryDecision::from(controller.observe_and_decide(weighted_alerts))
            }
            NodeStrategy::Baseline(baseline) => baseline.decide(),
        }
    }

    /// The compromise belief, if this strategy tracks one.
    pub fn belief(&self) -> Option<f64> {
        match self {
            NodeStrategy::Tolerance(controller) => Some(controller.belief()),
            NodeStrategy::Baseline(_) => None,
        }
    }

    /// The belief reported to the system controller; baselines report the
    /// prior so eviction handling works uniformly.
    pub fn reported_belief(&self, prior: f64) -> f64 {
        self.belief().unwrap_or(prior)
    }

    /// Whether the strategy's replication heuristic wants an extra node
    /// given this step's alert count (PERIODIC-ADAPTIVE only).
    pub fn wants_additional_node(&self, observed_alerts: f64) -> bool {
        match self {
            NodeStrategy::Tolerance(_) => false,
            NodeStrategy::Baseline(baseline) => baseline.wants_additional_node(observed_alerts),
        }
    }

    /// Resets the strategy after an externally triggered recovery.
    pub fn notify_recovered(&mut self) {
        match self {
            NodeStrategy::Tolerance(controller) => controller.notify_recovered(),
            NodeStrategy::Baseline(baseline) => baseline.notify_recovered(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_model::NodeParameters;
    use crate::observation::ObservationModel;

    fn model() -> NodeModel {
        NodeModel::new(NodeParameters::default(), ObservationModel::paper_default()).unwrap()
    }

    fn config(delta_r: Option<u32>) -> NodeStrategyConfig {
        NodeStrategyConfig {
            recovery_threshold: 0.76,
            delta_r,
            initial_phase: 0,
        }
    }

    #[test]
    fn paper_set_matches_table7() {
        let names: Vec<&str> = StrategyKind::paper_set().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            ["tolerance", "no-recovery", "periodic", "periodic-adaptive"]
        );
    }

    #[test]
    fn tolerance_builds_a_belief_controller() {
        let strategy = StrategyKind::Tolerance
            .build_node_strategy(model(), 1.0, &config(None))
            .unwrap();
        assert!(strategy.is_controller());
        assert!(strategy.belief().is_some());
        assert!(!strategy.wants_additional_node(100.0));
    }

    #[test]
    fn tolerance_recovers_on_sustained_alerts_and_baseline_on_schedule() {
        let mut tolerance = StrategyKind::Tolerance
            .build_node_strategy(model(), 1.0, &config(None))
            .unwrap();
        let recovered =
            (0..20).any(|_| tolerance.observe_and_decide(10) == RecoveryDecision::Recover);
        assert!(
            recovered,
            "sustained max alerts must trigger the controller"
        );

        let mut periodic = StrategyKind::Baseline(BaselineKind::Periodic)
            .build_node_strategy(model(), 1.0, &config(Some(5)))
            .unwrap();
        let decisions: Vec<RecoveryDecision> =
            (0..10).map(|_| periodic.observe_and_decide(10)).collect();
        assert_eq!(
            decisions
                .iter()
                .filter(|d| **d == RecoveryDecision::Recover)
                .count(),
            2
        );
        assert_eq!(periodic.belief(), None);
        assert_eq!(periodic.reported_belief(0.1), 0.1);
    }

    #[test]
    fn adaptive_baseline_wants_nodes_on_bursts() {
        let adaptive = StrategyKind::Baseline(BaselineKind::PeriodicAdaptive)
            .build_node_strategy(model(), 2.0, &config(Some(15)))
            .unwrap();
        assert!(!adaptive.wants_additional_node(3.0));
        assert!(adaptive.wants_additional_node(4.0));
    }

    #[test]
    fn system_controller_only_for_tolerance() {
        let replication = ReplicationConfig {
            s_max: 10,
            fault_threshold: 2,
            availability_target: 0.9,
            node_survival_probability: 0.95,
        };
        assert!(StrategyKind::Tolerance
            .build_system_controller(replication)
            .unwrap()
            .is_some());
        assert!(StrategyKind::Baseline(BaselineKind::Periodic)
            .build_system_controller(replication)
            .unwrap()
            .is_none());
    }

    #[test]
    fn btr_thresholds_span_the_period() {
        let mut strategy = StrategyKind::Tolerance
            .build_node_strategy(model(), 1.0, &config(Some(5)))
            .unwrap();
        // With quiet observations the BTR constraint forces a recovery at
        // the period boundary.
        let recoveries = (0..25)
            .filter(|_| strategy.observe_and_decide(0) == RecoveryDecision::Recover)
            .count();
        assert!(
            recoveries >= 4,
            "BTR must force ~1 recovery per 5 steps, got {recoveries}"
        );
    }

    #[test]
    fn notify_recovered_resets_both_variants() {
        let mut tolerance = StrategyKind::Tolerance
            .build_node_strategy(model(), 1.0, &config(None))
            .unwrap();
        for _ in 0..5 {
            tolerance.observe_and_decide(10);
        }
        tolerance.notify_recovered();
        assert!((tolerance.belief().unwrap() - 0.1).abs() < 1e-9);

        let mut periodic = StrategyKind::Baseline(BaselineKind::Periodic)
            .build_node_strategy(model(), 1.0, &config(Some(3)))
            .unwrap();
        periodic.observe_and_decide(0);
        periodic.notify_recovered();
        assert_eq!(periodic.observe_and_decide(0), RecoveryDecision::Wait);
        assert_eq!(periodic.observe_and_decide(0), RecoveryDecision::Wait);
        assert_eq!(periodic.observe_and_decide(0), RecoveryDecision::Recover);
    }
}
