//! The persistent worker pool behind every parallel execution path.
//!
//! Before this module existed, each [`Runner`](crate::runtime::Runner)
//! batch spawned fresh OS threads through `std::thread::scope` — fine for
//! one Table-7 grid, wasteful for the fleet simulation engine, which
//! synchronizes its shards at a barrier several times per simulated step.
//! The pool amortizes thread creation across the whole process: workers are
//! spawned once (sized to the available parallelism) and batches of jobs
//! are pushed to them for the duration of one call.
//!
//! Scheduling model — **caller helps**:
//!
//! * [`WorkerPool::run_batch`] claims job indices from one shared atomic
//!   counter. The *calling* thread drains the batch alongside up to
//!   `workers - 1` pool helpers, so a batch always completes even when
//!   every pool worker is busy (nested batches — the fleet engine running
//!   inside a `Runner`-parallel sweep — can therefore never deadlock).
//! * The call returns only after every job has finished (a latch counts
//!   completions), which is what makes the lifetime-erasure below sound:
//!   borrowed data outlives every job that touches it.
//! * A panicking job is caught on the worker, recorded, and re-raised on
//!   the calling thread after the batch drains — a panic never kills a
//!   pool worker.
//!
//! Determinism: the pool never reorders *results*. [`run_indexed`] writes
//! each job's output into its own slot and [`for_each_mut`] hands each job
//! exclusive access to its own element, so which thread ran which job is
//! invisible — the property the simnet determinism suite pins across
//! 1/2/4/8 workers.
//!
//! [`run_indexed`]: WorkerPool::run_indexed
//! [`for_each_mut`]: WorkerPool::for_each_mut

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One batch of indexed jobs, shared between the caller and its helpers.
struct Batch {
    /// Next unclaimed job index.
    next: AtomicUsize,
    /// Total jobs in the batch.
    jobs: usize,
    /// The job body. The `'static` is a lie told by `run_batch`, which
    /// guarantees the reference outlives every dereference: jobs only call
    /// it for indices `< jobs`, and `run_batch` blocks until all such jobs
    /// completed.
    run: &'static (dyn Fn(usize) + Sync),
    progress: Mutex<BatchProgress>,
    finished: Condvar,
}

struct BatchProgress {
    completed: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Batch {
    /// Claims and runs jobs until the batch is exhausted. Safe to call on a
    /// ticket that outlived its `run_batch`: an exhausted counter means the
    /// (possibly dangling) job body is never touched.
    fn work(&self) {
        loop {
            let job = self.next.fetch_add(1, Ordering::Relaxed);
            if job >= self.jobs {
                break;
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| (self.run)(job)));
            let mut progress = self.progress.lock().expect("batch lock");
            if let Err(payload) = outcome {
                progress.panic.get_or_insert(payload);
            }
            progress.completed += 1;
            if progress.completed == self.jobs {
                self.finished.notify_all();
            }
        }
    }
}

struct PoolShared {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    available: Condvar,
}

/// A persistent pool of worker threads executing indexed job batches.
///
/// Use [`WorkerPool::global`] — one pool per process, sized to the host's
/// available parallelism, reused by the [`Runner`](crate::runtime::Runner)
/// and the fleet simulation engine across every scenario repetition.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl WorkerPool {
    /// Builds a pool with `workers` persistent threads (`0` means every
    /// batch runs entirely on its calling thread).
    fn with_workers(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        let mut spawned = 0;
        for index in 0..workers {
            let shared = Arc::clone(&shared);
            let builder = std::thread::Builder::new().name(format!("tolerance-pool-{index}"));
            if builder
                .spawn(move || loop {
                    let ticket = {
                        let mut queue = shared.queue.lock().expect("pool queue lock");
                        loop {
                            if let Some(ticket) = queue.pop_front() {
                                break ticket;
                            }
                            queue = shared.available.wait(queue).expect("pool queue wait");
                        }
                    };
                    ticket.work();
                })
                .is_ok()
            {
                spawned += 1;
            }
        }
        WorkerPool {
            shared,
            workers: spawned,
        }
    }

    /// The process-wide pool, created on first use with one worker per
    /// available hardware thread.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1);
            WorkerPool::with_workers(workers)
        })
    }

    /// Number of persistent worker threads (the caller always adds one more
    /// execution context on top).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `jobs` indexed jobs across the calling thread plus up to
    /// `workers - 1` pool helpers, returning once every job completed.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic any job produced (after the whole batch
    /// drained).
    pub fn run_batch(&self, jobs: usize, workers: usize, run: &(dyn Fn(usize) + Sync)) {
        if jobs == 0 {
            return;
        }
        // SAFETY: the erased reference is only dereferenced by jobs with an
        // index `< jobs`, and this function does not return before all of
        // them completed (the latch below). Late helpers that pop the
        // ticket afterwards observe an exhausted counter and never touch
        // `run`.
        let run: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(run) };
        let batch = Arc::new(Batch {
            next: AtomicUsize::new(0),
            jobs,
            run,
            progress: Mutex::new(BatchProgress {
                completed: 0,
                panic: None,
            }),
            finished: Condvar::new(),
        });
        let helpers = workers.min(jobs).saturating_sub(1).min(self.workers);
        if helpers > 0 {
            let mut queue = self.shared.queue.lock().expect("pool queue lock");
            for _ in 0..helpers {
                queue.push_back(Arc::clone(&batch));
            }
            drop(queue);
            if helpers == 1 {
                self.shared.available.notify_one();
            } else {
                self.shared.available.notify_all();
            }
        }
        batch.work();
        let mut progress = batch.progress.lock().expect("batch lock");
        while progress.completed < jobs {
            progress = batch.finished.wait(progress).expect("batch wait");
        }
        if let Some(payload) = progress.panic.take() {
            drop(progress);
            resume_unwind(payload);
        }
    }

    /// Runs `jobs` jobs and returns their outputs **in job order**,
    /// regardless of which thread ran which job.
    pub fn run_indexed<T, F>(&self, jobs: usize, workers: usize, job_fn: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut slots: Vec<Option<T>> = Vec::with_capacity(jobs);
        slots.resize_with(jobs, || None);
        let base = SyncPtr(slots.as_mut_ptr());
        self.run_batch(jobs, workers, &|job| {
            let output = job_fn(job);
            // SAFETY: each job index writes exactly its own slot, and the
            // completion latch orders every write before the caller reads.
            unsafe { *base.slot(job) = Some(output) };
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every job index is executed exactly once"))
            .collect()
    }

    /// Runs `f(index, &mut items[index])` for every element, each job
    /// holding exclusive access to its own element.
    pub fn for_each_mut<T, F>(&self, items: &mut [T], workers: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let base = SyncPtr(items.as_mut_ptr());
        self.run_batch(items.len(), workers, &|job| {
            // SAFETY: distinct job indices address distinct elements, so no
            // two threads alias; the latch orders all accesses before the
            // borrow of `items` ends.
            f(job, unsafe { &mut *base.slot(job) });
        });
    }
}

/// A raw pointer whose disjoint-index access discipline is enforced by the
/// batch contract above.
struct SyncPtr<T>(*mut T);

impl<T> SyncPtr<T> {
    /// The element pointer at `index`; going through a method (rather than
    /// the field) makes closures capture the `Sync` wrapper, not the raw
    /// pointer.
    fn slot(&self, index: usize) -> *mut T {
        unsafe { self.0.add(index) }
    }
}

// SAFETY: every job touches only the element at its own index and the batch
// latch provides the happens-before edge to the caller.
unsafe impl<T: Send> Sync for SyncPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn outputs_are_in_job_order() {
        let outputs = WorkerPool::global().run_indexed(100, 8, |job| job * 3);
        assert_eq!(outputs, (0..100).map(|j| j * 3).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_touches_every_element_exactly_once() {
        let mut items: Vec<u64> = vec![0; 64];
        WorkerPool::global().for_each_mut(&mut items, 4, |index, item| {
            *item += index as u64 + 1;
        });
        assert_eq!(items, (0..64).map(|i| i as u64 + 1).collect::<Vec<u64>>());
    }

    #[test]
    fn single_worker_batches_run_on_the_caller() {
        let caller = std::thread::current().id();
        let ran_elsewhere = AtomicU64::new(0);
        WorkerPool::global().run_batch(16, 1, &|_| {
            if std::thread::current().id() != caller {
                ran_elsewhere.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(ran_elsewhere.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn nested_batches_complete() {
        // The fleet engine submits batches from inside Runner jobs that are
        // themselves pool jobs; caller-helps must drain both levels.
        let total = AtomicU64::new(0);
        WorkerPool::global().run_batch(4, 4, &|_| {
            let inner = WorkerPool::global().run_indexed(8, 4, |job| job as u64);
            total.fetch_add(inner.iter().sum::<u64>(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 28);
    }

    #[test]
    fn panics_propagate_after_the_batch_drains() {
        let outcome = std::panic::catch_unwind(|| {
            WorkerPool::global().run_batch(8, 4, &|job| {
                assert!(job != 5, "scripted failure");
            });
        });
        assert!(outcome.is_err());
        // The pool survives the panic and keeps serving batches.
        let outputs = WorkerPool::global().run_indexed(4, 4, |job| job + 1);
        assert_eq!(outputs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_batches_return_immediately() {
        WorkerPool::global().run_batch(0, 8, &|_| unreachable!("no jobs"));
        let outputs: Vec<u64> = WorkerPool::global().run_indexed(0, 8, |_| 0);
        assert!(outputs.is_empty());
    }
}
