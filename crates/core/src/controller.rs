//! The runtime controllers of the TOLERANCE architecture (Fig. 1 / Fig. 2).
//!
//! * [`NodeController`] — runs in each node's privileged domain. Every
//!   time-step it receives the weighted IDS-alert count of its replica,
//!   updates the compromise belief (Eq. 4) and decides whether to recover the
//!   replica (the threshold rule of Theorem 1 with the BTR constraint).
//! * [`SystemController`] — runs on the crash-tolerant substrate. Every
//!   time-step it collects the node beliefs, estimates the number of healthy
//!   nodes (Eq. 8), evicts nodes that failed to report (crashed) and decides
//!   whether to add a node (the threshold-mixture rule of Theorem 2 computed
//!   by Algorithm 2).

use crate::node_model::{NodeAction, NodeModel};
use crate::recovery::ThresholdStrategy;
use crate::replication::{ReplicationProblem, ReplicationStrategy};
use rand::Rng;
use tolerance_pomdp::{Belief, IncrementalBelief};

/// The per-node controller of the local control level.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeController {
    model: NodeModel,
    strategy: ThresholdStrategy,
    belief: f64,
    steps_since_recovery: u32,
    previous_action: NodeAction,
    recoveries: u64,
    steps: u64,
    /// The belief at the moment of the last recovery request, kept so a
    /// deferred actuation can restore the controller's urgency (see
    /// [`NodeController::notify_deferred`]).
    last_request_belief: f64,
    /// Lazily built incremental tracker over the operational POMDP
    /// ([`NodeModel::to_pomdp`]) for event-stream observations: one
    /// `O(|S|²)` prediction per time-step, one `O(|S|)` correction per IDS
    /// event (see [`NodeController::observe_events`]).
    event_tracker: Option<IncrementalBelief>,
}

impl NodeController {
    /// Creates a controller with the initial belief `b_1 = p_A` (Problem 1's
    /// initial state distribution).
    pub fn new(model: NodeModel, strategy: ThresholdStrategy) -> Self {
        let initial_belief = model.parameters().p_attack;
        NodeController {
            model,
            strategy,
            belief: initial_belief,
            steps_since_recovery: 0,
            previous_action: NodeAction::Wait,
            recoveries: 0,
            steps: 0,
            last_request_belief: initial_belief,
            event_tracker: None,
        }
    }

    /// The current compromise belief `b_t` (Eq. 4).
    pub fn belief(&self) -> f64 {
        self.belief
    }

    /// The belief the controller's most recent recovery request was decided
    /// on (the pre-reset value — [`NodeController::belief`] already reads
    /// the post-recovery prior by the time the caller sees the `Recover`
    /// action).
    pub fn last_request_belief(&self) -> f64 {
        self.last_request_belief
    }

    /// Steps since the controller last recovered its replica.
    pub fn steps_since_recovery(&self) -> u32 {
        self.steps_since_recovery
    }

    /// Total recoveries so far.
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// Total observed time-steps.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The recovery threshold currently in force.
    pub fn current_threshold(&self) -> f64 {
        self.strategy.threshold_at(self.steps_since_recovery)
    }

    /// Processes one time-step: updates the belief from the weighted alert
    /// count and returns the action the node should execute.
    pub fn observe_and_decide(&mut self, weighted_alerts: u64) -> NodeAction {
        self.steps += 1;
        self.belief = self
            .model
            .belief_update(self.belief, self.previous_action, weighted_alerts);
        self.decide_from_belief()
    }

    /// Processes one time-step driven by an *event stream*: a batch of
    /// weighted IDS alert events observed since the last control decision
    /// (the online observation channel of the live control plane). The
    /// belief folds the batch through the incremental tracker of
    /// [`tolerance_pomdp::IncrementalBelief`] — one transition prediction
    /// for the step, then an `O(|S|)` likelihood correction per event —
    /// instead of re-running the full update for every alert.
    ///
    /// An empty batch is a quiet step and equivalent to prediction only.
    pub fn observe_events(&mut self, events: &[u64]) -> NodeAction {
        self.steps += 1;
        let support = self.model.observations().support_size();
        if self.event_tracker.is_none() {
            // eta/discount only shape the cost model, which the belief
            // recursion never reads; any valid pair works here.
            self.event_tracker = self
                .model
                .to_pomdp(1.0, 0.9)
                .ok()
                .and_then(|pomdp| IncrementalBelief::new(&pomdp, Belief::uniform(2)).ok());
        }
        match self.event_tracker.as_mut() {
            Some(tracker) => {
                let prior =
                    Belief::new(vec![1.0 - self.belief, self.belief]).unwrap_or(Belief::uniform(2));
                let _ = tracker.reset(prior);
                let action = match self.previous_action {
                    NodeAction::Wait => 0,
                    NodeAction::Recover => 1,
                };
                let _ = tracker.predict(action);
                for &event in events {
                    // An impossible event (zero likelihood everywhere) is
                    // skipped; assumption D of Theorem 1 rules it out for
                    // validated models.
                    let _ = tracker.correct((event as usize).min(support.saturating_sub(1)));
                }
                self.belief = tracker.probability(1);
            }
            None => {
                // Degenerate models without a POMDP form: treat each event
                // as its own micro-step of the scalar recursion.
                let mut action = self.previous_action;
                for &event in events {
                    self.belief = self.model.belief_update(self.belief, action, event);
                    action = NodeAction::Wait;
                }
            }
        }
        self.decide_from_belief()
    }

    /// Applies the threshold decision to the current belief and performs
    /// the post-decision bookkeeping shared by both observation paths.
    fn decide_from_belief(&mut self) -> NodeAction {
        let action = self.strategy.decide(self.belief, self.steps_since_recovery);
        match action {
            NodeAction::Recover => {
                self.recoveries += 1;
                self.steps_since_recovery = 0;
                self.last_request_belief = self.belief;
                self.belief = self.model.parameters().p_attack;
            }
            NodeAction::Wait => self.steps_since_recovery += 1,
        }
        self.previous_action = action;
        action
    }

    /// Re-arms the controller after its requested recovery was **deferred**
    /// (lost the k-parallel-recovery truncation, or the actuator refused —
    /// e.g. no state donor existed): the deciding belief is restored and
    /// the action history rolled back to `Wait`, so the threshold rule
    /// fires again on the very next observation instead of waiting for the
    /// belief to re-climb from the post-recovery prior (or for Δ_R to
    /// elapse).
    pub fn notify_deferred(&mut self) {
        self.recoveries = self.recoveries.saturating_sub(1);
        self.belief = self.last_request_belief;
        self.previous_action = NodeAction::Wait;
        if let Some(delta_r) = self.strategy.delta_r() {
            self.steps_since_recovery = self.steps_since_recovery.max(delta_r);
        }
    }

    /// Resets the controller after an externally triggered recovery (e.g.
    /// the replica was replaced as part of a reconfiguration).
    pub fn notify_recovered(&mut self) {
        self.steps_since_recovery = 0;
        self.belief = self.model.parameters().p_attack;
        self.previous_action = NodeAction::Recover;
    }
}

/// The decision of the system controller for one time-step.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SystemDecision {
    /// Whether a new node should be added this step.
    pub add_node: bool,
    /// Indices (into the reported belief vector) of nodes considered crashed
    /// because they failed to report; they are evicted from the system.
    pub evict: Vec<usize>,
    /// The expected number of healthy nodes used as the CMDP state.
    pub estimated_healthy: usize,
}

/// The global controller of the replication factor.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemController {
    strategy: ReplicationStrategy,
    additions: u64,
    evictions: u64,
}

impl SystemController {
    /// Creates a system controller from a replication strategy computed by
    /// Algorithm 2.
    pub fn new(strategy: ReplicationStrategy) -> Self {
        SystemController {
            strategy,
            additions: 0,
            evictions: 0,
        }
    }

    /// Total nodes added so far.
    pub fn additions(&self) -> u64 {
        self.additions
    }

    /// Total nodes evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The replication strategy in force.
    pub fn strategy(&self) -> &ReplicationStrategy {
        &self.strategy
    }

    /// Processes one time-step given the reported beliefs. A report of
    /// `None` means the node failed to send its belief and is treated as
    /// crashed (Section V-B).
    pub fn decide<R: Rng + ?Sized>(
        &mut self,
        reports: &[Option<f64>],
        rng: &mut R,
    ) -> SystemDecision {
        let evict: Vec<usize> = reports
            .iter()
            .enumerate()
            .filter(|(_, report)| report.is_none())
            .map(|(index, _)| index)
            .collect();
        self.evictions += evict.len() as u64;
        let beliefs: Vec<f64> = reports.iter().filter_map(|r| *r).collect();
        let estimated_healthy = ReplicationProblem::expected_healthy(&beliefs);
        let add_node = self.strategy.decide(estimated_healthy, rng);
        if add_node {
            self.additions += 1;
        }
        SystemDecision {
            add_node,
            evict,
            estimated_healthy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node_model::{NodeParameters, NodeState};
    use crate::observation::ObservationModel;
    use crate::replication::ReplicationConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn node_controller(threshold: f64) -> NodeController {
        let model =
            NodeModel::new(NodeParameters::default(), ObservationModel::paper_default()).unwrap();
        NodeController::new(model, ThresholdStrategy::stationary(threshold).unwrap())
    }

    #[test]
    fn controller_recovers_under_sustained_alerts_and_not_when_quiet() {
        let mut controller = node_controller(0.8);
        // Quiet observations: no recovery.
        for _ in 0..20 {
            assert_eq!(controller.observe_and_decide(0), NodeAction::Wait);
        }
        assert_eq!(controller.recoveries(), 0);
        assert!(controller.belief() < 0.5);

        // Heavy alerts: the belief crosses the threshold and triggers recovery.
        let mut recovered = false;
        for _ in 0..10 {
            if controller.observe_and_decide(10) == NodeAction::Recover {
                recovered = true;
                break;
            }
        }
        assert!(
            recovered,
            "sustained max-priority alerts must trigger recovery"
        );
        assert_eq!(controller.recoveries(), 1);
        assert_eq!(controller.steps_since_recovery(), 0);
        // The belief resets to the attack prior after recovery.
        assert!((controller.belief() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn btr_strategy_forces_periodic_recovery_via_controller() {
        let model =
            NodeModel::new(NodeParameters::default(), ObservationModel::paper_default()).unwrap();
        let strategy = ThresholdStrategy::new(vec![1.0; 4], Some(5)).unwrap();
        let mut controller = NodeController::new(model, strategy);
        let mut recoveries = 0;
        for _ in 0..25 {
            if controller.observe_and_decide(0) == NodeAction::Recover {
                recoveries += 1;
            }
        }
        assert!(
            recoveries >= 4,
            "BTR must force ~1 recovery per 5 steps, got {recoveries}"
        );
        assert_eq!(controller.steps(), 25);
    }

    #[test]
    fn event_stream_observation_matches_the_scalar_recursion() {
        // One event per step must agree with the per-step scalar update up
        // to the conditioning difference between the two forms (the scalar
        // recursion conditions the predicted vector on not crashing, the
        // operational POMDP conditions each transition row — the faithful
        // approximation documented on `NodeModel::to_pomdp`). A dense alert
        // burst must push the belief over the threshold just like
        // sustained samples.
        let mut scalar = node_controller(0.99);
        let mut streamed = node_controller(0.99);
        for alerts in [0u64, 3, 7, 1, 10, 10] {
            scalar.observe_and_decide(alerts);
            streamed.observe_events(&[alerts]);
            assert!(
                (scalar.belief() - streamed.belief()).abs() < 1e-3,
                "scalar {} vs streamed {}",
                scalar.belief(),
                streamed.belief()
            );
        }

        let mut controller = node_controller(0.8);
        // A quiet stream (no events) keeps the belief near the prior drift.
        controller.observe_events(&[]);
        assert!(controller.belief() < 0.5);
        // One step with a burst of max-priority events recovers immediately.
        let action = controller.observe_events(&[10, 10, 10, 10, 10]);
        assert_eq!(action, NodeAction::Recover);
        assert_eq!(controller.recoveries(), 1);
        assert_eq!(controller.steps(), 2);
    }

    #[test]
    fn notify_recovered_resets_state() {
        let mut controller = node_controller(0.9);
        for _ in 0..5 {
            controller.observe_and_decide(10);
        }
        controller.notify_recovered();
        assert_eq!(controller.steps_since_recovery(), 0);
        assert!((controller.belief() - 0.1).abs() < 1e-9);
        assert!(controller.current_threshold() > 0.0);
    }

    #[test]
    fn system_controller_adds_nodes_when_few_healthy_and_evicts_non_reporters() {
        let strategy = ReplicationProblem::new(ReplicationConfig {
            s_max: 10,
            fault_threshold: 2,
            availability_target: 0.95,
            node_survival_probability: 0.85,
        })
        .unwrap()
        .solve()
        .unwrap();
        let mut controller = SystemController::new(strategy);
        let mut rng = StdRng::seed_from_u64(1);

        // All nodes heavily suspected compromised, one not reporting.
        let reports = vec![Some(0.9), Some(0.95), None, Some(0.85)];
        let decision = controller.decide(&reports, &mut rng);
        assert_eq!(decision.evict, vec![2]);
        assert_eq!(decision.estimated_healthy, 0);
        assert!(
            decision.add_node,
            "with zero healthy nodes the controller must add"
        );
        assert_eq!(controller.evictions(), 1);
        assert!(controller.additions() >= 1);

        // A full healthy system does not grow further.
        let reports: Vec<Option<f64>> = vec![Some(0.01); 10];
        let decision = controller.decide(&reports, &mut rng);
        assert_eq!(decision.estimated_healthy, 9);
        assert!(
            !decision.add_node,
            "a saturated healthy system should not add nodes"
        );
        assert!(controller.strategy().add_probability(9) < 0.5);
    }

    #[test]
    fn observation_sampling_drives_controller_like_a_real_node() {
        // End-to-end sanity: a compromised node produces alert samples that
        // eventually push the controller to recover.
        let model =
            NodeModel::new(NodeParameters::default(), ObservationModel::paper_default()).unwrap();
        let mut controller =
            NodeController::new(model.clone(), ThresholdStrategy::stationary(0.75).unwrap());
        let mut rng = StdRng::seed_from_u64(2);
        let mut recovered_within = None;
        for t in 0..50 {
            let alerts = model
                .observations()
                .sample(NodeState::Compromised, &mut rng);
            if controller.observe_and_decide(alerts) == NodeAction::Recover {
                recovered_within = Some(t);
                break;
            }
        }
        assert!(
            recovered_within.is_some(),
            "controller never recovered a compromised node"
        );
        assert!(
            recovered_within.unwrap() < 20,
            "recovery took too long: {recovered_within:?}"
        );
    }
}
