//! The background client population of the emulated testbed.
//!
//! To make the IDS alert streams realistic, every replica in the paper's
//! testbed also serves a population of background clients that arrive
//! according to a Poisson process with rate `λ = 20` and stay for an
//! exponentially distributed duration with mean `μ = 4` time-steps
//! (Section VIII-A). The number of active background sessions modulates the
//! baseline alert noise of a node.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tolerance_markov::dist::{DiscreteDistribution, Exponential, Poisson};

/// A Poisson-arrival / exponential-holding background client population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientPopulation {
    arrival_rate: f64,
    mean_session_length: f64,
    /// Remaining session lengths (in time-steps) of active clients.
    active_sessions: Vec<f64>,
}

impl ClientPopulation {
    /// Creates a population with the paper's parameters (`λ = 20`, `μ = 4`).
    pub fn paper_default() -> Self {
        ClientPopulation::new(20.0, 4.0)
    }

    /// Creates a population with the given arrival rate and mean session
    /// length (both per time-step).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive.
    pub fn new(arrival_rate: f64, mean_session_length: f64) -> Self {
        assert!(arrival_rate > 0.0, "arrival rate must be positive");
        assert!(
            mean_session_length > 0.0,
            "mean session length must be positive"
        );
        ClientPopulation {
            arrival_rate,
            mean_session_length,
            active_sessions: Vec::new(),
        }
    }

    /// Number of currently active background sessions.
    pub fn active_sessions(&self) -> usize {
        self.active_sessions.len()
    }

    /// Advances the population by one time-step: existing sessions age out
    /// and new clients arrive. Returns the number of active sessions after
    /// the step.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        // Age existing sessions.
        for remaining in self.active_sessions.iter_mut() {
            *remaining -= 1.0;
        }
        self.active_sessions.retain(|remaining| *remaining > 0.0);
        // New arrivals.
        let arrivals = Poisson::new(self.arrival_rate)
            .expect("positive rate")
            .sample(rng);
        let holding = Exponential::from_mean(self.mean_session_length).expect("positive mean");
        for _ in 0..arrivals {
            self.active_sessions.push(holding.sample(rng).max(1.0));
        }
        self.active_sessions.len()
    }

    /// The long-run expected number of active sessions (Little's law:
    /// `λ · μ`).
    pub fn expected_active_sessions(&self) -> f64 {
        self.arrival_rate * self.mean_session_length
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn population_reaches_littles_law_steady_state() {
        let mut population = ClientPopulation::paper_default();
        let mut rng = StdRng::seed_from_u64(1);
        // Warm up.
        for _ in 0..50 {
            population.step(&mut rng);
        }
        // Average over a window.
        let mut total = 0usize;
        let steps = 200;
        for _ in 0..steps {
            total += population.step(&mut rng);
        }
        let average = total as f64 / steps as f64;
        let expected = population.expected_active_sessions();
        assert!(
            (average - expected).abs() < expected * 0.2,
            "steady state {average} too far from Little's law value {expected}"
        );
    }

    #[test]
    fn sessions_eventually_terminate() {
        let mut population = ClientPopulation::new(1.0, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            population.step(&mut rng);
        }
        let peak = population.active_sessions();
        // Stop arrivals by fast-forwarding an isolated copy with zero new
        // arrivals: emulate by repeatedly aging with a tiny arrival rate.
        let mut draining = ClientPopulation {
            arrival_rate: 1e-9,
            mean_session_length: 2.0,
            active_sessions: population.active_sessions.clone(),
        };
        for _ in 0..200 {
            draining.step(&mut rng);
        }
        assert!(draining.active_sessions() < peak.max(1));
        assert_eq!(draining.active_sessions(), 0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn zero_arrival_rate_is_rejected() {
        let _ = ClientPopulation::new(0.0, 4.0);
    }
}
