//! IDS alert generation, intrusion traces and infrastructure metrics.
//!
//! The paper estimates the observation distribution `Ẑ_i` of each container
//! from 25 000 Snort alert samples (Fig. 11) and publishes a dataset of 6 400
//! intrusion traces. Neither the testbed nor the dataset is available
//! offline, so this module generates the synthetic equivalent: per-container
//! alert-count distributions whose shape mirrors Fig. 11 (a low-rate healthy
//! distribution and a heavy-tailed distribution under intrusion whose
//! separation depends on the container's detectability), a trace generator,
//! and the additional infrastructure metrics whose KL divergences Appendix H
//! compares (Fig. 18).

use crate::containers::ContainerConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tolerance_core::node_model::NodeState;
use tolerance_core::observation::ObservationModel;
use tolerance_markov::dist::{BetaBinomial, DiscreteDistribution};
use tolerance_markov::stats::kl_divergence;

/// Size of the weighted-alert observation space `O` used by the controllers
/// (the paper's numeric experiments use `O = {0, ..., 9}`; one extra bucket
/// captures the tail).
pub const ALERT_SUPPORT: usize = 11;

/// An infrastructure metric collected by the emulated testbed (Appendix H /
/// Fig. 18).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricKind {
    /// IDS alerts weighted by priority (the metric TOLERANCE uses).
    AlertsWeightedByPriority,
    /// Newly failed login attempts.
    FailedLoginAttempts,
    /// Newly created processes.
    NewProcesses,
    /// New TCP connections.
    NewTcpConnections,
    /// Blocks written to disk.
    BlocksWritten,
    /// Blocks read from disk.
    BlocksRead,
}

impl MetricKind {
    /// All metrics, in the order of Fig. 18.
    pub fn all() -> [MetricKind; 6] {
        [
            MetricKind::AlertsWeightedByPriority,
            MetricKind::FailedLoginAttempts,
            MetricKind::NewProcesses,
            MetricKind::NewTcpConnections,
            MetricKind::BlocksWritten,
            MetricKind::BlocksRead,
        ]
    }

    /// Display name used in the experiment output.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::AlertsWeightedByPriority => "alerts-weighted-by-priority",
            MetricKind::FailedLoginAttempts => "failed-login-attempts",
            MetricKind::NewProcesses => "new-processes",
            MetricKind::NewTcpConnections => "new-tcp-connections",
            MetricKind::BlocksWritten => "blocks-written",
            MetricKind::BlocksRead => "blocks-read",
        }
    }

    /// How strongly an intrusion shifts this metric (relative to its healthy
    /// variability). The ordering reproduces Fig. 18's finding that the
    /// weighted alert count carries by far the most information, followed by
    /// disk writes and failed logins, while disk reads carry almost none.
    fn intrusion_shift(self) -> f64 {
        match self {
            MetricKind::AlertsWeightedByPriority => 2.5,
            MetricKind::BlocksWritten => 1.0,
            MetricKind::FailedLoginAttempts => 0.8,
            MetricKind::NewProcesses => 0.3,
            MetricKind::NewTcpConnections => 0.3,
            MetricKind::BlocksRead => 0.05,
        }
    }
}

/// The per-container IDS model: weighted-alert distributions under the
/// healthy and compromised states, shaped by the container's detectability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IdsModel {
    container_id: u8,
    observation_model: ObservationModel,
}

impl IdsModel {
    /// Builds the IDS model of a container. More detectable intrusions
    /// (brute-force playbooks) shift the compromised distribution further
    /// from the healthy one, mirroring the per-container differences of
    /// Fig. 11.
    pub fn for_container(container: &ContainerConfig) -> Self {
        // Healthy alerts: BetaBin(10, 0.7, 3) as in Appendix E.
        let healthy = BetaBinomial::new(10, 0.7, 3.0)
            .expect("valid parameters")
            .pmf_vector();
        // Compromised alerts: BetaBin(10, alpha, 0.7) with alpha scaled by
        // detectability — louder intrusions push mass towards high counts.
        let alpha = (1.0 * container.detectability).clamp(0.4, 4.0);
        let compromised = BetaBinomial::new(10, alpha, 0.7)
            .expect("valid parameters")
            .pmf_vector();
        let observation_model = ObservationModel::from_distributions(healthy, compromised)
            .expect("beta-binomial vectors are valid distributions");
        IdsModel {
            container_id: container.id,
            observation_model,
        }
    }

    /// The container this model belongs to.
    pub fn container_id(&self) -> u8 {
        self.container_id
    }

    /// The observation model consumed by the node controller.
    pub fn observation_model(&self) -> &ObservationModel {
        &self.observation_model
    }

    /// Samples a weighted alert count for a replica in the given state, with
    /// an optional additive intensity from an ongoing (not yet completed)
    /// intrusion step.
    pub fn sample_alerts<R: Rng + ?Sized>(
        &self,
        state: NodeState,
        step_intensity: f64,
        rng: &mut R,
    ) -> u64 {
        let base = self.observation_model.sample(state, rng);
        if step_intensity <= 0.0 {
            return base;
        }
        // Reconnaissance/brute-force steps add bursty extra alerts.
        let extra = (step_intensity * 3.0 * rng.random::<f64>()).round() as u64;
        (base + extra).min((ALERT_SUPPORT - 1) as u64)
    }

    /// Estimates the empirical distribution `Ẑ_i` from `samples_per_state`
    /// samples per state (the Fig. 11 estimation procedure; the paper uses
    /// 25 000).
    pub fn estimate_empirical<R: Rng + ?Sized>(
        &self,
        samples_per_state: usize,
        rng: &mut R,
    ) -> ObservationModel {
        let healthy: Vec<u64> = (0..samples_per_state)
            .map(|_| self.observation_model.sample(NodeState::Healthy, rng))
            .collect();
        let compromised: Vec<u64> = (0..samples_per_state)
            .map(|_| self.observation_model.sample(NodeState::Compromised, rng))
            .collect();
        ObservationModel::from_samples(&healthy, &compromised, ALERT_SUPPORT, 1.0)
            .expect("non-empty sample sets")
    }
}

/// One synthetic intrusion trace: per-step state, weighted alert count and
/// the full metric vector (the analogue of one trace in the paper's 6 400-
/// trace dataset).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntrusionTrace {
    /// The container the trace was generated for.
    pub container_id: u8,
    /// The time-step at which the intrusion begins.
    pub intrusion_start: u32,
    /// Per-step hidden state (true = compromised).
    pub compromised: Vec<bool>,
    /// Per-step weighted alert counts.
    pub alerts: Vec<u64>,
    /// Per-step values of every infrastructure metric (same order as
    /// [`MetricKind::all`]).
    pub metrics: Vec<[u64; 6]>,
}

/// A generated dataset of intrusion traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceDataset {
    traces: Vec<IntrusionTrace>,
}

impl TraceDataset {
    /// Generates `count` traces of length `horizon` for the given container,
    /// with intrusion start times uniform over the first half of the trace.
    pub fn generate<R: Rng + ?Sized>(
        container: &ContainerConfig,
        count: usize,
        horizon: u32,
        rng: &mut R,
    ) -> Self {
        let ids = IdsModel::for_container(container);
        let traces = (0..count)
            .map(|_| {
                let intrusion_start = rng.random_range(1..(horizon / 2).max(2));
                let mut compromised = Vec::with_capacity(horizon as usize);
                let mut alerts = Vec::with_capacity(horizon as usize);
                let mut metrics = Vec::with_capacity(horizon as usize);
                for t in 0..horizon {
                    let is_compromised = t >= intrusion_start;
                    let state = if is_compromised {
                        NodeState::Compromised
                    } else {
                        NodeState::Healthy
                    };
                    compromised.push(is_compromised);
                    alerts.push(ids.sample_alerts(state, 0.0, rng));
                    metrics.push(sample_metric_vector(is_compromised, rng));
                }
                IntrusionTrace {
                    container_id: container.id,
                    intrusion_start,
                    compromised,
                    alerts,
                    metrics,
                }
            })
            .collect();
        TraceDataset { traces }
    }

    /// The traces.
    pub fn traces(&self) -> &[IntrusionTrace] {
        &self.traces
    }

    /// Number of traces.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// The empirical KL divergence `D_KL(metric | healthy ‖ metric |
    /// compromised)` of each metric across the dataset (the Fig. 18
    /// computation).
    pub fn metric_divergences(&self) -> Vec<(MetricKind, f64)> {
        MetricKind::all()
            .into_iter()
            .enumerate()
            .map(|(metric_index, kind)| {
                let mut healthy = vec![1.0; METRIC_SUPPORT];
                let mut compromised = vec![1.0; METRIC_SUPPORT];
                for trace in &self.traces {
                    for (t, values) in trace.metrics.iter().enumerate() {
                        let bucket = (values[metric_index] as usize).min(METRIC_SUPPORT - 1);
                        if trace.compromised[t] {
                            compromised[bucket] += 1.0;
                        } else {
                            healthy[bucket] += 1.0;
                        }
                    }
                }
                let healthy_sum: f64 = healthy.iter().sum();
                let compromised_sum: f64 = compromised.iter().sum();
                let healthy: Vec<f64> = healthy.iter().map(|c| c / healthy_sum).collect();
                let compromised: Vec<f64> =
                    compromised.iter().map(|c| c / compromised_sum).collect();
                let divergence = kl_divergence(&healthy, &compromised).unwrap_or(f64::INFINITY);
                (kind, divergence)
            })
            .collect()
    }
}

/// Support size of the binned infrastructure metrics.
const METRIC_SUPPORT: usize = 30;

/// Samples one value of every infrastructure metric for a step.
fn sample_metric_vector<R: Rng + ?Sized>(compromised: bool, rng: &mut R) -> [u64; 6] {
    let mut out = [0u64; 6];
    for (i, kind) in MetricKind::all().into_iter().enumerate() {
        // Healthy behaviour: a small Poisson-like count; intrusions shift the
        // mean by the metric-specific amount.
        let base_mean = 3.0;
        let mean = if compromised {
            base_mean * (1.0 + kind.intrusion_shift())
        } else {
            base_mean
        };
        let poisson = tolerance_markov::dist::Poisson::new(mean).expect("positive mean");
        out[i] = poisson.sample(rng).min((METRIC_SUPPORT - 1) as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containers::ContainerCatalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ids_models_separate_states_more_for_detectable_containers() {
        let catalogue = ContainerCatalog::paper_catalog();
        let brute = IdsModel::for_container(catalogue.by_id(1).unwrap());
        let stealthy = IdsModel::for_container(catalogue.by_id(6).unwrap());
        let loud_divergence = brute.observation_model().detection_divergence().unwrap();
        let quiet_divergence = stealthy.observation_model().detection_divergence().unwrap();
        assert!(
            loud_divergence > quiet_divergence,
            "brute-force containers must be easier to detect ({loud_divergence} vs {quiet_divergence})"
        );
        assert_eq!(brute.container_id(), 1);
    }

    #[test]
    fn all_container_models_satisfy_theorem1_assumptions() {
        let catalogue = ContainerCatalog::paper_catalog();
        for container in catalogue.containers() {
            let ids = IdsModel::for_container(container);
            assert!(
                ids.observation_model().validate_theorem1().is_ok(),
                "container {} violates the observation assumptions",
                container.id
            );
        }
    }

    #[test]
    fn empirical_estimation_converges_to_the_model() {
        let catalogue = ContainerCatalog::paper_catalog();
        let ids = IdsModel::for_container(catalogue.by_id(2).unwrap());
        let mut rng = StdRng::seed_from_u64(3);
        let empirical = ids.estimate_empirical(25_000, &mut rng);
        for o in 0..10u64 {
            let err = (empirical.probability(NodeState::Compromised, o)
                - ids
                    .observation_model()
                    .probability(NodeState::Compromised, o))
            .abs();
            assert!(err < 0.02, "empirical estimate off by {err} at o = {o}");
        }
    }

    #[test]
    fn alert_sampling_respects_support_and_step_intensity() {
        let catalogue = ContainerCatalog::paper_catalog();
        let ids = IdsModel::for_container(catalogue.by_id(1).unwrap());
        let mut rng = StdRng::seed_from_u64(4);
        let mut base_total = 0u64;
        let mut burst_total = 0u64;
        for _ in 0..2000 {
            let base = ids.sample_alerts(NodeState::Healthy, 0.0, &mut rng);
            let burst = ids.sample_alerts(NodeState::Healthy, 1.5, &mut rng);
            assert!(base < ALERT_SUPPORT as u64);
            assert!(burst < ALERT_SUPPORT as u64);
            base_total += base;
            burst_total += burst;
        }
        assert!(
            burst_total > base_total,
            "active intrusion steps must add alert noise"
        );
    }

    #[test]
    fn trace_dataset_structure_and_intrusion_labels() {
        let catalogue = ContainerCatalog::paper_catalog();
        let mut rng = StdRng::seed_from_u64(5);
        let dataset = TraceDataset::generate(catalogue.by_id(5).unwrap(), 64, 40, &mut rng);
        assert_eq!(dataset.len(), 64);
        assert!(!dataset.is_empty());
        for trace in dataset.traces() {
            assert_eq!(trace.compromised.len(), 40);
            assert_eq!(trace.alerts.len(), 40);
            assert_eq!(trace.metrics.len(), 40);
            // The label flips exactly once, at the intrusion start.
            assert!(!trace.compromised[0]);
            assert!(trace.compromised[trace.intrusion_start as usize]);
            assert!(trace.compromised.last().copied().unwrap());
        }
    }

    #[test]
    fn fig18_ordering_alerts_carry_the_most_information() {
        let catalogue = ContainerCatalog::paper_catalog();
        let mut rng = StdRng::seed_from_u64(6);
        let dataset = TraceDataset::generate(catalogue.by_id(1).unwrap(), 200, 60, &mut rng);
        let divergences = dataset.metric_divergences();
        assert_eq!(divergences.len(), 6);
        let get = |kind: MetricKind| {
            divergences
                .iter()
                .find(|(k, _)| *k == kind)
                .map(|(_, d)| *d)
                .unwrap()
        };
        let alerts = get(MetricKind::AlertsWeightedByPriority);
        // The weighted-alert metric dominates every other metric, and disk
        // reads are nearly uninformative (Fig. 18).
        for kind in MetricKind::all() {
            if kind != MetricKind::AlertsWeightedByPriority {
                assert!(
                    alerts > get(kind),
                    "{} should carry less information",
                    kind.name()
                );
            }
        }
        assert!(get(MetricKind::BlocksRead) < 0.1);
        assert!(alerts > 0.3);
    }

    #[test]
    fn metric_kinds_have_names() {
        for kind in MetricKind::all() {
            assert!(!kind.name().is_empty());
        }
    }
}
