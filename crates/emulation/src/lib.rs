//! # `tolerance-emulation`
//!
//! The emulated testbed of the TOLERANCE reproduction.
//!
//! The paper evaluates TOLERANCE on a 13-server testbed running 10 types of
//! real network intrusions against containerized replicas, with the Snort
//! IDS producing the alert streams consumed by the node controllers
//! (Section VII–VIII). This crate substitutes a faithful simulation of that
//! environment (see DESIGN.md for the substitution argument):
//!
//! * [`containers`] — the replica container catalogue of Table 4, their
//!   background services (Table 5) and intrusion playbooks (Table 6).
//! * [`ids`] — per-container IDS alert distributions shaped like Fig. 11,
//!   an intrusion-trace generator (the analogue of the paper's 6 400-trace
//!   dataset), and the additional infrastructure metrics of Fig. 18.
//! * [`attacker`] — the multi-step attacker that works through each
//!   container's intrusion playbook and then behaves arbitrarily.
//! * [`chaos`] — attacker-driven fault schedules for the simnet harness
//!   (`tolerance_core::simnet`): intrusion timing follows the container
//!   playbooks instead of uniform sampling.
//! * [`clients`] — the background client population (Poisson arrivals,
//!   exponential service times) that generates baseline IDS noise.
//! * [`emulation`] — the closed-loop emulation combining nodes, attackers,
//!   controllers and (optionally) the MinBFT cluster, producing the
//!   `T(A)`, `T(R)`, `F(R)` metrics.
//! * [`eval`] — the Table 7 / Fig. 12 comparison harness (TOLERANCE vs the
//!   NO-RECOVERY, PERIODIC and PERIODIC-ADAPTIVE baselines over seeds),
//!   executed through the shared scenario runtime of `tolerance-core`.
//! * [`scenarios`] — the built-in scenario catalogue: the paper's grid as
//!   named registry entries plus workloads beyond the paper (bursty
//!   attacker campaigns, heterogeneous fleets).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attacker;
pub mod chaos;
pub mod clients;
pub mod containers;
pub mod emulation;
pub mod eval;
pub mod ids;
pub mod scenarios;

pub use attacker::{AttackProfile, Attacker, AttackerBehavior};
pub use chaos::AttackerCampaignScenario;
pub use clients::ClientPopulation;
pub use containers::{ContainerCatalog, ContainerConfig};
pub use emulation::{Emulation, EmulationConfig, EmulationOutcome, StrategyKind};
pub use eval::{ComparisonRow, EmulationScenario, EvaluationGrid};
pub use ids::{IdsModel, IntrusionTrace, MetricKind, TraceDataset};
pub use scenarios::builtin_registry;
