//! The Table 7 / Fig. 12 comparison harness.
//!
//! Runs the closed-loop emulation for every combination of control strategy,
//! initial system size `N_1` and recovery period `Δ_R`, over multiple random
//! seeds, and reports the mean and 95% confidence interval of the three
//! evaluation metrics — exactly the grid the paper reports in Table 7.
//!
//! The grid is executed through the shared scenario runtime of
//! `tolerance-core`: each (strategy, `N_1`, `Δ_R`) cell becomes an
//! [`EmulationScenario`], and the [`Runner`] pools all (cell, seed) pairs
//! into one embarrassingly parallel job queue. Because every run is
//! deterministic in its seed and outputs are collected in input order, a
//! parallel grid is byte-identical to a serial one.

use crate::emulation::{Emulation, EmulationConfig, EmulationOutcome, StrategyKind};
use serde::{Deserialize, Serialize};
use tolerance_core::runtime::{AsMetricReport, MetricSummary, Runner, Scenario};

/// One cell of an evaluation grid: a full emulation configuration whose
/// seed is supplied per run by the [`Runner`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulationScenario {
    config: EmulationConfig,
}

impl EmulationScenario {
    /// Wraps an emulation configuration (its `seed` field is ignored; the
    /// runner supplies the seed of each run).
    pub fn new(config: EmulationConfig) -> Self {
        EmulationScenario { config }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &EmulationConfig {
        &self.config
    }
}

impl Scenario for EmulationScenario {
    type Output = EmulationOutcome;

    fn label(&self) -> String {
        format!(
            "{}/n{}/dr-{}",
            self.config.strategy.name(),
            self.config.initial_nodes,
            format_delta_r(self.config.delta_r)
        )
    }

    fn run(&self, seed: u64) -> tolerance_core::Result<EmulationOutcome> {
        let mut config = self.config.clone();
        config.seed = seed;
        Emulation::new(config)?.run()
    }
}

impl AsMetricReport for EmulationOutcome {
    fn metric_report(&self) -> tolerance_core::metrics::MetricReport {
        self.metrics
    }
}

/// One row of the comparison (one strategy at one grid point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// The control strategy.
    pub strategy: String,
    /// Initial number of nodes `N_1`.
    pub initial_nodes: usize,
    /// Recovery period `Δ_R` (`None` = ∞).
    pub delta_r: Option<u32>,
    /// Mean availability `T(A)` and its 95% CI half-width.
    pub availability: (f64, f64),
    /// Mean time-to-recovery `T(R)` and its 95% CI half-width.
    pub time_to_recovery: (f64, f64),
    /// Mean recovery frequency `F(R)` and its 95% CI half-width.
    pub recovery_frequency: (f64, f64),
    /// Number of seeds.
    pub seeds: usize,
}

/// The evaluation grid of Table 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationGrid {
    /// Values of `N_1` to evaluate (paper: 3, 6, 9).
    pub initial_nodes: Vec<usize>,
    /// Values of `Δ_R` to evaluate (paper: 15, 25, ∞).
    pub delta_r: Vec<Option<u32>>,
    /// Strategies to compare.
    pub strategies: Vec<StrategyKind>,
    /// Number of random seeds per cell (paper: 20).
    pub seeds: usize,
    /// Emulation horizon in time-steps (paper: 1000).
    pub horizon: u32,
}

impl Default for EvaluationGrid {
    fn default() -> Self {
        EvaluationGrid {
            initial_nodes: vec![3, 6, 9],
            delta_r: vec![Some(15), Some(25), None],
            strategies: StrategyKind::paper_set().to_vec(),
            seeds: 20,
            horizon: 1000,
        }
    }
}

impl EvaluationGrid {
    /// A reduced grid for quick runs and tests.
    pub fn quick() -> Self {
        EvaluationGrid {
            initial_nodes: vec![3, 6],
            delta_r: vec![Some(15), None],
            seeds: 3,
            horizon: 200,
            ..EvaluationGrid::default()
        }
    }

    /// The grid cells as scenarios, in row order
    /// (`N_1` outer, `Δ_R` middle, strategy inner — the paper's table
    /// order).
    pub fn cells(&self) -> Vec<EmulationScenario> {
        let mut cells = Vec::new();
        for &n1 in &self.initial_nodes {
            for &delta_r in &self.delta_r {
                for &strategy in &self.strategies {
                    cells.push(EmulationScenario::new(EmulationConfig {
                        initial_nodes: n1,
                        delta_r,
                        strategy,
                        horizon: self.horizon,
                        ..EmulationConfig::default()
                    }));
                }
            }
        }
        cells
    }

    /// Runs the full grid in parallel (one worker per CPU) and returns one
    /// row per (strategy, `N_1`, `Δ_R`) cell.
    ///
    /// # Errors
    ///
    /// Propagates emulation-construction failures.
    pub fn run(&self) -> tolerance_core::Result<Vec<ComparisonRow>> {
        self.run_with(&Runner::parallel())
    }

    /// Runs the full grid through the given runner. The result does not
    /// depend on the runner's execution mode.
    ///
    /// # Errors
    ///
    /// Propagates emulation-construction failures.
    pub fn run_with(&self, runner: &Runner) -> tolerance_core::Result<Vec<ComparisonRow>> {
        let cells = self.cells();
        let seeds: Vec<u64> = (0..self.seeds as u64).collect();
        let outcomes = runner.run_cells(&cells, &seeds)?;
        cells
            .iter()
            .zip(outcomes)
            .map(|(cell, cell_outcomes)| {
                let reports: Vec<_> = cell_outcomes
                    .iter()
                    .map(AsMetricReport::metric_report)
                    .collect();
                let summary = MetricSummary::from_reports(&reports)?;
                let config = cell.config();
                Ok(ComparisonRow {
                    strategy: config.strategy.name().to_string(),
                    initial_nodes: config.initial_nodes,
                    delta_r: config.delta_r,
                    availability: summary.availability,
                    time_to_recovery: summary.time_to_recovery,
                    recovery_frequency: summary.recovery_frequency,
                    seeds: summary.samples,
                })
            })
            .collect()
    }
}

/// Formats a `Δ_R` value the way the paper's tables do.
pub fn format_delta_r(delta_r: Option<u32>) -> String {
    match delta_r {
        Some(d) => d.to_string(),
        None => "inf".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_reproduces_the_papers_qualitative_ordering() {
        let grid = EvaluationGrid {
            initial_nodes: vec![3],
            delta_r: vec![Some(15)],
            seeds: 3,
            horizon: 200,
            ..EvaluationGrid::default()
        };
        let rows = grid.run().unwrap();
        assert_eq!(rows.len(), 4);
        let get = |name: &str| rows.iter().find(|r| r.strategy == name).unwrap();
        let tolerance = get("tolerance");
        let no_recovery = get("no-recovery");
        let periodic = get("periodic");

        // Table 7 shape: TOLERANCE has the highest availability and the
        // lowest time-to-recovery; NO-RECOVERY collapses.
        assert!(tolerance.availability.0 > 0.9);
        assert!(no_recovery.availability.0 < 0.5);
        assert!(tolerance.availability.0 >= periodic.availability.0 - 0.05);
        assert!(tolerance.time_to_recovery.0 < periodic.time_to_recovery.0);
        assert!(no_recovery.time_to_recovery.0 > 500.0);
    }

    #[test]
    fn grid_enumerates_all_cells() {
        let grid = EvaluationGrid {
            initial_nodes: vec![3, 6],
            delta_r: vec![Some(15), None],
            strategies: vec![StrategyKind::Tolerance],
            seeds: 1,
            horizon: 50,
        };
        assert_eq!(grid.cells().len(), 4);
        let rows = grid.run().unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.seeds == 1));
    }

    #[test]
    fn serial_and_parallel_grids_are_identical() {
        let grid = EvaluationGrid {
            initial_nodes: vec![3],
            delta_r: vec![Some(15), None],
            seeds: 2,
            horizon: 60,
            ..EvaluationGrid::default()
        };
        let serial = grid.run_with(&Runner::serial()).unwrap();
        let parallel = grid.run_with(&Runner::parallel()).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn scenario_labels_identify_the_cell() {
        let scenario = EmulationScenario::new(EmulationConfig {
            initial_nodes: 6,
            delta_r: Some(15),
            ..EmulationConfig::default()
        });
        assert_eq!(scenario.label(), "tolerance/n6/dr-15");
        assert_eq!(scenario.config().initial_nodes, 6);
    }

    #[test]
    fn delta_r_formatting() {
        assert_eq!(format_delta_r(Some(15)), "15");
        assert_eq!(format_delta_r(None), "inf");
    }

    #[test]
    fn default_grid_matches_the_paper() {
        let grid = EvaluationGrid::default();
        assert_eq!(grid.initial_nodes, vec![3, 6, 9]);
        assert_eq!(grid.delta_r.len(), 3);
        assert_eq!(grid.strategies.len(), 4);
        assert_eq!(grid.seeds, 20);
        assert_eq!(grid.horizon, 1000);
        let quick = EvaluationGrid::quick();
        assert!(quick.seeds < grid.seeds);
    }
}
