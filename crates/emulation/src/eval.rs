//! The Table 7 / Fig. 12 comparison harness.
//!
//! Runs the closed-loop emulation for every combination of control strategy,
//! initial system size `N_1` and recovery period `Δ_R`, over multiple random
//! seeds, and reports the mean and 95% confidence interval of the three
//! evaluation metrics — exactly the grid the paper reports in Table 7.

use crate::emulation::{Emulation, EmulationConfig, StrategyKind};
use serde::{Deserialize, Serialize};
use tolerance_core::baselines::BaselineKind;
use tolerance_markov::stats::SummaryStatistics;

/// One row of the comparison (one strategy at one grid point).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// The control strategy.
    pub strategy: String,
    /// Initial number of nodes `N_1`.
    pub initial_nodes: usize,
    /// Recovery period `Δ_R` (`None` = ∞).
    pub delta_r: Option<u32>,
    /// Mean availability `T(A)` and its 95% CI half-width.
    pub availability: (f64, f64),
    /// Mean time-to-recovery `T(R)` and its 95% CI half-width.
    pub time_to_recovery: (f64, f64),
    /// Mean recovery frequency `F(R)` and its 95% CI half-width.
    pub recovery_frequency: (f64, f64),
    /// Number of seeds.
    pub seeds: usize,
}

/// The evaluation grid of Table 7.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationGrid {
    /// Values of `N_1` to evaluate (paper: 3, 6, 9).
    pub initial_nodes: Vec<usize>,
    /// Values of `Δ_R` to evaluate (paper: 15, 25, ∞).
    pub delta_r: Vec<Option<u32>>,
    /// Strategies to compare.
    pub strategies: Vec<StrategyKind>,
    /// Number of random seeds per cell (paper: 20).
    pub seeds: usize,
    /// Emulation horizon in time-steps (paper: 1000).
    pub horizon: u32,
}

impl Default for EvaluationGrid {
    fn default() -> Self {
        EvaluationGrid {
            initial_nodes: vec![3, 6, 9],
            delta_r: vec![Some(15), Some(25), None],
            strategies: vec![
                StrategyKind::Tolerance,
                StrategyKind::Baseline(BaselineKind::NoRecovery),
                StrategyKind::Baseline(BaselineKind::Periodic),
                StrategyKind::Baseline(BaselineKind::PeriodicAdaptive),
            ],
            seeds: 20,
            horizon: 1000,
        }
    }
}

impl EvaluationGrid {
    /// A reduced grid for quick runs and tests.
    pub fn quick() -> Self {
        EvaluationGrid {
            initial_nodes: vec![3, 6],
            delta_r: vec![Some(15), None],
            seeds: 3,
            horizon: 200,
            ..EvaluationGrid::default()
        }
    }

    /// Runs the full grid and returns one row per (strategy, `N_1`, `Δ_R`)
    /// cell.
    ///
    /// # Errors
    ///
    /// Propagates emulation-construction failures.
    pub fn run(&self) -> tolerance_core::Result<Vec<ComparisonRow>> {
        let mut rows = Vec::new();
        for &n1 in &self.initial_nodes {
            for &delta_r in &self.delta_r {
                for &strategy in &self.strategies {
                    let mut availability = Vec::with_capacity(self.seeds);
                    let mut time_to_recovery = Vec::with_capacity(self.seeds);
                    let mut recovery_frequency = Vec::with_capacity(self.seeds);
                    for seed in 0..self.seeds {
                        let config = EmulationConfig {
                            initial_nodes: n1,
                            delta_r,
                            strategy,
                            horizon: self.horizon,
                            seed: seed as u64,
                            ..EmulationConfig::default()
                        };
                        let outcome = Emulation::new(config)?.run()?;
                        availability.push(outcome.metrics.availability);
                        time_to_recovery.push(outcome.metrics.time_to_recovery);
                        recovery_frequency.push(outcome.metrics.recovery_frequency);
                    }
                    let summarize = |samples: &[f64]| {
                        let stats = SummaryStatistics::from_samples(samples)
                            .expect("at least one seed");
                        (stats.mean, stats.ci95_half_width)
                    };
                    rows.push(ComparisonRow {
                        strategy: strategy.name().to_string(),
                        initial_nodes: n1,
                        delta_r,
                        availability: summarize(&availability),
                        time_to_recovery: summarize(&time_to_recovery),
                        recovery_frequency: summarize(&recovery_frequency),
                        seeds: self.seeds,
                    });
                }
            }
        }
        Ok(rows)
    }
}

/// Formats a `Δ_R` value the way the paper's tables do.
pub fn format_delta_r(delta_r: Option<u32>) -> String {
    match delta_r {
        Some(d) => d.to_string(),
        None => "inf".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_reproduces_the_papers_qualitative_ordering() {
        let grid = EvaluationGrid {
            initial_nodes: vec![3],
            delta_r: vec![Some(15)],
            seeds: 3,
            horizon: 200,
            ..EvaluationGrid::default()
        };
        let rows = grid.run().unwrap();
        assert_eq!(rows.len(), 4);
        let get = |name: &str| rows.iter().find(|r| r.strategy == name).unwrap();
        let tolerance = get("tolerance");
        let no_recovery = get("no-recovery");
        let periodic = get("periodic");

        // Table 7 shape: TOLERANCE has the highest availability and the
        // lowest time-to-recovery; NO-RECOVERY collapses.
        assert!(tolerance.availability.0 > 0.9);
        assert!(no_recovery.availability.0 < 0.5);
        assert!(tolerance.availability.0 >= periodic.availability.0 - 0.05);
        assert!(tolerance.time_to_recovery.0 < periodic.time_to_recovery.0);
        assert!(no_recovery.time_to_recovery.0 > 500.0);
    }

    #[test]
    fn grid_enumerates_all_cells() {
        let grid = EvaluationGrid {
            initial_nodes: vec![3, 6],
            delta_r: vec![Some(15), None],
            strategies: vec![StrategyKind::Tolerance],
            seeds: 1,
            horizon: 50,
        };
        let rows = grid.run().unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.seeds == 1));
    }

    #[test]
    fn delta_r_formatting() {
        assert_eq!(format_delta_r(Some(15)), "15");
        assert_eq!(format_delta_r(None), "inf");
    }

    #[test]
    fn default_grid_matches_the_paper() {
        let grid = EvaluationGrid::default();
        assert_eq!(grid.initial_nodes, vec![3, 6, 9]);
        assert_eq!(grid.delta_r.len(), 3);
        assert_eq!(grid.strategies.len(), 4);
        assert_eq!(grid.seeds, 20);
        assert_eq!(grid.horizon, 1000);
        let quick = EvaluationGrid::quick();
        assert!(quick.seeds < grid.seeds);
    }
}
