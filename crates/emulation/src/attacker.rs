//! The emulated attacker.
//!
//! The paper's attacker works through the container-specific intrusion steps
//! of Table 6 (reconnaissance, brute force, exploit) and, after compromising
//! a replica, randomly chooses between (a) participating in the consensus
//! protocol, (b) staying silent, and (c) participating with random messages
//! (Section VIII-A). This module reproduces that behaviour: each node under
//! attack progresses through its playbook one step per time-step, generating
//! extra IDS noise along the way, and is compromised when the playbook
//! completes.

use crate::containers::ContainerConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tolerance_consensus::ByzantineMode;

/// How a compromised replica behaves (the attacker's post-compromise choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackerBehavior {
    /// Keeps participating correctly in the consensus protocol (stealthy).
    Participate,
    /// Stops participating.
    Silent,
    /// Participates with randomly corrupted messages.
    RandomMessages,
}

impl AttackerBehavior {
    /// Samples a behaviour uniformly at random, as in the paper.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        match rng.random_range(0..3u8) {
            0 => AttackerBehavior::Participate,
            1 => AttackerBehavior::Silent,
            _ => AttackerBehavior::RandomMessages,
        }
    }

    /// The MinBFT fault-injection mode corresponding to this behaviour.
    pub fn byzantine_mode(self) -> ByzantineMode {
        match self {
            AttackerBehavior::Participate => ByzantineMode::Correct,
            AttackerBehavior::Silent => ByzantineMode::Silent,
            AttackerBehavior::RandomMessages => ByzantineMode::Arbitrary,
        }
    }
}

/// How the attacker's intrusion pressure evolves over a run.
///
/// The paper's evaluation uses a constant per-step intrusion probability;
/// the scenario runtime additionally supports campaign-style attackers that
/// concentrate their intrusion attempts in bursts (the same mean pressure
/// can produce very different availability when attacks are correlated in
/// time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub enum AttackProfile {
    /// A constant per-step intrusion probability (the paper's setting).
    #[default]
    Constant,
    /// A bursty campaign: for `active_steps` out of every `period` steps the
    /// intrusion probability is multiplied by `multiplier`; outside the
    /// burst the attacker is dormant.
    Bursty {
        /// Length of one campaign cycle in time-steps.
        period: u32,
        /// Number of active steps at the start of each cycle.
        active_steps: u32,
        /// Intrusion-probability multiplier during the active window.
        multiplier: f64,
    },
}

impl AttackProfile {
    /// The factor applied to the base intrusion probability at `time_step`.
    pub fn intensity_factor(&self, time_step: u64) -> f64 {
        match *self {
            AttackProfile::Constant => 1.0,
            AttackProfile::Bursty {
                period,
                active_steps,
                multiplier,
            } => {
                if period == 0 {
                    1.0
                } else if time_step % u64::from(period) < u64::from(active_steps) {
                    multiplier
                } else {
                    0.0
                }
            }
        }
    }
}

/// The progress of an intrusion against one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IntrusionProgress {
    /// No intrusion in progress.
    Idle,
    /// The attacker is executing the playbook; `next_step` indexes into the
    /// container's intrusion steps.
    InProgress {
        /// Index of the next playbook step to execute.
        next_step: usize,
    },
    /// The playbook completed and the replica is compromised.
    Compromised {
        /// The post-compromise behaviour the attacker chose.
        behavior: AttackerBehavior,
        /// The time-step at which the compromise completed.
        since: u64,
    },
}

/// The attacker state for a single node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attacker {
    /// Probability per time-step of starting a new intrusion against a node
    /// that is not already under attack (the `p_A` of the node model).
    pub intrusion_probability: f64,
    progress: IntrusionProgress,
}

impl Attacker {
    /// Creates an idle attacker with the given per-step intrusion
    /// probability.
    pub fn new(intrusion_probability: f64) -> Self {
        Attacker {
            intrusion_probability,
            progress: IntrusionProgress::Idle,
        }
    }

    /// Current progress.
    pub fn progress(&self) -> &IntrusionProgress {
        &self.progress
    }

    /// Whether the node is currently compromised.
    pub fn is_compromised(&self) -> bool {
        matches!(self.progress, IntrusionProgress::Compromised { .. })
    }

    /// Whether an intrusion (including a completed one) is in progress.
    pub fn is_active(&self) -> bool {
        !matches!(self.progress, IntrusionProgress::Idle)
    }

    /// The time-step at which the node became compromised, if it is.
    pub fn compromised_since(&self) -> Option<u64> {
        match self.progress {
            IntrusionProgress::Compromised { since, .. } => Some(since),
            _ => None,
        }
    }

    /// The post-compromise behaviour, if compromised.
    pub fn behavior(&self) -> Option<AttackerBehavior> {
        match self.progress {
            IntrusionProgress::Compromised { behavior, .. } => Some(behavior),
            _ => None,
        }
    }

    /// The extra IDS-alert intensity contributed by the attacker this step
    /// (loud while the playbook is running, quiet afterwards).
    pub fn step_intensity(&self, container: &ContainerConfig) -> f64 {
        match self.progress {
            IntrusionProgress::InProgress { next_step } => container
                .intrusion_steps
                .get(next_step)
                .map(|s| s.alert_intensity())
                .unwrap_or(0.0),
            _ => 0.0,
        }
    }

    /// Advances the attacker by one time-step against the given container.
    /// Returns `true` if the node transitioned to compromised during this
    /// step.
    pub fn step<R: Rng + ?Sized>(
        &mut self,
        container: &ContainerConfig,
        time_step: u64,
        rng: &mut R,
    ) -> bool {
        match &mut self.progress {
            IntrusionProgress::Idle => {
                if rng.random::<f64>() < self.intrusion_probability {
                    self.progress = IntrusionProgress::InProgress { next_step: 0 };
                }
                false
            }
            IntrusionProgress::InProgress { next_step } => {
                *next_step += 1;
                if *next_step >= container.intrusion_steps.len() {
                    self.progress = IntrusionProgress::Compromised {
                        behavior: AttackerBehavior::sample(rng),
                        since: time_step,
                    };
                    true
                } else {
                    false
                }
            }
            IntrusionProgress::Compromised { .. } => false,
        }
    }

    /// Resets the attacker after the node is recovered or replaced (a new
    /// container means the attacker must start over).
    pub fn reset(&mut self) {
        self.progress = IntrusionProgress::Idle;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::containers::ContainerCatalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn attacker_progresses_through_the_playbook_and_compromises() {
        let catalogue = ContainerCatalog::paper_catalog();
        let container = catalogue.by_id(9).unwrap(); // 3-step playbook
        let mut attacker = Attacker::new(1.0); // always starts immediately
        let mut rng = StdRng::seed_from_u64(1);

        assert!(!attacker.is_active());
        assert!(
            !attacker.step(container, 0, &mut rng),
            "step 0 only starts the intrusion"
        );
        assert!(attacker.is_active());
        assert!(!attacker.is_compromised());
        assert!(attacker.step_intensity(container) > 0.0);
        // 3-step playbook: two more steps before compromise completes.
        assert!(!attacker.step(container, 1, &mut rng));
        assert!(!attacker.step(container, 2, &mut rng));
        assert!(attacker.step(container, 3, &mut rng), "playbook completes");
        assert!(attacker.is_compromised());
        assert_eq!(attacker.compromised_since(), Some(3));
        assert!(attacker.behavior().is_some());
        // Further steps do not re-compromise.
        assert!(!attacker.step(container, 4, &mut rng));
        assert_eq!(attacker.step_intensity(container), 0.0);
    }

    #[test]
    fn reset_returns_to_idle() {
        let catalogue = ContainerCatalog::paper_catalog();
        let container = catalogue.by_id(1).unwrap();
        let mut attacker = Attacker::new(1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for t in 0..10 {
            attacker.step(container, t, &mut rng);
        }
        assert!(attacker.is_compromised());
        attacker.reset();
        assert!(!attacker.is_active());
        assert_eq!(attacker.compromised_since(), None);
        assert_eq!(attacker.behavior(), None);
    }

    #[test]
    fn intrusion_probability_controls_the_start_rate() {
        let catalogue = ContainerCatalog::paper_catalog();
        let container = catalogue.by_id(1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut started = 0;
        for _ in 0..2000 {
            let mut attacker = Attacker::new(0.1);
            attacker.step(container, 0, &mut rng);
            if attacker.is_active() {
                started += 1;
            }
        }
        let fraction = started as f64 / 2000.0;
        assert!((fraction - 0.1).abs() < 0.03, "start rate {fraction}");
    }

    #[test]
    fn attack_profiles_modulate_intensity() {
        let constant = AttackProfile::Constant;
        assert_eq!(constant.intensity_factor(0), 1.0);
        assert_eq!(constant.intensity_factor(999), 1.0);

        let bursty = AttackProfile::Bursty {
            period: 10,
            active_steps: 3,
            multiplier: 4.0,
        };
        assert_eq!(bursty.intensity_factor(0), 4.0);
        assert_eq!(bursty.intensity_factor(2), 4.0);
        assert_eq!(bursty.intensity_factor(3), 0.0);
        assert_eq!(bursty.intensity_factor(9), 0.0);
        assert_eq!(bursty.intensity_factor(10), 4.0);

        // A zero-length period degenerates to the constant profile.
        let degenerate = AttackProfile::Bursty {
            period: 0,
            active_steps: 1,
            multiplier: 2.0,
        };
        assert_eq!(degenerate.intensity_factor(5), 1.0);
    }

    #[test]
    fn behaviour_sampling_covers_all_modes_and_maps_to_byzantine_modes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(format!("{:?}", AttackerBehavior::sample(&mut rng)));
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(
            AttackerBehavior::Participate.byzantine_mode(),
            ByzantineMode::Correct
        );
        assert_eq!(
            AttackerBehavior::Silent.byzantine_mode(),
            ByzantineMode::Silent
        );
        assert_eq!(
            AttackerBehavior::RandomMessages.byzantine_mode(),
            ByzantineMode::Arbitrary
        );
    }
}
