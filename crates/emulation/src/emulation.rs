//! The closed-loop emulation of the TOLERANCE architecture.
//!
//! One emulation run reproduces the paper's evaluation setup (Section
//! VIII-A): it starts with `N_1` nodes, each running a replica drawn from the
//! container catalogue; at every (logical 60-second) time-step the attacker
//! progresses intrusions, the IDS emits weighted alert counts, the node
//! controllers (or a baseline strategy) decide which replicas to recover, and
//! the system controller (for TOLERANCE) decides whether to add a node and
//! evicts crashed nodes. The run produces the three metrics of Section III-C
//! — `T(A)`, `T(R)` and `F(R)` — that populate Table 7 / Fig. 12.
//!
//! The consensus protocol itself does not need to run inside the metric loop
//! (the metrics only depend on node states and controller decisions), but
//! [`Emulation::run_with_consensus`] drives a real MinBFT cluster alongside
//! the loop — mirroring recoveries, additions and evictions, injecting the
//! attacker's Byzantine behaviour, and issuing client requests — to check
//! end-to-end that the controlled system keeps providing correct service.

use crate::attacker::{AttackProfile, Attacker};
use crate::clients::ClientPopulation;
use crate::containers::{ContainerCatalog, ContainerConfig};
use crate::ids::IdsModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tolerance_consensus::minbft::{MinBftCluster, MinBftConfig, Operation};
use tolerance_consensus::NetworkConfig;
use tolerance_core::baselines::RecoveryDecision;
use tolerance_core::controller::SystemController;
use tolerance_core::metrics::{EvaluationMetrics, MetricReport};
use tolerance_core::node_model::{NodeModel, NodeParameters, NodeState};
use tolerance_core::replication::ReplicationConfig;
use tolerance_core::runtime::{NodeStrategy, NodeStrategyConfig};

pub use tolerance_core::runtime::StrategyKind;

/// Configuration of one emulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulationConfig {
    /// Initial number of nodes `N_1` (the paper evaluates 3, 6 and 9).
    pub initial_nodes: usize,
    /// Maximum number of nodes `s_max` (13 in the paper's testbed).
    pub max_nodes: usize,
    /// The BTR period `Δ_R` used by the periodic baselines and the TOLERANCE
    /// BTR constraint; `None` means `Δ_R = ∞`.
    pub delta_r: Option<u32>,
    /// Which control strategy to run.
    pub strategy: StrategyKind,
    /// Number of time-steps (the paper's runs last 1000 steps of 60 s).
    pub horizon: u32,
    /// Maximum number of parallel recoveries `k` (Proposition 1).
    pub parallel_recoveries: usize,
    /// Node transition parameters (attack/crash/update probabilities).
    pub node_parameters: NodeParameters,
    /// Availability target `ε_A` of the replication CMDP.
    pub availability_target: f64,
    /// Belief threshold used by the TOLERANCE node controllers. The bench
    /// harness computes this with Algorithm 1; the default (0.76) is the
    /// value the paper reports in Fig. 13b.
    pub recovery_threshold: f64,
    /// How the attacker's intrusion pressure evolves over time (the paper
    /// uses [`AttackProfile::Constant`]; the scenario registry adds bursty
    /// campaigns).
    pub attack_profile: AttackProfile,
    /// Heterogeneity of the node fleet: each node's attack and
    /// compromised-crash probabilities are scaled by an independent factor
    /// drawn uniformly from `[1 - jitter, 1 + jitter]`. `0.0` (the paper's
    /// setting) gives an identical fleet.
    pub parameter_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmulationConfig {
    fn default() -> Self {
        EmulationConfig {
            initial_nodes: 6,
            max_nodes: 13,
            delta_r: None,
            strategy: StrategyKind::Tolerance,
            horizon: 1000,
            parallel_recoveries: 1,
            node_parameters: NodeParameters::default(),
            availability_target: 0.9,
            recovery_threshold: 0.76,
            attack_profile: AttackProfile::Constant,
            parameter_jitter: 0.0,
            seed: 0,
        }
    }
}

impl EmulationConfig {
    /// The fault threshold used in the paper's evaluation:
    /// `f = min[(N_1 - 1)/2, 2]` (Appendix E).
    pub fn fault_threshold(&self) -> usize {
        (((self.initial_nodes.max(1)) - 1) / 2).min(2)
    }
}

/// The outcome of one emulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmulationOutcome {
    /// The three evaluation metrics.
    pub metrics: MetricReport,
    /// Nodes added by the system controller during the run.
    pub nodes_added: u64,
    /// Nodes evicted (crashed) during the run.
    pub nodes_evicted: u64,
    /// Total recoveries performed.
    pub recoveries: u64,
    /// Final number of nodes.
    pub final_nodes: usize,
}

/// Per-node runtime state inside the emulation.
struct EmulatedNode {
    container: ContainerConfig,
    ids: IdsModel,
    state: NodeState,
    attacker: Attacker,
    clients: ClientPopulation,
    strategy: NodeStrategy,
    /// The node's un-modulated intrusion probability (heterogeneous fleets
    /// give each node its own); the attack profile scales it per step.
    base_intrusion_probability: f64,
    /// Time-step at which the current compromise started (for `T(R)`).
    compromise_started: Option<u64>,
}

/// The closed-loop emulation.
pub struct Emulation {
    config: EmulationConfig,
    catalog: ContainerCatalog,
    rng: StdRng,
    nodes: Vec<EmulatedNode>,
    system_controller: Option<SystemController>,
    metrics: EvaluationMetrics,
    nodes_added: u64,
    nodes_evicted: u64,
    recoveries: u64,
    time_step: u64,
}

impl Emulation {
    /// Builds an emulation run. For the TOLERANCE strategy this solves the
    /// replication CMDP with Algorithm 2 up front (the training phase the
    /// paper describes in Section X).
    ///
    /// # Errors
    ///
    /// Propagates model-construction and LP failures from `tolerance-core`.
    pub fn new(config: EmulationConfig) -> tolerance_core::Result<Self> {
        let catalog = ContainerCatalog::paper_catalog();
        let mut rng = StdRng::seed_from_u64(config.seed);

        let system_controller = config.strategy.build_system_controller(ReplicationConfig {
            s_max: config.max_nodes,
            fault_threshold: config.fault_threshold(),
            availability_target: config.availability_target,
            node_survival_probability: 1.0 - config.node_parameters.p_attack / 2.0,
        })?;

        let mut emulation = Emulation {
            catalog,
            rng: StdRng::seed_from_u64(config.seed.wrapping_add(1)),
            nodes: Vec::new(),
            system_controller,
            metrics: EvaluationMetrics::new(),
            nodes_added: 0,
            nodes_evicted: 0,
            recoveries: 0,
            time_step: 0,
            config,
        };
        for _ in 0..emulation.config.initial_nodes {
            let node = emulation.build_node(&mut rng)?;
            emulation.nodes.push(node);
        }
        Ok(emulation)
    }

    /// The configuration of this run.
    pub fn config(&self) -> &EmulationConfig {
        &self.config
    }

    /// Current number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Draws one node's transition parameters; heterogeneous fleets scale
    /// the attack-related probabilities per node.
    fn sample_node_parameters(&self, rng: &mut StdRng) -> NodeParameters {
        let base = self.config.node_parameters;
        let jitter = self.config.parameter_jitter;
        if jitter <= 0.0 {
            return base;
        }
        let factor = 1.0 + jitter * (2.0 * rng.random::<f64>() - 1.0);
        // The floor keeps assumption C's ordering (p_C2 > p_C1) while never
        // exceeding the cap for large configured crash rates.
        let crash_floor = (base.p_crash_healthy * 2.0).min(0.5);
        let candidate = NodeParameters {
            p_attack: (base.p_attack * factor).clamp(1e-6, 0.5),
            p_crash_compromised: (base.p_crash_compromised * factor).clamp(crash_floor, 0.5),
            ..base
        };
        // Extreme configurations can push a jittered draw outside the
        // Theorem 1 assumptions; such nodes fall back to the base
        // parameters instead of failing the whole run.
        if candidate.validate_theorem1().is_ok() {
            candidate
        } else {
            base
        }
    }

    fn build_node(&self, rng: &mut StdRng) -> tolerance_core::Result<EmulatedNode> {
        let container = self.catalog.sample(rng).clone();
        let ids = IdsModel::for_container(&container);
        let parameters = self.sample_node_parameters(rng);
        let model = NodeModel::new(parameters, ids.observation_model().clone())?;
        let expected_alerts = ids.observation_model().mean(NodeState::Healthy);
        // Stagger the periodic-recovery phases across nodes so that the
        // k-parallel-recovery constraint is not hit by every node requesting
        // recovery in the same step.
        let initial_phase = match self.config.strategy {
            StrategyKind::Tolerance => 0,
            StrategyKind::Baseline(_) => {
                rng.random_range(0..self.config.delta_r.unwrap_or(1).max(1))
            }
        };
        let strategy = self.config.strategy.build_node_strategy(
            model,
            expected_alerts,
            &NodeStrategyConfig {
                recovery_threshold: self.config.recovery_threshold,
                delta_r: self.config.delta_r,
                initial_phase,
            },
        )?;
        Ok(EmulatedNode {
            container,
            ids,
            state: NodeState::Healthy,
            attacker: Attacker::new(parameters.p_attack),
            clients: ClientPopulation::paper_default(),
            strategy,
            base_intrusion_probability: parameters.p_attack,
            compromise_started: None,
        })
    }

    /// Runs the emulation to its horizon and returns the outcome.
    ///
    /// # Errors
    ///
    /// Propagates node-construction failures when nodes are added mid-run.
    pub fn run(&mut self) -> tolerance_core::Result<EmulationOutcome> {
        for _ in 0..self.config.horizon {
            self.step(None)?;
        }
        Ok(self.finish())
    }

    /// Runs the emulation while driving a real MinBFT cluster: recoveries,
    /// additions and evictions are mirrored into the cluster, the attacker's
    /// post-compromise behaviour is injected as Byzantine faults, and a
    /// client issues one write request per step. Returns the outcome plus the
    /// fraction of client requests that completed correctly.
    ///
    /// # Errors
    ///
    /// Propagates node-construction failures.
    pub fn run_with_consensus(
        &mut self,
        steps: u32,
    ) -> tolerance_core::Result<(EmulationOutcome, f64)> {
        let mut cluster = MinBftCluster::new(MinBftConfig {
            initial_replicas: self.config.initial_nodes,
            parallel_recoveries: self.config.parallel_recoveries,
            network: NetworkConfig::default(),
            seed: self.config.seed,
            ..MinBftConfig::default()
        });
        let client = cluster.add_client();
        let mut issued = 0u64;
        for step in 0..steps {
            self.step(Some(&mut cluster))?;
            // Closed-loop client: only issue a new request once the previous
            // one has been answered (it may span several steps while the
            // cluster recovers or changes views).
            if !cluster.has_outstanding_request(client) {
                cluster.submit(client, Operation::Write(step as u64));
                issued += 1;
            }
            cluster.run_until_quiet(cluster.now() + 2.0);
        }
        let completed = cluster.completed_requests(client);
        let success_rate = if issued == 0 {
            1.0
        } else {
            completed as f64 / issued as f64
        };
        Ok((self.finish(), success_rate))
    }

    fn finish(&mut self) -> EmulationOutcome {
        // Charge intrusions that were never recovered.
        for node in &self.nodes {
            if node.compromise_started.is_some() {
                self.metrics.record_unrecovered_intrusion();
            }
        }
        EmulationOutcome {
            metrics: self.metrics.report(),
            nodes_added: self.nodes_added,
            nodes_evicted: self.nodes_evicted,
            recoveries: self.recoveries,
            final_nodes: self.nodes.len(),
        }
    }

    /// Executes one time-step of the closed loop.
    fn step(&mut self, mut cluster: Option<&mut MinBftCluster>) -> tolerance_core::Result<()> {
        self.time_step += 1;
        let time_step = self.time_step;
        let fault_threshold = self.config.fault_threshold();
        let mut recovery_requests: Vec<(usize, f64)> = Vec::new();
        let mut baseline_wants_node = false;
        let mut reports: Vec<Option<f64>> = Vec::with_capacity(self.nodes.len());

        // --- Per-node dynamics: attacker, IDS, local decision. ---
        let attack_factor = self.config.attack_profile.intensity_factor(time_step);
        for (index, node) in self.nodes.iter_mut().enumerate() {
            node.clients.step(&mut self.rng);

            // Attacker progression (the profile modulates the per-step
            // intrusion pressure around the node's base probability).
            node.attacker.intrusion_probability = node.base_intrusion_probability * attack_factor;
            if node.state == NodeState::Healthy {
                let compromised_now = node
                    .attacker
                    .step(&node.container, time_step, &mut self.rng);
                if compromised_now {
                    node.state = NodeState::Compromised;
                    node.compromise_started = Some(time_step);
                    if let (Some(cluster), Some(behavior)) =
                        (cluster.as_deref_mut(), node.attacker.behavior())
                    {
                        if cluster.membership().contains(&(index as u32)) {
                            cluster.set_byzantine(index as u32, behavior.byzantine_mode());
                        }
                    }
                }
            }

            // Crashes.
            let crash_probability = match node.state {
                NodeState::Healthy => self.config.node_parameters.p_crash_healthy,
                NodeState::Compromised => self.config.node_parameters.p_crash_compromised,
                NodeState::Crashed => 0.0,
            };
            if node.state != NodeState::Crashed && self.rng.random::<f64>() < crash_probability {
                node.state = NodeState::Crashed;
            }

            // IDS observation.
            let step_intensity = node.attacker.step_intensity(&node.container);
            let alerts = node
                .ids
                .sample_alerts(node.state, step_intensity, &mut self.rng);

            // Local decision.
            if node.state == NodeState::Crashed {
                reports.push(None);
                continue;
            }
            let decision = node.strategy.observe_and_decide(alerts);
            if node.strategy.wants_additional_node(alerts as f64) {
                baseline_wants_node = true;
            }
            // Baselines report no belief; `reported_belief` approximates
            // with the prior so eviction handling still works uniformly.
            reports.push(Some(
                node.strategy
                    .reported_belief(self.config.node_parameters.p_attack),
            ));
            if decision == RecoveryDecision::Recover {
                let belief = node.strategy.belief().unwrap_or(1.0);
                recovery_requests.push((index, belief));
            }
        }

        // --- Enforce at most k parallel recoveries, preferring the highest
        //     beliefs (the implementation-level constraint of Problem 1). ---
        recovery_requests
            .sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        recovery_requests.truncate(self.config.parallel_recoveries.max(1));
        let recoveries_started = recovery_requests.len();
        for (index, _) in &recovery_requests {
            let node = &mut self.nodes[*index];
            if let Some(started) = node.compromise_started.take() {
                self.metrics.record_recovery_delay(time_step - started);
            }
            // The replica is replaced by a fresh, randomly drawn container.
            let rebuilt = {
                let mut rng = StdRng::seed_from_u64(self.rng.random::<u64>());
                self.build_node(&mut rng)?
            };
            let was_controller = self.nodes[*index].strategy.is_controller();
            self.nodes[*index] = rebuilt;
            if !was_controller {
                // Baselines restart their period after an actual recovery.
                self.nodes[*index].strategy.notify_recovered();
            }
            self.recoveries += 1;
            if let Some(cluster) = cluster.as_deref_mut() {
                if cluster.membership().contains(&(*index as u32)) {
                    cluster.recover_replica(*index as u32);
                }
            }
        }

        // --- Global level: evictions and additions. ---
        let mut added = false;
        if let Some(system) = self.system_controller.as_mut() {
            let decision = system.decide(&reports, &mut self.rng);
            // Evict crashed nodes (highest index first so removal is stable).
            let mut evict = decision.evict.clone();
            evict.sort_unstable_by(|a, b| b.cmp(a));
            for index in evict {
                if index < self.nodes.len() {
                    self.nodes.remove(index);
                    self.nodes_evicted += 1;
                    if let Some(cluster) = cluster.as_deref_mut() {
                        if cluster.membership().contains(&(index as u32)) {
                            cluster.evict_replica(index as u32);
                        }
                    }
                }
            }
            if decision.add_node && self.nodes.len() < self.config.max_nodes {
                added = true;
            }
        } else {
            // Baselines: crashed nodes simply stay (they do not manage the
            // replication factor); PERIODIC-ADAPTIVE may add a node.
            if baseline_wants_node && self.nodes.len() < self.config.max_nodes {
                added = true;
            }
        }
        if added {
            let new_node = {
                let mut rng = StdRng::seed_from_u64(self.rng.random::<u64>());
                self.build_node(&mut rng)?
            };
            self.nodes.push(new_node);
            self.nodes_added += 1;
            if let Some(cluster) = cluster {
                cluster.add_replica();
            }
        }

        // --- Record the step metrics. ---
        let failed_nodes = self
            .nodes
            .iter()
            .filter(|n| n.state != NodeState::Healthy)
            .count();
        self.metrics
            .record_step(failed_nodes, fault_threshold, recoveries_started);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tolerance_core::baselines::BaselineKind;

    fn config(strategy: StrategyKind, delta_r: Option<u32>, seed: u64) -> EmulationConfig {
        EmulationConfig {
            initial_nodes: 6,
            horizon: 300,
            strategy,
            delta_r,
            seed,
            ..EmulationConfig::default()
        }
    }

    #[test]
    fn fault_threshold_matches_appendix_e() {
        let c = EmulationConfig {
            initial_nodes: 3,
            ..EmulationConfig::default()
        };
        assert_eq!(c.fault_threshold(), 1);
        let c = EmulationConfig {
            initial_nodes: 6,
            ..EmulationConfig::default()
        };
        assert_eq!(c.fault_threshold(), 2);
        let c = EmulationConfig {
            initial_nodes: 9,
            ..EmulationConfig::default()
        };
        assert_eq!(c.fault_threshold(), 2, "capped at 2");
    }

    #[test]
    fn tolerance_run_keeps_high_availability_and_low_ttr() {
        let mut emulation = Emulation::new(config(StrategyKind::Tolerance, None, 1)).unwrap();
        let outcome = emulation.run().unwrap();
        assert!(
            outcome.metrics.availability > 0.9,
            "TOLERANCE availability {} too low",
            outcome.metrics.availability
        );
        assert!(
            outcome.metrics.time_to_recovery < 20.0,
            "TOLERANCE time-to-recovery {} too high",
            outcome.metrics.time_to_recovery
        );
        assert!(outcome.recoveries > 0);
        assert!(outcome.metrics.recovery_frequency > 0.0);
    }

    #[test]
    fn jitter_with_large_crash_probabilities_does_not_panic() {
        // Regression: the heterogeneity clamp floor (2 * p_C1) must never
        // exceed its 0.5 cap, even for extreme configured crash rates.
        // p_C1 = 0.3 makes the old floor (2 * p_C1 = 0.6) exceed the 0.5
        // cap; p_C2 = 0.9 keeps the base parameters valid under Theorem 1.
        let mut cfg = config(StrategyKind::Tolerance, None, 9);
        cfg.parameter_jitter = 0.9;
        cfg.node_parameters.p_crash_healthy = 0.3;
        cfg.node_parameters.p_crash_compromised = 0.9;
        cfg.horizon = 20;
        let outcome = Emulation::new(cfg).unwrap().run().unwrap();
        assert!((0.0..=1.0).contains(&outcome.metrics.availability));
    }

    #[test]
    fn no_recovery_run_collapses() {
        let mut emulation = Emulation::new(config(
            StrategyKind::Baseline(BaselineKind::NoRecovery),
            None,
            2,
        ))
        .unwrap();
        let outcome = emulation.run().unwrap();
        assert!(
            outcome.metrics.availability < 0.5,
            "NO-RECOVERY availability {} should collapse",
            outcome.metrics.availability
        );
        assert_eq!(outcome.recoveries, 0);
        assert_eq!(outcome.metrics.recovery_frequency, 0.0);
        // Unrecovered intrusions are charged the cap.
        assert!(outcome.metrics.time_to_recovery > 500.0);
    }

    #[test]
    fn periodic_baseline_sits_between_tolerance_and_no_recovery() {
        let mut tolerance = Emulation::new(config(StrategyKind::Tolerance, Some(15), 3)).unwrap();
        let tolerance_outcome = tolerance.run().unwrap();
        let mut periodic = Emulation::new(config(
            StrategyKind::Baseline(BaselineKind::Periodic),
            Some(15),
            3,
        ))
        .unwrap();
        let periodic_outcome = periodic.run().unwrap();
        let mut none = Emulation::new(config(
            StrategyKind::Baseline(BaselineKind::NoRecovery),
            Some(15),
            3,
        ))
        .unwrap();
        let none_outcome = none.run().unwrap();

        assert!(periodic_outcome.metrics.availability > none_outcome.metrics.availability);
        assert!(
            tolerance_outcome.metrics.time_to_recovery < periodic_outcome.metrics.time_to_recovery,
            "feedback recovery must react faster than periodic ({} vs {})",
            tolerance_outcome.metrics.time_to_recovery,
            periodic_outcome.metrics.time_to_recovery
        );
    }

    #[test]
    fn periodic_adaptive_adds_nodes_on_bursts() {
        let mut adaptive = Emulation::new(config(
            StrategyKind::Baseline(BaselineKind::PeriodicAdaptive),
            Some(15),
            4,
        ))
        .unwrap();
        let outcome = adaptive.run().unwrap();
        assert!(
            outcome.nodes_added > 0,
            "the adaptive baseline should add nodes on alert bursts"
        );
        assert!(outcome.final_nodes <= 13);
    }

    #[test]
    fn tolerance_with_consensus_completes_requests_correctly() {
        let mut emulation = Emulation::new(EmulationConfig {
            initial_nodes: 4,
            horizon: 40,
            strategy: StrategyKind::Tolerance,
            seed: 5,
            ..EmulationConfig::default()
        })
        .unwrap();
        let (outcome, success_rate) = emulation.run_with_consensus(40).unwrap();
        assert!(outcome.metrics.availability > 0.8);
        assert!(
            success_rate > 0.8,
            "most client requests should complete despite intrusions, got {success_rate}"
        );
    }

    #[test]
    fn node_count_never_exceeds_the_maximum() {
        let mut emulation = Emulation::new(EmulationConfig {
            initial_nodes: 9,
            max_nodes: 10,
            horizon: 200,
            strategy: StrategyKind::Tolerance,
            seed: 6,
            ..EmulationConfig::default()
        })
        .unwrap();
        let outcome = emulation.run().unwrap();
        assert!(outcome.final_nodes <= 10);
        assert!(emulation.num_nodes() <= 10);
        assert_eq!(emulation.config().max_nodes, 10);
    }
}
