//! The built-in scenario catalogue of the emulated testbed.
//!
//! Every entry is an [`EmulationScenario`] registered by name in a
//! [`ScenarioRegistry`], so workloads are declared as data and executed
//! through the shared [`Runner`](tolerance_core::runtime::Runner) rather
//! than through bespoke run loops. The catalogue contains the paper's
//! Table-7 strategies plus workloads **beyond** the paper's grid:
//!
//! * `bursty-attacker` — a campaign-style attacker that concentrates the
//!   same average intrusion pressure into short bursts
//!   ([`AttackProfile::Bursty`]).
//! * `heterogeneous-nodes` — a fleet whose per-node attack/crash
//!   probabilities are jittered by ±60%, breaking the identical-node
//!   assumption of the paper's evaluation.

use crate::attacker::AttackProfile;
use crate::emulation::{EmulationConfig, StrategyKind};
use crate::eval::EmulationScenario;
use tolerance_core::runtime::{MetricScenario, ScenarioRegistry};

/// Horizon used by the registered scenarios: long enough for the metrics to
/// stabilize, short enough for registry-driven sweeps to stay interactive.
pub const REGISTRY_HORIZON: u32 = 300;

fn base_config(strategy: StrategyKind) -> EmulationConfig {
    EmulationConfig {
        initial_nodes: 6,
        delta_r: Some(15),
        strategy,
        horizon: REGISTRY_HORIZON,
        ..EmulationConfig::default()
    }
}

/// The configuration of the `bursty-attacker` scenario: TOLERANCE facing a
/// campaign attacker that is dormant for 40 of every 50 steps and attacks
/// at 5× pressure for the remaining 10.
pub fn bursty_attacker_config() -> EmulationConfig {
    EmulationConfig {
        attack_profile: AttackProfile::Bursty {
            period: 50,
            active_steps: 10,
            multiplier: 5.0,
        },
        ..base_config(StrategyKind::Tolerance)
    }
}

/// The configuration of the `heterogeneous-nodes` scenario: TOLERANCE over
/// a fleet whose per-node attack/crash probabilities vary by ±60%.
pub fn heterogeneous_nodes_config() -> EmulationConfig {
    EmulationConfig {
        parameter_jitter: 0.6,
        ..base_config(StrategyKind::Tolerance)
    }
}

/// Builds the registry of built-in emulation scenarios: one entry per
/// Table-7 strategy (at `N_1 = 6`, `Δ_R = 15`) under `paper/<strategy>`,
/// the non-paper workloads described in the module docs, the
/// fault-injection scenarios of the simnet harness (`simnet/*`), so
/// experiment sweeps treat fault intensity like any other grid axis, the
/// multi-shard fleet scenarios (`sharded/*`: per-shard chaos with the
/// routing/atomicity oracles and the fleet control plane), the service
/// data-plane throughput workloads (`dataplane/*`: closed-loop batching
/// comparison and open-loop Poisson arrival), and the closed-loop
/// control-plane scenarios (`controlled/*`: the live two-level loop on the
/// threaded service plus its oracle-checked simnet twin).
pub fn builtin_registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    for strategy in StrategyKind::paper_set() {
        register_config(
            &mut registry,
            format!("paper/{}", strategy.name()),
            base_config(strategy),
        );
    }
    register_config(&mut registry, "bursty-attacker", bursty_attacker_config());
    register_config(
        &mut registry,
        "heterogeneous-nodes",
        heterogeneous_nodes_config(),
    );
    tolerance_core::simnet::register_simnet_scenarios(&mut registry);
    tolerance_core::simnet::register_sharded_scenarios(&mut registry);
    tolerance_core::simnet::register_adversary_scenarios(&mut registry);
    crate::chaos::register_chaos_scenarios(&mut registry);
    tolerance_core::dataplane::register_dataplane_scenarios(&mut registry);
    tolerance_core::controlplane::register_controlled_scenarios(&mut registry);
    registry
}

/// Registers an emulation configuration as a named scenario.
pub fn register_config(
    registry: &mut ScenarioRegistry,
    name: impl Into<String>,
    config: EmulationConfig,
) {
    registry.register(name, move || {
        Ok(Box::new(EmulationScenario::new(config.clone())) as Box<dyn MetricScenario>)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use tolerance_core::runtime::Runner;

    #[test]
    fn builtin_registry_contains_paper_novel_and_simnet_scenarios() {
        let registry = builtin_registry();
        assert_eq!(registry.len(), 51);
        for name in [
            "paper/tolerance",
            "paper/no-recovery",
            "paper/periodic",
            "paper/periodic-adaptive",
            "bursty-attacker",
            "heterogeneous-nodes",
            "simnet/chaos-light",
            "simnet/chaos-heavy",
            "simnet/partition-churn",
            "simnet/attacker-campaign",
            "sharded/chaos-2",
            "sharded/chaos-4",
            "sharded/multiput",
            "sharded/fleet-controlled",
            "dataplane/closed-b1",
            "dataplane/closed-b16",
            "dataplane/open-poisson",
            "dataplane/load-swing",
            "controlled/intrusion-burst",
            "controlled/uncontrolled-baseline",
            "controlled/sim-intrusion-burst",
            "adversary/equivocating-leader/sync",
            "adversary/vote-withholding/gst",
            "adversary/delayed-votes/storm",
            "adversary/lying-donor/sync",
            "adversary/reply-suppression/gst",
            "adversary/sharded/equivocating-leader/gst",
            "adversary/sharded/reply-suppression/storm",
        ] {
            assert!(registry.contains(name), "missing scenario {name}");
        }
        // The live threaded scenarios are wall-clock: registered without a
        // replay guarantee, while the simnet twin stays deterministic.
        assert!(!registry.is_deterministic("controlled/intrusion-burst"));
        assert!(!registry.is_deterministic("controlled/uncontrolled-baseline"));
        assert!(registry.is_deterministic("controlled/sim-intrusion-burst"));
        assert!(registry.is_deterministic("sharded/chaos-2"));
        assert!(registry.is_deterministic("adversary/equivocating-leader/gst"));
        assert_eq!(registry.deterministic_names().len(), 49);
    }

    #[test]
    fn novel_scenarios_extend_the_paper_grid() {
        let bursty = bursty_attacker_config();
        assert_ne!(bursty.attack_profile, AttackProfile::Constant);
        let heterogeneous = heterogeneous_nodes_config();
        assert!(heterogeneous.parameter_jitter > 0.0);
        // Both differ from every paper cell, which uses the default profile
        // and an identical fleet.
        let paper = base_config(StrategyKind::Tolerance);
        assert_eq!(paper.attack_profile, AttackProfile::Constant);
        assert_eq!(paper.parameter_jitter, 0.0);
    }

    #[test]
    fn registered_scenarios_run_through_the_runner() {
        let registry = builtin_registry();
        let runner = Runner::parallel();
        let seeds = [0, 1];
        for name in ["bursty-attacker", "heterogeneous-nodes"] {
            let run = registry.run(name, &runner, &seeds).unwrap();
            assert_eq!(run.reports.len(), 2, "{name}");
            assert_eq!(run.summary.samples, 2, "{name}");
            for report in &run.reports {
                assert!((0.0..=1.0).contains(&report.availability), "{name}");
                assert_eq!(report.steps, u64::from(REGISTRY_HORIZON), "{name}");
            }
        }
    }

    #[test]
    fn bursty_attacks_change_the_outcome_relative_to_constant_pressure() {
        let registry = builtin_registry();
        let runner = Runner::parallel();
        let seeds: Vec<u64> = (0..3).collect();
        let constant = registry.run("paper/tolerance", &runner, &seeds).unwrap();
        let bursty = registry.run("bursty-attacker", &runner, &seeds).unwrap();
        assert_ne!(
            constant.reports, bursty.reports,
            "the burst profile must actually alter the closed-loop dynamics"
        );
    }
}
