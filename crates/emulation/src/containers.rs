//! The replica container catalogue of the paper's testbed.
//!
//! Table 4 lists the ten container configurations (operating system and
//! vulnerabilities), Table 5 their background services and Table 6 the
//! attacker's intrusion steps against each. When a replica is recovered or a
//! node is added, the emulation picks a configuration uniformly at random
//! from this catalogue, exactly as the testbed does (Section VIII-A) — this
//! is the software-diversification mechanism that keeps compromise events
//! statistically independent across nodes.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A single intrusion step of a playbook (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntrusionStep {
    /// TCP SYN reconnaissance scan.
    TcpSynScan,
    /// ICMP ping sweep.
    IcmpScan,
    /// Credential brute force against a login service.
    BruteForce,
    /// Exploitation of a concrete CVE / CWE.
    Exploit,
}

impl IntrusionStep {
    /// Relative amount of extra IDS noise the step generates (scans are loud,
    /// exploits are comparatively quiet).
    pub fn alert_intensity(self) -> f64 {
        match self {
            IntrusionStep::TcpSynScan => 1.0,
            IntrusionStep::IcmpScan => 0.6,
            IntrusionStep::BruteForce => 1.5,
            IntrusionStep::Exploit => 0.8,
        }
    }
}

/// One replica container configuration (a row of Table 4).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ContainerConfig {
    /// Replica identifier in Table 4 (1–10).
    pub id: u8,
    /// Operating system of the container image.
    pub operating_system: &'static str,
    /// The vulnerabilities the attacker exploits.
    pub vulnerabilities: &'static [&'static str],
    /// Background services running alongside the replica (Table 5).
    pub background_services: &'static [&'static str],
    /// The attacker's intrusion playbook against this container (Table 6).
    pub intrusion_steps: &'static [IntrusionStep],
    /// Relative detectability: how strongly an intrusion separates the alert
    /// distribution from the healthy one (brute-force attacks are much
    /// louder than single CVE exploits, cf. Fig. 11).
    pub detectability: f64,
}

/// The full catalogue of Table 4.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ContainerCatalog {
    containers: Vec<ContainerConfig>,
}

impl Default for ContainerCatalog {
    fn default() -> Self {
        ContainerCatalog::paper_catalog()
    }
}

impl ContainerCatalog {
    /// The ten container configurations of Table 4 with their services
    /// (Table 5) and intrusion playbooks (Table 6).
    pub fn paper_catalog() -> Self {
        use IntrusionStep::*;
        let containers = vec![
            ContainerConfig {
                id: 1,
                operating_system: "ubuntu-14",
                vulnerabilities: &["ftp-weak-password"],
                background_services: &["ftp", "ssh", "mongodb", "http", "teamspeak"],
                intrusion_steps: &[TcpSynScan, BruteForce],
                detectability: 1.6,
            },
            ContainerConfig {
                id: 2,
                operating_system: "ubuntu-20",
                vulnerabilities: &["ssh-weak-password"],
                background_services: &["ssh", "dns", "http"],
                intrusion_steps: &[TcpSynScan, BruteForce],
                detectability: 1.6,
            },
            ContainerConfig {
                id: 3,
                operating_system: "ubuntu-20",
                vulnerabilities: &["telnet-weak-password"],
                background_services: &["ssh", "telnet", "http"],
                intrusion_steps: &[TcpSynScan, BruteForce],
                detectability: 1.6,
            },
            ContainerConfig {
                id: 4,
                operating_system: "debian-10.2",
                vulnerabilities: &["cve-2017-7494"],
                background_services: &["ssh", "samba", "ntp"],
                intrusion_steps: &[IcmpScan, Exploit],
                detectability: 1.0,
            },
            ContainerConfig {
                id: 5,
                operating_system: "ubuntu-20",
                vulnerabilities: &["cve-2014-6271"],
                background_services: &["ssh"],
                intrusion_steps: &[IcmpScan, Exploit],
                detectability: 1.0,
            },
            ContainerConfig {
                id: 6,
                operating_system: "debian-10.2",
                vulnerabilities: &["cwe-89-dvwa"],
                background_services: &["dvwa", "irc", "ssh"],
                intrusion_steps: &[IcmpScan, Exploit],
                detectability: 0.9,
            },
            ContainerConfig {
                id: 7,
                operating_system: "debian-10.2",
                vulnerabilities: &["cve-2015-3306"],
                background_services: &["ssh"],
                intrusion_steps: &[IcmpScan, Exploit],
                detectability: 1.0,
            },
            ContainerConfig {
                id: 8,
                operating_system: "debian-10.2",
                vulnerabilities: &["cve-2016-10033"],
                background_services: &["ssh"],
                intrusion_steps: &[IcmpScan, Exploit],
                detectability: 0.9,
            },
            ContainerConfig {
                id: 9,
                operating_system: "debian-10.2",
                vulnerabilities: &["cve-2010-0426", "ssh-weak-password"],
                background_services: &["teamspeak", "http", "ssh"],
                intrusion_steps: &[IcmpScan, BruteForce, Exploit],
                detectability: 1.3,
            },
            ContainerConfig {
                id: 10,
                operating_system: "debian-10.2",
                vulnerabilities: &["cve-2015-5602", "ssh-weak-password"],
                background_services: &["ssh"],
                intrusion_steps: &[IcmpScan, BruteForce, Exploit],
                detectability: 1.3,
            },
        ];
        ContainerCatalog { containers }
    }

    /// All configurations.
    pub fn containers(&self) -> &[ContainerConfig] {
        &self.containers
    }

    /// Number of configurations (10 in the paper).
    pub fn len(&self) -> usize {
        self.containers.len()
    }

    /// Whether the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.containers.is_empty()
    }

    /// The configuration with the given Table 4 identifier.
    pub fn by_id(&self, id: u8) -> Option<&ContainerConfig> {
        self.containers.iter().find(|c| c.id == id)
    }

    /// Picks a configuration uniformly at random (used when a replica is
    /// recovered or a node is added — software diversification).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &ContainerConfig {
        let index = rng.random_range(0..self.containers.len());
        &self.containers[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn catalogue_matches_table4_structure() {
        let catalogue = ContainerCatalog::paper_catalog();
        assert_eq!(catalogue.len(), 10);
        assert!(!catalogue.is_empty());
        // Every container has at least one vulnerability, one background
        // service and a playbook that starts with reconnaissance.
        for c in catalogue.containers() {
            assert!(
                !c.vulnerabilities.is_empty(),
                "container {} has no vulnerabilities",
                c.id
            );
            assert!(!c.background_services.is_empty());
            assert!(!c.intrusion_steps.is_empty());
            assert!(matches!(
                c.intrusion_steps[0],
                IntrusionStep::TcpSynScan | IntrusionStep::IcmpScan
            ));
            assert!(c.detectability > 0.0);
        }
        // Specific rows from Table 4.
        assert_eq!(
            catalogue.by_id(4).unwrap().vulnerabilities,
            &["cve-2017-7494"]
        );
        assert_eq!(catalogue.by_id(9).unwrap().intrusion_steps.len(), 3);
        assert!(catalogue.by_id(42).is_none());
    }

    #[test]
    fn brute_force_targets_are_more_detectable_than_cve_exploits() {
        let catalogue = ContainerCatalog::paper_catalog();
        let brute = catalogue.by_id(1).unwrap().detectability;
        let exploit = catalogue.by_id(6).unwrap().detectability;
        assert!(brute > exploit);
    }

    #[test]
    fn sampling_covers_the_catalogue() {
        let catalogue = ContainerCatalog::paper_catalog();
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(catalogue.sample(&mut rng).id);
        }
        assert_eq!(
            seen.len(),
            10,
            "all ten containers should be drawn eventually"
        );
    }

    #[test]
    fn step_intensities_are_positive_and_ordered() {
        assert!(
            IntrusionStep::BruteForce.alert_intensity() > IntrusionStep::Exploit.alert_intensity()
        );
        assert!(
            IntrusionStep::TcpSynScan.alert_intensity() > IntrusionStep::IcmpScan.alert_intensity()
        );
    }

    #[test]
    fn default_is_the_paper_catalogue() {
        assert_eq!(
            ContainerCatalog::default(),
            ContainerCatalog::paper_catalog()
        );
    }
}
