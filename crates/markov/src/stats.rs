//! Summary statistics, confidence intervals and information-theoretic
//! divergences.
//!
//! Every table and figure in the paper reports means with 95% confidence
//! intervals based on the Student-t distribution over 20 random seeds
//! (Appendix E); [`SummaryStatistics`] and [`confidence_interval_95`]
//! reproduce that computation. Figures 14 and 18 additionally report
//! Kullback–Leibler divergences between alert distributions, provided by
//! [`kl_divergence`].

use crate::error::{MarkovError, Result};

/// Two-sided 97.5% quantiles of the Student-t distribution for small degrees
/// of freedom (1..=30), used to build 95% confidence intervals.
const T_975: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Returns the 97.5% Student-t quantile for `df` degrees of freedom
/// (normal-approximation 1.96 for `df > 30`).
pub fn t_quantile_975(df: usize) -> f64 {
    if df == 0 {
        f64::INFINITY
    } else if df <= 30 {
        T_975[df - 1]
    } else {
        1.96
    }
}

/// Mean, standard deviation and 95% confidence half-width of a sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SummaryStatistics {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected).
    pub std_dev: f64,
    /// Half-width of the 95% Student-t confidence interval.
    pub ci95_half_width: f64,
    /// Number of samples.
    pub count: usize,
}

impl SummaryStatistics {
    /// Computes summary statistics of a sample.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::EmptyInput`] for an empty sample.
    pub fn from_samples(samples: &[f64]) -> Result<Self> {
        if samples.is_empty() {
            return Err(MarkovError::EmptyInput("samples"));
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let std_dev = variance.sqrt();
        let half_width = if n > 1 {
            t_quantile_975(n - 1) * std_dev / (n as f64).sqrt()
        } else {
            0.0
        };
        Ok(SummaryStatistics {
            mean,
            std_dev,
            ci95_half_width: half_width,
            count: n,
        })
    }

    /// Formats the statistic as `mean ± ci`, as printed in the paper's tables.
    pub fn format_pm(&self, decimals: usize) -> String {
        format!(
            "{:.*} ± {:.*}",
            decimals, self.mean, decimals, self.ci95_half_width
        )
    }
}

/// Convenience wrapper returning `(mean, 95% CI half-width)`.
///
/// # Errors
///
/// Returns [`MarkovError::EmptyInput`] for an empty sample.
pub fn confidence_interval_95(samples: &[f64]) -> Result<(f64, f64)> {
    let stats = SummaryStatistics::from_samples(samples)?;
    Ok((stats.mean, stats.ci95_half_width))
}

/// Kullback–Leibler divergence `D_KL(p ‖ q)` between two discrete
/// distributions given as probability vectors.
///
/// Terms with `p[i] = 0` contribute zero. Terms with `p[i] > 0` and
/// `q[i] = 0` make the divergence infinite.
///
/// # Errors
///
/// Returns [`MarkovError::DimensionMismatch`] if the vectors have different
/// lengths and [`MarkovError::EmptyInput`] if they are empty.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Result<f64> {
    if p.is_empty() {
        return Err(MarkovError::EmptyInput("distribution"));
    }
    if p.len() != q.len() {
        return Err(MarkovError::DimensionMismatch {
            expected: format!("length {}", p.len()),
            found: format!("length {}", q.len()),
        });
    }
    let mut divergence = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi <= 0.0 {
            continue;
        }
        if qi <= 0.0 {
            return Ok(f64::INFINITY);
        }
        divergence += pi * (pi / qi).ln();
    }
    Ok(divergence)
}

/// Jensen–Shannon divergence, a bounded symmetric alternative to the KL
/// divergence (used by tests and the sensitivity sweep to order detection
/// models whose KL divergence is infinite).
///
/// # Errors
///
/// Same conditions as [`kl_divergence`].
pub fn js_divergence(p: &[f64], q: &[f64]) -> Result<f64> {
    if p.len() != q.len() {
        return Err(MarkovError::DimensionMismatch {
            expected: format!("length {}", p.len()),
            found: format!("length {}", q.len()),
        });
    }
    let m: Vec<f64> = p.iter().zip(q).map(|(a, b)| 0.5 * (a + b)).collect();
    Ok(0.5 * kl_divergence(p, &m)? + 0.5 * kl_divergence(q, &m)?)
}

/// Empirical mean of a slice (0 for an empty slice).
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn summary_statistics_known_values() {
        let stats =
            SummaryStatistics::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_close(stats.mean, 5.0, 1e-12);
        assert_close(stats.std_dev, (32.0f64 / 7.0).sqrt(), 1e-12);
        assert_eq!(stats.count, 8);
        assert!(stats.ci95_half_width > 0.0);
        assert!(stats.format_pm(2).contains("5.00 ±"));
    }

    #[test]
    fn single_sample_has_zero_interval() {
        let stats = SummaryStatistics::from_samples(&[3.0]).unwrap();
        assert_eq!(stats.std_dev, 0.0);
        assert_eq!(stats.ci95_half_width, 0.0);
        assert!(SummaryStatistics::from_samples(&[]).is_err());
    }

    #[test]
    fn t_quantile_monotone_towards_normal() {
        assert!(t_quantile_975(1) > t_quantile_975(5));
        assert!(t_quantile_975(5) > t_quantile_975(19));
        assert_close(t_quantile_975(100), 1.96, 1e-12);
        assert_eq!(t_quantile_975(0), f64::INFINITY);
    }

    #[test]
    fn confidence_interval_20_seeds_matches_paper_setup() {
        // The paper uses 20 seeds: df = 19, t = 2.093.
        let samples: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let (mean, ci) = confidence_interval_95(&samples).unwrap();
        assert_close(mean, 9.5, 1e-12);
        let std = SummaryStatistics::from_samples(&samples).unwrap().std_dev;
        assert_close(ci, 2.093 * std / 20f64.sqrt(), 1e-9);
    }

    #[test]
    fn kl_divergence_properties() {
        let p = vec![0.5, 0.5];
        let q = vec![0.9, 0.1];
        let d_pq = kl_divergence(&p, &q).unwrap();
        let d_qp = kl_divergence(&q, &p).unwrap();
        assert!(d_pq > 0.0 && d_qp > 0.0);
        assert!((kl_divergence(&p, &p).unwrap()).abs() < 1e-12);
        // Asymmetric in general.
        assert!((d_pq - d_qp).abs() > 1e-3);
        // Infinite when q has a zero where p has mass.
        assert_eq!(
            kl_divergence(&[1.0, 0.0], &[0.0, 1.0]).unwrap(),
            f64::INFINITY
        );
        // Dimension and emptiness errors.
        assert!(kl_divergence(&[0.5, 0.5], &[1.0]).is_err());
        assert!(kl_divergence(&[], &[]).is_err());
    }

    #[test]
    fn js_divergence_is_symmetric_and_bounded() {
        let p = vec![0.9, 0.1, 0.0];
        let q = vec![0.1, 0.1, 0.8];
        let d1 = js_divergence(&p, &q).unwrap();
        let d2 = js_divergence(&q, &p).unwrap();
        assert_close(d1, d2, 1e-12);
        assert!(d1 <= std::f64::consts::LN_2 + 1e-12);
        assert!(d1 > 0.0);
    }

    #[test]
    fn mean_of_empty_slice_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_close(mean(&[1.0, 2.0, 3.0]), 2.0, 1e-12);
    }
}
