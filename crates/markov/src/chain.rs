//! Finite discrete-time Markov chains.
//!
//! Provides the analysis primitives of Appendix F of the paper: mean hitting
//! times (mean time to failure, Fig. 6a), reliability functions computed from
//! the Chapman–Kolmogorov equation (Fig. 6b), n-step transition matrices and
//! stationary distributions.

use crate::error::{MarkovError, Result};
use crate::linalg::Matrix;
use rand::Rng;

/// Tolerance used when validating that rows are probability distributions.
const STOCHASTIC_TOLERANCE: f64 = 1e-8;

/// A finite discrete-time Markov chain described by a row-stochastic
/// transition matrix.
///
/// # Example
///
/// ```
/// use tolerance_markov::chain::MarkovChain;
///
/// // Birth-death chain on {0, 1, 2} with absorbing state 0.
/// let chain = MarkovChain::new(vec![
///     vec![1.0, 0.0, 0.0],
///     vec![0.2, 0.5, 0.3],
///     vec![0.0, 0.3, 0.7],
/// ]).unwrap();
/// let hit = chain.mean_hitting_time(&[0]).unwrap();
/// assert!(hit[2] > hit[1]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovChain {
    transition: Matrix,
}

impl MarkovChain {
    /// Creates a chain from nested transition rows.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NotStochastic`] if any row has negative entries
    /// or does not sum to one, [`MarkovError::DimensionMismatch`] if the
    /// matrix is not square, and [`MarkovError::EmptyInput`] if it is empty.
    pub fn new(rows: Vec<Vec<f64>>) -> Result<Self> {
        let matrix = Matrix::from_rows(rows)?;
        MarkovChain::from_matrix(matrix)
    }

    /// Creates a chain from an existing matrix.
    ///
    /// # Errors
    ///
    /// Same as [`MarkovChain::new`].
    pub fn from_matrix(transition: Matrix) -> Result<Self> {
        if transition.rows() != transition.cols() {
            return Err(MarkovError::DimensionMismatch {
                expected: "square transition matrix".into(),
                found: format!("{}x{}", transition.rows(), transition.cols()),
            });
        }
        for r in 0..transition.rows() {
            let row = transition.row(r);
            if row.iter().any(|&p| p < -STOCHASTIC_TOLERANCE) {
                return Err(MarkovError::NotStochastic {
                    row: r,
                    sum: f64::NAN,
                });
            }
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > STOCHASTIC_TOLERANCE {
                return Err(MarkovError::NotStochastic { row: r, sum });
            }
        }
        Ok(MarkovChain { transition })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transition.rows()
    }

    /// The transition matrix.
    pub fn transition_matrix(&self) -> &Matrix {
        &self.transition
    }

    /// One-step transition probability `P[s -> s']`.
    ///
    /// # Panics
    ///
    /// Panics if either state index is out of bounds.
    pub fn transition_probability(&self, from: usize, to: usize) -> f64 {
        self.transition[(from, to)]
    }

    /// The `t`-step transition matrix `P^t` (Chapman–Kolmogorov).
    ///
    /// # Errors
    ///
    /// Propagates matrix-power errors (which cannot occur for a validated
    /// square chain but are kept for API uniformity).
    pub fn n_step_matrix(&self, t: u32) -> Result<Matrix> {
        self.transition.pow(t)
    }

    /// Propagates an initial distribution `t` steps forward.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if the distribution length
    /// does not match the number of states.
    pub fn propagate(&self, initial: &[f64], t: u32) -> Result<Vec<f64>> {
        let mut dist = initial.to_vec();
        for _ in 0..t {
            dist = self.transition.vec_mul(&dist)?;
        }
        Ok(dist)
    }

    /// Mean hitting time of the target set from every state.
    ///
    /// For states inside `targets` the hitting time is zero; for the others
    /// it solves the standard linear system
    /// `h(s) = 1 + Σ_{s' ∉ T} P[s -> s'] h(s')`.
    ///
    /// This computes the mean time to failure of Appendix F when `targets`
    /// is the failure set `{0, ..., f}`.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::EmptyInput`] if `targets` is empty.
    /// * [`MarkovError::InvalidParameter`] if a target index is out of range.
    /// * [`MarkovError::NoSolution`] if the target set is not reachable from
    ///   some state (the linear system is singular).
    pub fn mean_hitting_time(&self, targets: &[usize]) -> Result<Vec<f64>> {
        if targets.is_empty() {
            return Err(MarkovError::EmptyInput("targets"));
        }
        let n = self.num_states();
        let mut is_target = vec![false; n];
        for &t in targets {
            if t >= n {
                return Err(MarkovError::InvalidParameter {
                    name: "targets",
                    reason: format!("state {t} out of range (chain has {n} states)"),
                });
            }
            is_target[t] = true;
        }
        let transient: Vec<usize> = (0..n).filter(|&s| !is_target[s]).collect();
        if transient.is_empty() {
            return Ok(vec![0.0; n]);
        }
        // Build (I - Q) h = 1 over the transient states.
        let m = transient.len();
        let mut a = Matrix::zeros(m, m);
        for (i, &s) in transient.iter().enumerate() {
            for (j, &s2) in transient.iter().enumerate() {
                a[(i, j)] = if i == j { 1.0 } else { 0.0 } - self.transition[(s, s2)];
            }
        }
        let h = a.solve(&vec![1.0; m]).map_err(|_| {
            MarkovError::NoSolution("target set unreachable from some state".into())
        })?;
        let mut result = vec![0.0; n];
        for (i, &s) in transient.iter().enumerate() {
            result[s] = h[i];
        }
        Ok(result)
    }

    /// Probability of having hit the target set by time `t`, from the given
    /// start state, assuming the target set is made absorbing.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MarkovChain::mean_hitting_time`] plus an
    /// out-of-range start state.
    pub fn hitting_probability_by(&self, start: usize, targets: &[usize], t: u32) -> Result<f64> {
        if targets.is_empty() {
            return Err(MarkovError::EmptyInput("targets"));
        }
        let n = self.num_states();
        if start >= n {
            return Err(MarkovError::InvalidParameter {
                name: "start",
                reason: format!("state {start} out of range (chain has {n} states)"),
            });
        }
        let mut is_target = vec![false; n];
        for &tgt in targets {
            if tgt >= n {
                return Err(MarkovError::InvalidParameter {
                    name: "targets",
                    reason: format!("state {tgt} out of range (chain has {n} states)"),
                });
            }
            is_target[tgt] = true;
        }
        // Make targets absorbing, then propagate.
        let mut rows = Vec::with_capacity(n);
        for s in 0..n {
            if is_target[s] {
                let mut row = vec![0.0; n];
                row[s] = 1.0;
                rows.push(row);
            } else {
                rows.push(self.transition.row(s).to_vec());
            }
        }
        let absorbed = MarkovChain::new(rows)?;
        let mut initial = vec![0.0; n];
        initial[start] = 1.0;
        let dist = absorbed.propagate(&initial, t)?;
        Ok(dist
            .iter()
            .enumerate()
            .filter(|(s, _)| is_target[*s])
            .map(|(_, p)| p)
            .sum())
    }

    /// The reliability function `R(t) = P[T_fail > t]` of Appendix F, i.e. the
    /// probability that the chain started in `start` has **not** entered the
    /// failure set by time `t`, for `t = 0..=horizon`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MarkovChain::hitting_probability_by`].
    pub fn reliability_curve(
        &self,
        start: usize,
        failure_states: &[usize],
        horizon: u32,
    ) -> Result<Vec<f64>> {
        let mut curve = Vec::with_capacity(horizon as usize + 1);
        for t in 0..=horizon {
            curve.push(1.0 - self.hitting_probability_by(start, failure_states, t)?);
        }
        Ok(curve)
    }

    /// Stationary distribution computed by power iteration.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::NoSolution`] if power iteration does not
    /// converge within `max_iterations` (e.g. for periodic chains).
    pub fn stationary_distribution(
        &self,
        max_iterations: usize,
        tolerance: f64,
    ) -> Result<Vec<f64>> {
        let n = self.num_states();
        let mut dist = vec![1.0 / n as f64; n];
        for _ in 0..max_iterations {
            let next = self.transition.vec_mul(&dist)?;
            let diff: f64 = next.iter().zip(&dist).map(|(a, b)| (a - b).abs()).sum();
            dist = next;
            if diff < tolerance {
                return Ok(dist);
            }
        }
        Err(MarkovError::NoSolution(
            "power iteration did not converge".into(),
        ))
    }

    /// Samples a trajectory of length `steps + 1` (including the start state).
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    pub fn sample_path<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        start: usize,
        steps: usize,
    ) -> Vec<usize> {
        assert!(start < self.num_states(), "start state out of range");
        let mut path = Vec::with_capacity(steps + 1);
        let mut state = start;
        path.push(state);
        for _ in 0..steps {
            state = self.sample_next(rng, state);
            path.push(state);
        }
        path
    }

    /// Samples the successor of `state`.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn sample_next<R: Rng + ?Sized>(&self, rng: &mut R, state: usize) -> usize {
        assert!(state < self.num_states(), "state out of range");
        let row = self.transition.row(state);
        let mut u = rng.random::<f64>();
        for (next, &p) in row.iter().enumerate() {
            u -= p;
            if u <= 0.0 {
                return next;
            }
        }
        self.num_states() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    fn two_state(p_fail: f64) -> MarkovChain {
        MarkovChain::new(vec![vec![1.0 - p_fail, p_fail], vec![0.0, 1.0]]).unwrap()
    }

    #[test]
    fn validation_rejects_bad_matrices() {
        assert!(MarkovChain::new(vec![vec![0.5, 0.4], vec![0.0, 1.0]]).is_err());
        assert!(MarkovChain::new(vec![vec![1.1, -0.1], vec![0.0, 1.0]]).is_err());
        assert!(MarkovChain::new(vec![vec![0.5, 0.5, 0.0], vec![0.0, 1.0, 0.0]]).is_err());
        assert!(MarkovChain::new(vec![]).is_err());
    }

    #[test]
    fn mean_hitting_time_geometric() {
        // Time to absorb from state 0 is geometric with mean 1/p.
        let chain = two_state(0.1);
        let h = chain.mean_hitting_time(&[1]).unwrap();
        assert_close(h[0], 10.0, 1e-9);
        assert_close(h[1], 0.0, 1e-12);
    }

    #[test]
    fn mean_hitting_time_birth_death() {
        let chain = MarkovChain::new(vec![
            vec![1.0, 0.0, 0.0],
            vec![0.5, 0.0, 0.5],
            vec![0.0, 0.5, 0.5],
        ])
        .unwrap();
        let h = chain.mean_hitting_time(&[0]).unwrap();
        // Classic gambler's-ruin style values: h(1) = 4, h(2) = 6.
        assert_close(h[1], 4.0, 1e-9);
        assert_close(h[2], 6.0, 1e-9);
    }

    #[test]
    fn mean_hitting_time_errors() {
        let chain = two_state(0.1);
        assert!(chain.mean_hitting_time(&[]).is_err());
        assert!(chain.mean_hitting_time(&[5]).is_err());
        // Unreachable target: from state 1 (absorbing) state 0 is unreachable.
        let err = chain.mean_hitting_time(&[0]);
        assert!(err.is_err());
    }

    #[test]
    fn hitting_probability_matches_geometric_cdf() {
        let chain = two_state(0.1);
        for t in [0u32, 1, 5, 20] {
            let expected = 1.0 - 0.9f64.powi(t as i32);
            assert_close(
                chain.hitting_probability_by(0, &[1], t).unwrap(),
                expected,
                1e-12,
            );
        }
    }

    #[test]
    fn reliability_curve_is_monotone_decreasing() {
        let chain = two_state(0.05);
        let curve = chain.reliability_curve(0, &[1], 50).unwrap();
        assert_eq!(curve.len(), 51);
        assert_close(curve[0], 1.0, 1e-12);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn propagate_conserves_probability() {
        let chain = MarkovChain::new(vec![
            vec![0.9, 0.1, 0.0],
            vec![0.2, 0.7, 0.1],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap();
        let dist = chain.propagate(&[1.0, 0.0, 0.0], 25).unwrap();
        assert_close(dist.iter().sum::<f64>(), 1.0, 1e-9);
    }

    #[test]
    fn stationary_distribution_of_ergodic_chain() {
        let chain = MarkovChain::new(vec![vec![0.5, 0.5], vec![0.25, 0.75]]).unwrap();
        let pi = chain.stationary_distribution(10_000, 1e-12).unwrap();
        // Solve pi P = pi: pi = (1/3, 2/3).
        assert_close(pi[0], 1.0 / 3.0, 1e-6);
        assert_close(pi[1], 2.0 / 3.0, 1e-6);
    }

    #[test]
    fn n_step_matrix_rows_are_stochastic() {
        let chain = MarkovChain::new(vec![vec![0.5, 0.5], vec![0.25, 0.75]]).unwrap();
        let p5 = chain.n_step_matrix(5).unwrap();
        for r in 0..2 {
            assert_close(p5.row(r).iter().sum::<f64>(), 1.0, 1e-10);
        }
    }

    #[test]
    fn sample_path_stays_in_bounds_and_respects_absorption() {
        let chain = two_state(0.3);
        let mut rng = StdRng::seed_from_u64(7);
        let path = chain.sample_path(&mut rng, 0, 100);
        assert_eq!(path.len(), 101);
        let mut absorbed = false;
        for &s in &path {
            assert!(s < 2);
            if absorbed {
                assert_eq!(s, 1, "absorbing state must not be left");
            }
            if s == 1 {
                absorbed = true;
            }
        }
    }
}
