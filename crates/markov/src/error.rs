//! Error types for the `tolerance-markov` crate.

use std::fmt;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MarkovError>;

/// Errors produced by distribution constructors, Markov-chain analysis and
/// the linear-algebra helpers.
#[derive(Debug, Clone, PartialEq)]
pub enum MarkovError {
    /// A parameter was outside of its admissible range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A probability vector or matrix row did not sum to one (within tolerance)
    /// or contained negative entries.
    NotStochastic {
        /// Index of the offending row (or 0 for vectors).
        row: usize,
        /// The sum that was observed.
        sum: f64,
    },
    /// Matrix dimensions were incompatible with the requested operation.
    DimensionMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the shape that was provided.
        found: String,
    },
    /// A linear system was singular (or numerically close to singular).
    SingularMatrix,
    /// The requested quantity does not exist (e.g. hitting time of an
    /// unreachable set, stationary distribution of a periodic chain).
    NoSolution(String),
    /// An empty input was provided where at least one element is required.
    EmptyInput(&'static str),
}

impl fmt::Display for MarkovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkovError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            MarkovError::NotStochastic { row, sum } => {
                write!(
                    f,
                    "row {row} is not a probability distribution (sum = {sum})"
                )
            }
            MarkovError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MarkovError::SingularMatrix => write!(f, "matrix is singular or nearly singular"),
            MarkovError::NoSolution(why) => write!(f, "no solution: {why}"),
            MarkovError::EmptyInput(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl std::error::Error for MarkovError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = MarkovError::InvalidParameter {
            name: "alpha",
            reason: "must be positive".to_string(),
        };
        assert_eq!(
            err.to_string(),
            "invalid parameter `alpha`: must be positive"
        );

        let err = MarkovError::NotStochastic { row: 3, sum: 0.5 };
        assert!(err.to_string().contains("row 3"));

        let err = MarkovError::DimensionMismatch {
            expected: "3x3".into(),
            found: "2x3".into(),
        };
        assert!(err.to_string().contains("expected 3x3"));

        assert_eq!(
            MarkovError::SingularMatrix.to_string(),
            "matrix is singular or nearly singular"
        );
        assert!(MarkovError::NoSolution("unreachable".into())
            .to_string()
            .contains("unreachable"));
        assert!(MarkovError::EmptyInput("samples")
            .to_string()
            .contains("samples"));
    }

    #[test]
    fn error_is_send_sync_and_static() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<MarkovError>();
    }
}
