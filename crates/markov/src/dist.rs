//! Probability distributions used by the TOLERANCE models.
//!
//! The paper's numeric experiments (Appendix E) model IDS-alert observations
//! with Beta-binomial distributions, time-to-compromise with geometric
//! distributions (implied by the Markov transition function of Eq. 2),
//! background-client arrivals with a Poisson process, their service times
//! with an exponential distribution, and the replication CMDP transition
//! function with a floor-of-sum-of-Bernoulli (Poisson-binomial) distribution.
//! All of these are implemented here without external dependencies.

use crate::error::{MarkovError, Result};
use crate::special::{ln_beta, ln_binomial, ln_factorial};
use rand::Rng;

/// Common interface of the discrete distributions in this crate.
///
/// Supports are finite or countable subsets of the non-negative integers;
/// [`DiscreteDistribution::pmf`] returns zero outside the support.
pub trait DiscreteDistribution {
    /// Probability mass at `k`.
    fn pmf(&self, k: u64) -> f64;

    /// Cumulative distribution function `P[X <= k]`.
    fn cdf(&self, k: u64) -> f64 {
        (0..=k).map(|i| self.pmf(i)).sum::<f64>().min(1.0)
    }

    /// Expected value.
    fn mean(&self) -> f64;

    /// Variance.
    fn variance(&self) -> f64;

    /// Draws one sample.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64;

    /// Draws `n` samples.
    fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Samples from a probability mass function given as a slice via inverse
/// transform sampling. The slice does not need to be normalized.
fn sample_from_weights<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> u64 {
    let total: f64 = weights.iter().sum();
    let mut u = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i as u64;
        }
    }
    (weights.len() - 1) as u64
}

// ---------------------------------------------------------------------------
// Beta-binomial
// ---------------------------------------------------------------------------

/// The Beta-binomial distribution `BetaBin(n, α, β)`.
///
/// This is the observation model used throughout the paper's numerical
/// experiments: `Z_i(· | H) = BetaBin(10, 0.7, 3)` (few alerts while healthy)
/// and `Z_i(· | C) = BetaBin(10, 1, 0.7)` (many alerts while compromised).
///
/// # Example
///
/// ```
/// use tolerance_markov::dist::{BetaBinomial, DiscreteDistribution};
///
/// let healthy = BetaBinomial::new(10, 0.7, 3.0).unwrap();
/// let compromised = BetaBinomial::new(10, 1.0, 0.7).unwrap();
/// assert!(healthy.mean() < compromised.mean());
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BetaBinomial {
    n: u64,
    alpha: f64,
    beta: f64,
}

impl BetaBinomial {
    /// Creates a Beta-binomial distribution with `n` trials and shape
    /// parameters `alpha, beta > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] if `alpha` or `beta` is not
    /// strictly positive and finite.
    pub fn new(n: u64, alpha: f64, beta: f64) -> Result<Self> {
        if !(alpha > 0.0 && alpha.is_finite()) {
            return Err(MarkovError::InvalidParameter {
                name: "alpha",
                reason: format!("must be positive and finite, got {alpha}"),
            });
        }
        if !(beta > 0.0 && beta.is_finite()) {
            return Err(MarkovError::InvalidParameter {
                name: "beta",
                reason: format!("must be positive and finite, got {beta}"),
            });
        }
        Ok(BetaBinomial { n, alpha, beta })
    }

    /// The number of trials `n`.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// The `alpha` shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The `beta` shape parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The full probability mass function over `0..=n` as a vector.
    pub fn pmf_vector(&self) -> Vec<f64> {
        (0..=self.n).map(|k| self.pmf(k)).collect()
    }
}

impl DiscreteDistribution for BetaBinomial {
    fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        let (n, a, b) = (self.n, self.alpha, self.beta);
        let log_p = ln_binomial(n, k) + ln_beta(k as f64 + a, (n - k) as f64 + b) - ln_beta(a, b);
        log_p.exp()
    }

    fn mean(&self) -> f64 {
        self.n as f64 * self.alpha / (self.alpha + self.beta)
    }

    fn variance(&self) -> f64 {
        let (n, a, b) = (self.n as f64, self.alpha, self.beta);
        n * a * b * (a + b + n) / ((a + b) * (a + b) * (a + b + 1.0))
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        sample_from_weights(&self.pmf_vector(), rng)
    }
}

// ---------------------------------------------------------------------------
// Binomial
// ---------------------------------------------------------------------------

/// The binomial distribution `Bin(n, p)`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution with `n` trials and success
    /// probability `p ∈ [0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] if `p` is outside `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(MarkovError::InvalidParameter {
                name: "p",
                reason: format!("must lie in [0, 1], got {p}"),
            });
        }
        Ok(Binomial { n, p })
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl DiscreteDistribution for Binomial {
    fn pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        if self.p == 1.0 {
            return if k == self.n { 1.0 } else { 0.0 };
        }
        (ln_binomial(self.n, k)
            + k as f64 * self.p.ln()
            + (self.n - k) as f64 * (1.0 - self.p).ln())
        .exp()
    }

    fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        (0..self.n).filter(|_| rng.random::<f64>() < self.p).count() as u64
    }
}

// ---------------------------------------------------------------------------
// Poisson
// ---------------------------------------------------------------------------

/// The Poisson distribution with rate `λ`, used for background-client
/// arrivals in the emulation (λ = 20 in the paper).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with rate `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] if `lambda` is not strictly
    /// positive and finite.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(MarkovError::InvalidParameter {
                name: "lambda",
                reason: format!("must be positive and finite, got {lambda}"),
            });
        }
        Ok(Poisson { lambda })
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl DiscreteDistribution for Poisson {
    fn pmf(&self, k: u64) -> f64 {
        (k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)).exp()
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Knuth's algorithm for small lambda; split for large lambda to avoid
        // underflow of exp(-lambda).
        if self.lambda < 30.0 {
            let limit = (-self.lambda).exp();
            let mut product = rng.random::<f64>();
            let mut count = 0u64;
            while product > limit {
                product *= rng.random::<f64>();
                count += 1;
            }
            count
        } else {
            // Split: Poisson(a + b) = Poisson(a) + Poisson(b).
            let half = Poisson {
                lambda: self.lambda / 2.0,
            };
            half.sample(rng) + half.sample(rng)
        }
    }
}

// ---------------------------------------------------------------------------
// Geometric
// ---------------------------------------------------------------------------

/// The geometric distribution on `{1, 2, ...}` counting the number of trials
/// until the first success (success probability `p`).
///
/// Under the node transition model (Eq. 2) the number of time-steps until a
/// healthy, never-recovered node fails is geometric with
/// `p = 1 - (1 - p_A)(1 - p_C1)`; Fig. 5 plots exactly this CDF.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p ∈ (0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] if `p` is outside `(0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        if !(p > 0.0 && p <= 1.0) {
            return Err(MarkovError::InvalidParameter {
                name: "p",
                reason: format!("must lie in (0, 1], got {p}"),
            });
        }
        Ok(Geometric { p })
    }

    /// Success probability per trial.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// `P[X <= t]`, the probability that the first success happens within the
    /// first `t` trials.
    pub fn cdf_trials(&self, t: u64) -> f64 {
        1.0 - (1.0 - self.p).powi(t as i32)
    }
}

impl DiscreteDistribution for Geometric {
    fn pmf(&self, k: u64) -> f64 {
        if k == 0 {
            return 0.0;
        }
        (1.0 - self.p).powi((k - 1) as i32) * self.p
    }

    fn mean(&self) -> f64 {
        1.0 / self.p
    }

    fn variance(&self) -> f64 {
        (1.0 - self.p) / (self.p * self.p)
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u: f64 = rng.random();
        // Inverse CDF: ceil(ln(1-u) / ln(1-p)).
        ((1.0 - u).ln() / (1.0 - self.p).ln()).ceil().max(1.0) as u64
    }
}

// ---------------------------------------------------------------------------
// Exponential (continuous)
// ---------------------------------------------------------------------------

/// The exponential distribution with mean `1/rate`, used for background
/// service times in the emulation (mean 4 time-steps in the paper).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] if `rate` is not strictly
    /// positive and finite.
    pub fn new(rate: f64) -> Result<Self> {
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(MarkovError::InvalidParameter {
                name: "rate",
                reason: format!("must be positive and finite, got {rate}"),
            });
        }
        Ok(Exponential { rate })
    }

    /// Creates the distribution from its mean (`mean = 1/rate`).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] if `mean` is not strictly
    /// positive and finite.
    pub fn from_mean(mean: f64) -> Result<Self> {
        if !(mean > 0.0 && mean.is_finite()) {
            return Err(MarkovError::InvalidParameter {
                name: "mean",
                reason: format!("must be positive and finite, got {mean}"),
            });
        }
        Exponential::new(1.0 / mean)
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Expected value `1/rate`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Probability density at `x >= 0`.
    pub fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    /// Draws a sample via inverse transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        -(1.0 - u).ln() / self.rate
    }
}

// ---------------------------------------------------------------------------
// Categorical
// ---------------------------------------------------------------------------

/// A categorical distribution over `{0, 1, ..., k-1}` with explicit
/// probabilities. This is the representation used for empirical alert
/// distributions `Ẑ_i` estimated from traces (Fig. 11).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Categorical {
    probabilities: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from (unnormalized, non-negative)
    /// weights.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::EmptyInput`] for an empty weight vector and
    /// [`MarkovError::NotStochastic`] if the weights are negative or sum to
    /// zero.
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(MarkovError::EmptyInput("categorical weights"));
        }
        let probabilities = crate::linalg::normalize(&weights)?;
        Ok(Categorical { probabilities })
    }

    /// Builds the empirical distribution of a sample of counts over
    /// `{0, ..., max}` (Laplace-smoothed with `smoothing` pseudo-counts so the
    /// TP-2 / positivity assumptions of Theorem 1 hold).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::EmptyInput`] if `samples` is empty and
    /// [`MarkovError::InvalidParameter`] if `smoothing` is negative.
    pub fn from_samples(samples: &[u64], support_size: usize, smoothing: f64) -> Result<Self> {
        if samples.is_empty() {
            return Err(MarkovError::EmptyInput("samples"));
        }
        if smoothing < 0.0 {
            return Err(MarkovError::InvalidParameter {
                name: "smoothing",
                reason: format!("must be non-negative, got {smoothing}"),
            });
        }
        let mut counts = vec![smoothing; support_size];
        for &s in samples {
            let idx = (s as usize).min(support_size - 1);
            counts[idx] += 1.0;
        }
        Categorical::new(counts)
    }

    /// The normalized probability vector.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Size of the support.
    pub fn support_size(&self) -> usize {
        self.probabilities.len()
    }
}

impl DiscreteDistribution for Categorical {
    fn pmf(&self, k: u64) -> f64 {
        self.probabilities.get(k as usize).copied().unwrap_or(0.0)
    }

    fn mean(&self) -> f64 {
        self.probabilities
            .iter()
            .enumerate()
            .map(|(i, p)| i as f64 * p)
            .sum()
    }

    fn variance(&self) -> f64 {
        let mean = self.mean();
        self.probabilities
            .iter()
            .enumerate()
            .map(|(i, p)| (i as f64 - mean).powi(2) * p)
            .sum()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        sample_from_weights(&self.probabilities, rng)
    }
}

// ---------------------------------------------------------------------------
// Poisson-binomial
// ---------------------------------------------------------------------------

/// The Poisson-binomial distribution: the sum of independent Bernoulli
/// variables with (possibly different) success probabilities.
///
/// The replication CMDP's transition function (Eq. 8) is the distribution of
/// `⌊Σ_i (1 - B_i)⌋ + a`, i.e. a Poisson-binomial over the per-node "healthy"
/// indicators with success probabilities `1 - b_i`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PoissonBinomial {
    probabilities: Vec<f64>,
    pmf: Vec<f64>,
}

impl PoissonBinomial {
    /// Creates the distribution of the number of successes among independent
    /// Bernoulli trials with the given probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::InvalidParameter`] if any probability lies
    /// outside `[0, 1]`.
    pub fn new(probabilities: Vec<f64>) -> Result<Self> {
        for (i, &p) in probabilities.iter().enumerate() {
            if !(0.0..=1.0).contains(&p) {
                return Err(MarkovError::InvalidParameter {
                    name: "probabilities",
                    reason: format!("entry {i} must lie in [0, 1], got {p}"),
                });
            }
        }
        // Dynamic-programming convolution: O(n^2).
        let mut pmf = vec![1.0];
        for &p in &probabilities {
            let mut next = vec![0.0; pmf.len() + 1];
            for (k, &mass) in pmf.iter().enumerate() {
                next[k] += mass * (1.0 - p);
                next[k + 1] += mass * p;
            }
            pmf = next;
        }
        Ok(PoissonBinomial { probabilities, pmf })
    }

    /// The per-trial success probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// The full probability mass function over `0..=n`.
    pub fn pmf_vector(&self) -> &[f64] {
        &self.pmf
    }
}

impl DiscreteDistribution for PoissonBinomial {
    fn pmf(&self, k: u64) -> f64 {
        self.pmf.get(k as usize).copied().unwrap_or(0.0)
    }

    fn mean(&self) -> f64 {
        self.probabilities.iter().sum()
    }

    fn variance(&self) -> f64 {
        self.probabilities.iter().map(|p| p * (1.0 - p)).sum()
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        self.probabilities
            .iter()
            .filter(|&&p| rng.random::<f64>() < p)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn beta_binomial_pmf_sums_to_one() {
        let d = BetaBinomial::new(10, 0.7, 3.0).unwrap();
        let total: f64 = d.pmf_vector().iter().sum();
        assert_close(total, 1.0, 1e-10);
        assert_eq!(d.pmf(11), 0.0);
        assert_close(d.mean(), 10.0 * 0.7 / 3.7, 1e-10);
    }

    #[test]
    fn beta_binomial_paper_models_are_stochastically_ordered() {
        // Healthy model concentrates on few alerts, compromised on many.
        let healthy = BetaBinomial::new(10, 0.7, 3.0).unwrap();
        let compromised = BetaBinomial::new(10, 1.0, 0.7).unwrap();
        assert!(healthy.mean() < compromised.mean());
        // First-order stochastic dominance of the compromised model.
        for k in 0..10 {
            assert!(compromised.cdf(k) <= healthy.cdf(k) + 1e-12);
        }
    }

    #[test]
    fn beta_binomial_rejects_bad_parameters() {
        assert!(BetaBinomial::new(10, 0.0, 1.0).is_err());
        assert!(BetaBinomial::new(10, 1.0, -1.0).is_err());
        assert!(BetaBinomial::new(10, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn binomial_matches_known_values() {
        let d = Binomial::new(4, 0.5).unwrap();
        assert_close(d.pmf(2), 0.375, 1e-12);
        assert_close(d.mean(), 2.0, 1e-12);
        assert_close(d.variance(), 1.0, 1e-12);
        assert_close(d.cdf(4), 1.0, 1e-12);
        let degenerate = Binomial::new(3, 0.0).unwrap();
        assert_eq!(degenerate.pmf(0), 1.0);
        let sure = Binomial::new(3, 1.0).unwrap();
        assert_eq!(sure.pmf(3), 1.0);
        assert!(Binomial::new(3, 1.5).is_err());
    }

    #[test]
    fn poisson_pmf_and_sampling_mean() {
        let d = Poisson::new(20.0).unwrap();
        let total: f64 = (0..200).map(|k| d.pmf(k)).sum();
        assert_close(total, 1.0, 1e-9);
        let mut r = rng();
        let samples = d.sample_n(&mut r, 4000);
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!(
            (mean - 20.0).abs() < 0.5,
            "sample mean {mean} too far from 20"
        );
        assert!(Poisson::new(0.0).is_err());
    }

    #[test]
    fn poisson_large_lambda_sampling() {
        let d = Poisson::new(200.0).unwrap();
        let mut r = rng();
        let samples = d.sample_n(&mut r, 500);
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 200.0).abs() < 5.0);
    }

    #[test]
    fn geometric_cdf_matches_fig5_formula() {
        // Fig. 5: P[failure by t] = 1 - ((1-pA)(1-pC1))^t.
        let p_a: f64 = 0.1;
        let p_c1 = 1e-5;
        let fail_prob = 1.0 - (1.0 - p_a) * (1.0 - p_c1);
        let d = Geometric::new(fail_prob).unwrap();
        for t in [1u64, 10, 50, 100] {
            let expected = 1.0 - ((1.0 - p_a) * (1.0 - p_c1)).powi(t as i32);
            assert_close(d.cdf_trials(t), expected, 1e-12);
        }
        assert_close(d.mean(), 1.0 / fail_prob, 1e-12);
    }

    #[test]
    fn geometric_pmf_sums_and_sampling() {
        let d = Geometric::new(0.3).unwrap();
        let total: f64 = (1..200).map(|k| d.pmf(k)).sum();
        assert_close(total, 1.0, 1e-9);
        assert_eq!(d.pmf(0), 0.0);
        let mut r = rng();
        let samples = d.sample_n(&mut r, 4000);
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!((mean - 1.0 / 0.3).abs() < 0.2);
        assert!(Geometric::new(0.0).is_err());
        assert_eq!(Geometric::new(1.0).unwrap().sample(&mut r), 1);
    }

    #[test]
    fn exponential_properties() {
        let d = Exponential::from_mean(4.0).unwrap();
        assert_close(d.mean(), 4.0, 1e-12);
        assert_close(d.cdf(0.0), 0.0, 1e-12);
        assert_close(d.pdf(-1.0), 0.0, 1e-12);
        assert!(d.cdf(100.0) > 0.999);
        let mut r = rng();
        let mean: f64 = (0..4000).map(|_| d.sample(&mut r)).sum::<f64>() / 4000.0;
        assert!((mean - 4.0).abs() < 0.3);
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::from_mean(0.0).is_err());
    }

    #[test]
    fn categorical_from_weights_and_samples() {
        let d = Categorical::new(vec![1.0, 1.0, 2.0]).unwrap();
        assert_close(d.pmf(2), 0.5, 1e-12);
        assert_close(d.mean(), 0.25 + 1.0, 1e-12);
        assert_eq!(d.pmf(3), 0.0);
        assert!(Categorical::new(vec![]).is_err());
        assert!(Categorical::new(vec![-1.0, 2.0]).is_err());

        let samples = vec![0, 0, 1, 2, 2, 2];
        let emp = Categorical::from_samples(&samples, 4, 0.0).unwrap();
        assert_close(emp.pmf(2), 0.5, 1e-12);
        assert_close(emp.pmf(3), 0.0, 1e-12);
        let smoothed = Categorical::from_samples(&samples, 4, 1.0).unwrap();
        assert!(smoothed.pmf(3) > 0.0);
        assert!(Categorical::from_samples(&[], 4, 0.0).is_err());
        assert!(Categorical::from_samples(&samples, 4, -1.0).is_err());
    }

    #[test]
    fn categorical_clamps_out_of_range_samples() {
        let emp = Categorical::from_samples(&[100], 4, 0.0).unwrap();
        assert_close(emp.pmf(3), 1.0, 1e-12);
    }

    #[test]
    fn poisson_binomial_reduces_to_binomial() {
        let pb = PoissonBinomial::new(vec![0.3; 5]).unwrap();
        let b = Binomial::new(5, 0.3).unwrap();
        for k in 0..=5u64 {
            assert_close(pb.pmf(k), b.pmf(k), 1e-12);
        }
        assert_close(pb.mean(), b.mean(), 1e-12);
        assert_close(pb.variance(), b.variance(), 1e-12);
    }

    #[test]
    fn poisson_binomial_heterogeneous() {
        let pb = PoissonBinomial::new(vec![0.0, 1.0, 0.5]).unwrap();
        // Exactly one success guaranteed (the p=1 trial), plus maybe the 0.5.
        assert_close(pb.pmf(0), 0.0, 1e-12);
        assert_close(pb.pmf(1), 0.5, 1e-12);
        assert_close(pb.pmf(2), 0.5, 1e-12);
        assert_close(pb.pmf(3), 0.0, 1e-12);
        assert!(PoissonBinomial::new(vec![1.1]).is_err());
    }

    #[test]
    fn sampling_respects_support_bounds() {
        let mut r = rng();
        let bb = BetaBinomial::new(10, 1.0, 0.7).unwrap();
        for s in bb.sample_n(&mut r, 200) {
            assert!(s <= 10);
        }
        let pb = PoissonBinomial::new(vec![0.2, 0.9, 0.4]).unwrap();
        for s in pb.sample_n(&mut r, 200) {
            assert!(s <= 3);
        }
    }
}
