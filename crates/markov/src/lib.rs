//! # `tolerance-markov`
//!
//! Mathematical substrate for the TOLERANCE reproduction: probability
//! distributions, finite Markov chains, reliability/MTTF analysis, and the
//! small dense linear algebra they require.
//!
//! The paper (Hammar & Stadler, DSN 2024) relies on the following primitives,
//! all implemented here from scratch:
//!
//! * Beta-binomial observation models `Z_i(· | s)` (Appendix E),
//! * geometric time-to-compromise processes implied by Eq. (2),
//! * the Poisson-binomial transition function of the replication CMDP
//!   (Eq. 8 sums independent Bernoulli "healthy" indicators),
//! * mean-time-to-failure and reliability curves `R(t)` via hitting times and
//!   the Chapman–Kolmogorov equation (Appendix F, Fig. 6),
//! * Kullback–Leibler divergences between alert distributions (Fig. 14, 18),
//! * Student-t confidence intervals used in every table of the evaluation.
//!
//! # Example
//!
//! ```
//! use tolerance_markov::chain::MarkovChain;
//!
//! // A two-state chain: state 0 is "up", state 1 is "failed" (absorbing).
//! let chain = MarkovChain::new(vec![vec![0.9, 0.1], vec![0.0, 1.0]]).unwrap();
//! let mttf = chain.mean_hitting_time(&[1]).unwrap();
//! assert!((mttf[0] - 10.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod chain;
pub mod dist;
pub mod error;
pub mod linalg;
pub mod special;
pub mod stats;

pub use chain::MarkovChain;
pub use dist::{
    BetaBinomial, Binomial, Categorical, DiscreteDistribution, Exponential, Geometric, Poisson,
    PoissonBinomial,
};
pub use error::{MarkovError, Result};
pub use linalg::{Matrix, Vector};
pub use stats::{confidence_interval_95, kl_divergence, SummaryStatistics};
