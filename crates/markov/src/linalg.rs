//! Small dense linear algebra.
//!
//! The TOLERANCE reproduction only needs modest matrix sizes (Markov chains
//! with at most a few thousand states, LP tableaux with a few thousand
//! columns), so a simple row-major `Vec<f64>` representation with partial
//! pivoting is sufficient and keeps the workspace dependency-free.

use crate::error::{MarkovError, Result};

/// A dense column vector of `f64` values.
pub type Vector = Vec<f64>;

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from nested rows.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if the rows have differing
    /// lengths, and [`MarkovError::EmptyInput`] if no rows are provided.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        if rows.is_empty() {
            return Err(MarkovError::EmptyInput("matrix rows"));
        }
        let cols = rows[0].len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(MarkovError::DimensionMismatch {
                    expected: format!("{cols} columns"),
                    found: format!("{} columns in row {i}", row.len()),
                });
            }
        }
        let data = rows.into_iter().flatten().collect();
        Ok(Matrix {
            rows: 0,
            cols,
            data,
        }
        .with_inferred_rows())
    }

    fn with_inferred_rows(mut self) -> Self {
        self.rows = self.data.len().checked_div(self.cols).unwrap_or(0);
        self
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the row at `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable slice of the row at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vector> {
        if x.len() != self.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("vector of length {}", x.len()),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Vector-matrix product `x^T A` (useful for propagating row-stochastic
    /// distributions).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if `x.len() != self.rows()`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vector> {
        if x.len() != self.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: format!("vector of length {}", self.rows),
                found: format!("vector of length {}", x.len()),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.row(r).iter().enumerate() {
                out[c] += xr * v;
            }
        }
        Ok(out)
    }

    /// Matrix-matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if the inner dimensions do
    /// not agree.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Returns `self` raised to the integer power `p` (repeated squaring).
    ///
    /// # Errors
    ///
    /// Returns [`MarkovError::DimensionMismatch`] if the matrix is not square.
    pub fn pow(&self, p: u32) -> Result<Matrix> {
        if self.rows != self.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        let mut result = Matrix::identity(self.rows);
        let mut base = self.clone();
        let mut exp = p;
        while exp > 0 {
            if exp & 1 == 1 {
                result = result.mul(&base)?;
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base)?;
            }
        }
        Ok(result)
    }

    /// Transposes the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Solves the linear system `A x = b` using Gaussian elimination with
    /// partial pivoting.
    ///
    /// # Errors
    ///
    /// * [`MarkovError::DimensionMismatch`] if the matrix is not square or
    ///   `b` has the wrong length.
    /// * [`MarkovError::SingularMatrix`] if a pivot smaller than `1e-12` is
    ///   encountered.
    pub fn solve(&self, b: &[f64]) -> Result<Vector> {
        if self.rows != self.cols {
            return Err(MarkovError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        if b.len() != self.rows {
            return Err(MarkovError::DimensionMismatch {
                expected: format!("vector of length {}", self.rows),
                found: format!("vector of length {}", b.len()),
            });
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut rhs = b.to_vec();

        for col in 0..n {
            // Partial pivoting: find the row with the largest entry in `col`.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(MarkovError::SingularMatrix);
            }
            if pivot_row != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot_row * n + c);
                }
                rhs.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= factor * a[col * n + c];
                }
                rhs[r] -= factor * rhs[col];
            }
        }

        // Back substitution.
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = rhs[row];
            for c in (row + 1)..n {
                acc -= a[row * n + c] * x[c];
            }
            x[row] = acc / a[row * n + row];
        }
        Ok(x)
    }

    /// Frobenius norm of the difference with another matrix.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn distance(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "row count mismatch");
        assert_eq!(self.cols, other.cols, "column count mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Normalizes a non-negative slice so that it sums to one.
///
/// # Errors
///
/// Returns [`MarkovError::NotStochastic`] if the sum is non-positive or any
/// entry is negative.
pub fn normalize(values: &[f64]) -> Result<Vector> {
    if values.iter().any(|&v| v < 0.0) {
        return Err(MarkovError::NotStochastic {
            row: 0,
            sum: f64::NAN,
        });
    }
    let sum: f64 = values.iter().sum();
    if sum <= 0.0 || !sum.is_finite() {
        return Err(MarkovError::NotStochastic { row: 0, sum });
    }
    Ok(values.iter().map(|v| v / sum).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_indexing() {
        let id = Matrix::identity(3);
        assert_eq!(id[(0, 0)], 1.0);
        assert_eq!(id[(0, 1)], 0.0);
        assert_eq!(id.rows(), 3);
        assert_eq!(id.cols(), 3);
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(vec![]).is_err());
        assert!(Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn matrix_vector_products() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(m.vec_mul(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
        assert!(m.vec_mul(&[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn matrix_product_and_power() {
        let m = Matrix::from_rows(vec![vec![0.5, 0.5], vec![0.0, 1.0]]).unwrap();
        let m2 = m.pow(2).unwrap();
        assert!((m2[(0, 0)] - 0.25).abs() < 1e-12);
        assert!((m2[(0, 1)] - 0.75).abs() < 1e-12);
        let m0 = m.pow(0).unwrap();
        assert_eq!(m0, Matrix::identity(2));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn solve_small_system() {
        // 2x + y = 5, x + 3y = 10 => x = 1, y = 3
        let a = Matrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let x = a.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn solve_detects_singularity() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(a.solve(&[1.0, 2.0]), Err(MarkovError::SingularMatrix));
    }

    #[test]
    fn solve_requires_square_and_matching_rhs() {
        let a = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert!(a.solve(&[1.0, 2.0]).is_err());
        let b = Matrix::identity(2);
        assert!(b.solve(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn solve_with_pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = a.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_and_dot() {
        let v = normalize(&[1.0, 1.0, 2.0]).unwrap();
        assert!((v.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((v[2] - 0.5).abs() < 1e-12);
        assert!(normalize(&[0.0, 0.0]).is_err());
        assert!(normalize(&[-1.0, 2.0]).is_err());
        assert!((dot(&[1.0, 2.0], &[3.0, 4.0]) - 11.0).abs() < 1e-12);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_between_matrices() {
        let a = Matrix::identity(2);
        let b = Matrix::zeros(2, 2);
        assert!((a.distance(&b) - 2.0f64.sqrt()).abs() < 1e-12);
    }
}
