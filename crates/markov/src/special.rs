//! Special functions used by the probability distributions.
//!
//! Only the handful of functions the crate actually needs are provided:
//! the log-gamma function (Lanczos approximation), the log-beta function,
//! log-binomial coefficients and the regular factorial/binomial helpers.

/// Lanczos coefficients (g = 7, n = 9) for the log-gamma approximation.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEFFICIENTS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`. Accuracy is
/// better than `1e-10` over the range used by this crate.
///
/// # Panics
///
/// Panics if `x` is not finite or if `x` is a non-positive integer (where the
/// gamma function has poles).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(
        x.is_finite(),
        "ln_gamma requires a finite argument, got {x}"
    );
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        assert!(
            sin_pi_x.abs() > f64::EPSILON,
            "ln_gamma is undefined at non-positive integers, got {x}"
        );
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEFFICIENTS[0];
    for (i, &c) in LANCZOS_COEFFICIENTS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural logarithm of the beta function, `ln B(a, b)` for `a, b > 0`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    assert!(
        a > 0.0 && b > 0.0,
        "ln_beta requires positive arguments, got ({a}, {b})"
    );
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns negative infinity when `k > n`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Natural logarithm of `n!`.
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// Exact binomial coefficient for small arguments, computed with u128
/// intermediate arithmetic to postpone overflow.
///
/// # Panics
///
/// Panics if the result does not fit into `u128`.
pub fn binomial_coefficient(n: u64, k: u64) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result: u128 = 1;
    for i in 0..k {
        result = result
            .checked_mul((n - i) as u128)
            .expect("binomial coefficient overflow")
            / (i as u128 + 1);
    }
    result
}

/// Numerically stable log-sum-exp of a slice of log-values.
///
/// Returns negative infinity for an empty slice or a slice of all
/// negative-infinite values.
pub fn log_sum_exp(log_values: &[f64]) -> f64 {
    let max = log_values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        return f64::NEG_INFINITY;
    }
    let sum: f64 = log_values.iter().map(|&v| (v - max).exp()).sum();
    max + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        assert_close(ln_gamma(1.0), 0.0, 1e-10);
        assert_close(ln_gamma(2.0), 0.0, 1e-10);
        assert_close(ln_gamma(5.0), (24.0f64).ln(), 1e-9);
        assert_close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-8);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        assert_close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-9);
        // Γ(3/2) = sqrt(π)/2
        assert_close(
            ln_gamma(1.5),
            0.5 * std::f64::consts::PI.ln() - std::f64::consts::LN_2,
            1e-9,
        );
    }

    #[test]
    fn ln_beta_symmetry_and_known_values() {
        assert_close(ln_beta(1.0, 1.0), 0.0, 1e-10);
        // B(2, 3) = 1/12
        assert_close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-9);
        assert_close(ln_beta(0.7, 3.0), ln_beta(3.0, 0.7), 1e-12);
    }

    #[test]
    fn ln_binomial_matches_exact() {
        for n in 0..=20u64 {
            for k in 0..=n {
                let exact = binomial_coefficient(n, k) as f64;
                assert_close(ln_binomial(n, k).exp(), exact, exact * 1e-9 + 1e-9);
            }
        }
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_coefficient_basics() {
        assert_eq!(binomial_coefficient(10, 0), 1);
        assert_eq!(binomial_coefficient(10, 10), 1);
        assert_eq!(binomial_coefficient(10, 3), 120);
        assert_eq!(binomial_coefficient(52, 5), 2_598_960);
        assert_eq!(binomial_coefficient(3, 5), 0);
    }

    #[test]
    fn log_sum_exp_is_stable() {
        let values = [-1000.0, -1000.0];
        assert_close(log_sum_exp(&values), -1000.0 + std::f64::consts::LN_2, 1e-9);
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "positive arguments")]
    fn ln_beta_rejects_nonpositive() {
        ln_beta(0.0, 1.0);
    }
}
