//! Regenerates the tables and figures of the TOLERANCE paper.
//!
//! Usage:
//!
//! ```text
//! cargo run -p tolerance-bench --release --bin experiments -- <experiment> [--full]
//! ```
//!
//! where `<experiment>` is one of `fig4`, `fig5`, `fig6`, `table2`, `fig7`,
//! `fig8`, `fig9`, `fig10`, `fig11`, `table7` (also covers Fig. 12), `fig13`,
//! `fig14`, `fig15`, `fig16`, `fig18`, or `all`. Without `--full` the
//! experiments run with reduced seed counts and grid sizes so the entire
//! suite finishes in minutes; `--full` uses the paper's settings (20 seeds,
//! 1000-step emulation runs, `s_max` up to 2048) and can take hours, exactly
//! like the original evaluation.
//!
//! Seed sweeps and parameter grids execute through the shared scenario
//! runtime of `tolerance-core` and run in parallel by default (one worker
//! per CPU). Metric values, solver objectives and convergence shapes are
//! independent of the execution mode; per-solver **wall-clock columns**
//! (Table 2 / Fig. 8) are measured while sibling jobs compete for the same
//! cores, so pass `--serial` when the timing numbers themselves are the
//! result being reported.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use tolerance_bench::{sparkline, write_json};
use tolerance_core::node_model::NodeState;
use tolerance_core::prelude::*;
use tolerance_emulation::{ContainerCatalog, EvaluationGrid, IdsModel, TraceDataset};
use tolerance_markov::stats::SummaryStatistics;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let runner = if args.iter().any(|a| a == "--serial") {
        Runner::serial()
    } else {
        Runner::parallel()
    };
    let experiment = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());

    let run = |name: &str| experiment == name || experiment == "all";

    if run("fig4") {
        fig4();
    }
    if run("fig5") {
        fig5();
    }
    if run("fig6") {
        fig6();
    }
    if run("table2") || run("fig7") || run("fig8") {
        table2_fig7_fig8(full, &runner);
    }
    if run("fig9") {
        fig9(full);
    }
    if run("fig10") {
        fig10(full);
    }
    if run("fig11") {
        fig11(full);
    }
    if run("table7") || run("fig12") {
        table7_fig12(full, &runner);
    }
    if run("fig13") {
        fig13();
    }
    if run("fig14") {
        fig14(full, &runner);
    }
    if run("fig15") {
        fig15();
    }
    if run("fig16") {
        fig16();
    }
    if run("fig18") {
        fig18(full);
    }
}

fn paper_model(p_attack: f64) -> NodeModel {
    let parameters = tolerance_core::node_model::NodeParameters {
        p_attack,
        ..Default::default()
    };
    NodeModel::new(parameters, ObservationModel::paper_default()).expect("valid paper parameters")
}

// ---------------------------------------------------------------------------
// Fig. 4: optimal value function / alpha vectors of Problem 1.
// ---------------------------------------------------------------------------
#[derive(Serialize)]
struct Fig4Row {
    belief: f64,
    value: f64,
}

fn fig4() {
    println!("\n== Fig. 4: optimal value function V*(b) of Problem 1 (alpha-vector envelope) ==");
    let model = paper_model(0.01);
    let pomdp = model.to_pomdp(2.0, 0.95).expect("valid pomdp");
    let solver = tolerance_pomdp::solvers::IncrementalPruning::new(
        tolerance_pomdp::solvers::IncrementalPruningConfig {
            max_vectors_per_stage: Some(32),
            ..Default::default()
        },
    );
    let value_function = solver
        .solve_finite_horizon(&pomdp, 25)
        .expect("solver succeeds");
    let mut rows = Vec::new();
    for i in 0..=20 {
        let b = i as f64 / 20.0;
        rows.push(Fig4Row {
            belief: b,
            value: value_function.evaluate(&[1.0 - b, b]),
        });
    }
    let values: Vec<f64> = rows.iter().map(|r| r.value).collect();
    println!(
        "alpha vectors on the lower envelope: {}",
        value_function.len()
    );
    println!("V*(b) over b in [0,1]: {}", sparkline(&values));
    for row in &rows {
        println!("  b = {:.2}  V* = {:.3}", row.belief, row.value);
    }
    write_json("fig4_value_function", &rows);
}

// ---------------------------------------------------------------------------
// Fig. 5: probability of compromise/crash over time without recoveries.
// ---------------------------------------------------------------------------
#[derive(Serialize)]
struct Fig5Series {
    p_attack: f64,
    probability_by_t: Vec<f64>,
}

fn fig5() {
    println!("\n== Fig. 5: P[compromised or crashed by t] without recoveries ==");
    let mut series = Vec::new();
    for p_attack in [0.1, 0.05, 0.025, 0.01] {
        let parameters = tolerance_core::node_model::NodeParameters {
            p_attack,
            p_update: 1e-9,
            ..Default::default()
        };
        let model = NodeModel::new_unchecked(parameters, ObservationModel::paper_default());
        let curve: Vec<f64> = (0..=100)
            .map(|t| model.failure_probability_by(t).expect("markov chain"))
            .collect();
        println!("p_A = {:<6} {}", p_attack, sparkline(&curve));
        println!(
            "  t=10: {:.3}  t=50: {:.3}  t=100: {:.3}",
            curve[10], curve[50], curve[100]
        );
        series.push(Fig5Series {
            p_attack,
            probability_by_t: curve,
        });
    }
    write_json("fig5_compromise_probability", &series);
}

// ---------------------------------------------------------------------------
// Fig. 6: MTTF vs N1 and reliability curves.
// ---------------------------------------------------------------------------
#[derive(Serialize)]
struct Fig6Output {
    mttf: Vec<(usize, f64, f64)>,
    reliability: Vec<(usize, Vec<f64>)>,
}

fn fig6() {
    println!("\n== Fig. 6a: mean time to failure vs initial nodes N1 (f = 3, k = 1) ==");
    let mut mttf_rows = Vec::new();
    for p_attack in [0.1, 0.025, 0.01] {
        print!("p_A = {p_attack:<6}");
        for n1 in [10usize, 25, 50, 100] {
            let analysis = ReliabilityAnalysis::new(n1, 3, 1, p_attack).expect("valid");
            let mttf = analysis.mean_time_to_failure().expect("finite");
            print!("  N1={n1}: {mttf:8.1}");
            mttf_rows.push((n1, p_attack, mttf));
        }
        println!();
    }
    println!("\n== Fig. 6b: reliability curves R(t) for varying N1 (p_A = 0.025) ==");
    let mut reliability_rows = Vec::new();
    for n1 in [25usize, 50, 100, 200] {
        let analysis = ReliabilityAnalysis::new(n1, 3, 1, 0.025).expect("valid");
        let curve = analysis.reliability_curve(100).expect("curve");
        println!("N1 = {n1:<4} {}", sparkline(&curve));
        reliability_rows.push((n1, curve));
    }
    write_json(
        "fig6_mttf_reliability",
        &Fig6Output {
            mttf: mttf_rows,
            reliability: reliability_rows,
        },
    );
}

// ---------------------------------------------------------------------------
// Table 2 / Fig. 7 / Fig. 8: solving Problem 1 with different optimizers.
// ---------------------------------------------------------------------------
#[derive(Serialize)]
struct Table2Row {
    method: String,
    delta_r: String,
    seconds: f64,
    cost_mean: f64,
    cost_ci95: f64,
    convergence: Vec<(f64, f64)>,
}

/// One seed's result of a Problem 1 solver run: cost, wall-clock seconds,
/// and (for seed 0) the convergence curve.
type SolverSample = (f64, f64, Vec<(f64, f64)>);

/// Sweeps a solver over seeds through the shared runtime and aggregates the
/// per-seed costs and times into a [`Table2Row`] — the aggregation that was
/// previously repeated for every optimizer family.
fn solver_row(
    runner: &Runner,
    method: &str,
    delta_label: &str,
    seeds: usize,
    solve: impl Fn(u64) -> tolerance_core::Result<Option<SolverSample>> + Sync,
) -> Option<Table2Row> {
    let scenario = FnScenario::new(format!("alg1/{method}/dr-{delta_label}"), solve);
    let seed_grid: Vec<u64> = (0..seeds as u64).collect();
    let samples: Vec<SolverSample> = runner
        .run_seeds(&scenario, &seed_grid)
        .expect("solver scenarios only fail per-seed")
        .into_iter()
        .flatten()
        .collect();
    if samples.is_empty() {
        return None;
    }
    let costs: Vec<f64> = samples.iter().map(|(cost, _, _)| *cost).collect();
    let seconds: Vec<f64> = samples.iter().map(|(_, secs, _)| *secs).collect();
    let convergence = samples[0].2.clone();
    let stats = SummaryStatistics::from_samples(&costs).expect("non-empty");
    let time = SummaryStatistics::from_samples(&seconds).expect("non-empty");
    println!(
        "  Delta_R={delta_label:<4} {method:<5} time {:7.2}s  J_i = {}",
        time.mean,
        stats.format_pm(3)
    );
    Some(Table2Row {
        method: method.to_string(),
        delta_r: delta_label.to_string(),
        seconds: time.mean,
        cost_mean: stats.mean,
        cost_ci95: stats.ci95_half_width,
        convergence,
    })
}

fn table2_fig7_fig8(full: bool, runner: &Runner) {
    println!("\n== Table 2 / Figs. 7-8: Problem 1 solvers across Delta_R ==");
    if runner.mode() != tolerance_core::runtime::ExecutionMode::Serial {
        println!(
            "  (note: seeds run concurrently; wall-clock columns include CPU \
             contention — use --serial for contention-free timings)"
        );
    }
    let seeds = if full { 20 } else { 3 };
    let delta_rs: Vec<Option<u32>> = if full {
        vec![Some(5), Some(15), Some(25), None]
    } else {
        vec![Some(5), Some(15), None]
    };
    let alg_config = Alg1Config {
        evaluation_episodes: if full { 50 } else { 15 },
        horizon: 100,
        iterations: if full { 30 } else { 8 },
        population: if full { 50 } else { 15 },
        seed: 0,
    };
    let mut rows: Vec<Table2Row> = Vec::new();
    for &delta_r in &delta_rs {
        let model = paper_model(0.1);
        let problem = RecoveryProblem::new(model, RecoveryConfig { eta: 2.0, delta_r })
            .expect("valid problem");
        let delta_label = delta_r
            .map(|d| d.to_string())
            .unwrap_or_else(|| "inf".into());

        for kind in [
            OptimizerKind::Cem,
            OptimizerKind::De,
            OptimizerKind::Bo,
            OptimizerKind::Spsa,
        ] {
            let row = solver_row(runner, kind.name(), &delta_label, seeds, |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let alg = Alg1::new(Alg1Config {
                    seed,
                    ..alg_config.clone()
                });
                match alg.solve(&problem, kind, &mut rng) {
                    Ok(outcome) => {
                        let convergence = outcome
                            .optimization
                            .history
                            .iter()
                            .map(|p| (p.elapsed_seconds, p.best_value))
                            .collect();
                        Ok(Some((
                            outcome.objective,
                            outcome.optimization.elapsed_seconds(),
                            convergence,
                        )))
                    }
                    Err(err) => {
                        eprintln!("  {} failed: {err}", kind.name());
                        Ok(None)
                    }
                }
            });
            rows.extend(row);
        }

        // PPO baseline.
        {
            let row = solver_row(runner, "ppo", &delta_label, seeds, |seed| {
                let mut rng = StdRng::seed_from_u64(100 + seed);
                let alg = Alg1::new(Alg1Config {
                    seed,
                    ..alg_config.clone()
                });
                let ppo_config = tolerance_optim::ppo::PpoConfig {
                    iterations: if full { 20 } else { 5 },
                    batch_size: if full { 2048 } else { 512 },
                    hidden_layers: vec![32, 32],
                    learning_rate: 0.005,
                    max_episode_length: 100,
                    ..Default::default()
                };
                let start = std::time::Instant::now();
                match alg.solve_with_ppo(&problem, ppo_config, &mut rng) {
                    Ok((cost, result)) => {
                        let convergence = result
                            .history
                            .iter()
                            .map(|p| (p.elapsed_seconds, p.best_value))
                            .collect();
                        Ok(Some((cost, start.elapsed().as_secs_f64(), convergence)))
                    }
                    Err(err) => {
                        eprintln!("  ppo failed: {err}");
                        Ok(None)
                    }
                }
            });
            rows.extend(row);
        }

        // Incremental pruning baseline (exact DP); only for bounded horizons,
        // as in the paper it does not converge for Delta_R = inf.
        if delta_r.is_some() || full {
            let alg = Alg1::new(alg_config.clone());
            let horizon = delta_r.map(|d| d as usize).unwrap_or(25);
            let start = std::time::Instant::now();
            match alg.solve_with_incremental_pruning(&problem, 0.95, Some(horizon)) {
                Ok(outcome) => {
                    let elapsed = start.elapsed().as_secs_f64();
                    println!(
                        "  Delta_R={delta_label:<4} ip    time {elapsed:7.2}s  J_i = {:.3}",
                        outcome.objective
                    );
                    rows.push(Table2Row {
                        method: "ip".into(),
                        delta_r: delta_label.clone(),
                        seconds: elapsed,
                        cost_mean: outcome.objective,
                        cost_ci95: 0.0,
                        convergence: vec![(elapsed, outcome.objective)],
                    });
                }
                Err(err) => eprintln!("  ip failed: {err}"),
            }
        }
    }
    write_json("table2_fig7_fig8_solvers", &rows);
    println!("(Fig. 7 convergence curves and Fig. 8 compute times are the `convergence` and `seconds` fields of results/table2_fig7_fig8_solvers.json)");
}

// ---------------------------------------------------------------------------
// Fig. 9: Algorithm 2 (LP) solve time vs s_max.
// ---------------------------------------------------------------------------
#[derive(Serialize)]
struct Fig9Row {
    s_max: usize,
    seconds: f64,
    lp_pivots: usize,
    expected_cost: f64,
}

fn fig9(full: bool) {
    println!("\n== Fig. 9: Algorithm 2 solve time vs s_max ==");
    let sizes: Vec<usize> = if full {
        vec![4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]
    } else {
        vec![4, 8, 16, 32, 64, 128]
    };
    let mut rows = Vec::new();
    for s_max in sizes {
        let problem = ReplicationProblem::new(ReplicationConfig {
            s_max,
            fault_threshold: 3,
            availability_target: 0.9,
            node_survival_probability: 0.9,
        })
        .expect("valid problem");
        let start = std::time::Instant::now();
        match problem.solve() {
            Ok(strategy) => {
                let seconds = start.elapsed().as_secs_f64();
                println!(
                    "  s_max = {s_max:<5} solved in {seconds:8.3}s  ({} pivots, cost {:.2})",
                    strategy.lp_pivots(),
                    strategy.expected_cost()
                );
                rows.push(Fig9Row {
                    s_max,
                    seconds,
                    lp_pivots: strategy.lp_pivots(),
                    expected_cost: strategy.expected_cost(),
                });
            }
            Err(err) => eprintln!("  s_max = {s_max}: {err}"),
        }
    }
    write_json("fig9_lp_scaling", &rows);
}

// ---------------------------------------------------------------------------
// Fig. 10: MinBFT throughput.
// ---------------------------------------------------------------------------
fn fig10(full: bool) {
    println!("\n== Fig. 10: MinBFT throughput vs number of replicas ==");
    let duration = if full { 60.0 } else { 20.0 };
    let mut rows = Vec::new();
    for clients in [1usize, 20] {
        let mut series = Vec::new();
        for n in 3..=10usize {
            let mut cluster =
                tolerance_consensus::MinBftCluster::new(tolerance_consensus::MinBftConfig {
                    initial_replicas: n,
                    seed: 42,
                    ..Default::default()
                });
            let report = cluster.run_throughput(clients, duration);
            series.push(report.requests_per_second);
            rows.push(report);
        }
        println!("  {clients:>2} client(s): {}", sparkline(&series));
        for (i, rate) in series.iter().enumerate() {
            println!("    N = {:<2} {:7.1} req/s", i + 3, rate);
        }
    }
    write_json("fig10_minbft_throughput", &rows);
}

// ---------------------------------------------------------------------------
// Fig. 11: empirical alert distributions per container.
// ---------------------------------------------------------------------------
#[derive(Serialize)]
struct Fig11Row {
    container_id: u8,
    vulnerabilities: Vec<String>,
    healthy: Vec<f64>,
    compromised: Vec<f64>,
    kl_divergence: f64,
}

fn fig11(full: bool) {
    println!("\n== Fig. 11: empirical alert distributions per container ==");
    let samples = if full { 25_000 } else { 5_000 };
    let catalogue = ContainerCatalog::paper_catalog();
    let mut rng = StdRng::seed_from_u64(11);
    let mut rows = Vec::new();
    for container in catalogue.containers() {
        let ids = IdsModel::for_container(container);
        let empirical = ids.estimate_empirical(samples, &mut rng);
        let divergence = empirical.detection_divergence().unwrap_or(f64::INFINITY);
        println!(
            "  container {:<2} ({:<28}) D_KL(H||C) = {:.3}  healthy {}  compromised {}",
            container.id,
            container.vulnerabilities.join(","),
            divergence,
            sparkline(empirical.healthy_distribution()),
            sparkline(empirical.compromised_distribution()),
        );
        rows.push(Fig11Row {
            container_id: container.id,
            vulnerabilities: container
                .vulnerabilities
                .iter()
                .map(|s| s.to_string())
                .collect(),
            healthy: empirical.healthy_distribution().to_vec(),
            compromised: empirical.compromised_distribution().to_vec(),
            kl_divergence: divergence,
        });
    }
    write_json("fig11_alert_distributions", &rows);
}

// ---------------------------------------------------------------------------
// Table 7 / Fig. 12: TOLERANCE vs baselines.
// ---------------------------------------------------------------------------
fn table7_fig12(full: bool, runner: &Runner) {
    println!("\n== Table 7 / Fig. 12: TOLERANCE vs baseline strategies ==");
    let grid = if full {
        EvaluationGrid::default()
    } else {
        EvaluationGrid::quick()
    };
    let cells = grid.cells().len();
    println!(
        "  ({} cells x {} seeds on {} worker threads)",
        cells,
        grid.seeds,
        runner.effective_threads(cells * grid.seeds)
    );
    match grid.run_with(runner) {
        Ok(rows) => {
            println!(
                "  {:<18} {:>3} {:>5} | {:>16} {:>18} {:>14}",
                "strategy", "N1", "dR", "T(A)", "T(R)", "F(R)"
            );
            for row in &rows {
                println!(
                    "  {:<18} {:>3} {:>5} | {:7.3} ± {:5.3} {:9.2} ± {:6.2} {:7.3} ± {:5.3}",
                    row.strategy,
                    row.initial_nodes,
                    row.delta_r
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "inf".into()),
                    row.availability.0,
                    row.availability.1,
                    row.time_to_recovery.0,
                    row.time_to_recovery.1,
                    row.recovery_frequency.0,
                    row.recovery_frequency.1,
                );
            }
            write_json("table7_fig12_comparison", &rows);
        }
        Err(err) => eprintln!("  comparison failed: {err}"),
    }
}

// ---------------------------------------------------------------------------
// Fig. 13: learned strategies.
// ---------------------------------------------------------------------------
#[derive(Serialize)]
struct Fig13Output {
    replication_add_probability: Vec<f64>,
    recovery_threshold: f64,
}

fn fig13() {
    println!("\n== Fig. 13: replication strategy pi(a=1|s) and recovery threshold ==");
    let replication = ReplicationProblem::new(ReplicationConfig {
        s_max: 13,
        fault_threshold: 1,
        availability_target: 0.9,
        node_survival_probability: 0.95,
    })
    .expect("valid problem")
    .solve()
    .expect("feasible");
    println!(
        "  pi(add | s): {}",
        sparkline(replication.add_probabilities())
    );
    for (s, p) in replication.add_probabilities().iter().enumerate() {
        println!("    s = {s:<3} add probability {p:.2}");
    }

    let model = paper_model(0.1);
    let problem = RecoveryProblem::new(
        model,
        RecoveryConfig {
            eta: 2.0,
            delta_r: None,
        },
    )
    .expect("valid problem");
    let alg = Alg1::new(Alg1Config {
        evaluation_episodes: 30,
        horizon: 100,
        iterations: 15,
        population: 30,
        seed: 3,
    });
    let mut rng = StdRng::seed_from_u64(3);
    let outcome = alg
        .solve(&problem, OptimizerKind::Cem, &mut rng)
        .expect("alg1 succeeds");
    let threshold = outcome.strategy.threshold_at(0);
    println!("  recovery threshold alpha* = {threshold:.2} (paper reports 0.76)");
    write_json(
        "fig13_strategies",
        &Fig13Output {
            replication_add_probability: replication.add_probabilities().to_vec(),
            recovery_threshold: threshold,
        },
    );
}

// ---------------------------------------------------------------------------
// Fig. 14: sensitivity to the accuracy of the detection model.
// ---------------------------------------------------------------------------
#[derive(Serialize)]
struct Fig14Row {
    lambda: f64,
    kl_divergence: f64,
    optimal_cost: f64,
}

fn fig14(full: bool, runner: &Runner) {
    println!("\n== Fig. 14: optimal recovery cost vs detection-model KL divergence ==");
    let lambdas = if full {
        vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    } else {
        vec![0.0, 0.3, 0.6, 0.9]
    };
    let base_observation = ObservationModel::paper_default();
    // Each lambda is one cell of a parameter grid; the shared runtime
    // executes the whole sensitivity sweep in parallel.
    let cells: Vec<_> = lambdas
        .iter()
        .map(|&lambda| {
            let base_observation = base_observation.clone();
            FnScenario::new(format!("fig14/lambda-{lambda}"), move |seed| {
                let degraded = base_observation.degrade(lambda).expect("valid lambda");
                let divergence = degraded.detection_divergence().unwrap_or(f64::INFINITY);
                let parameters = tolerance_core::node_model::NodeParameters::default();
                let model = NodeModel::new_unchecked(parameters, degraded);
                let solved = RecoveryProblem::new(
                    model,
                    RecoveryConfig {
                        eta: 2.0,
                        delta_r: None,
                    },
                )
                .and_then(|problem| {
                    let alg = Alg1::new(Alg1Config {
                        evaluation_episodes: if full { 50 } else { 15 },
                        horizon: 100,
                        iterations: if full { 20 } else { 8 },
                        population: 20,
                        seed,
                    });
                    let mut rng = StdRng::seed_from_u64(seed);
                    alg.solve(&problem, OptimizerKind::Cem, &mut rng)
                });
                // A failing lambda is skipped, not fatal: the rest of the
                // sweep still produces its rows.
                match solved {
                    Ok(outcome) => Ok(Some(Fig14Row {
                        lambda,
                        kl_divergence: divergence,
                        optimal_cost: outcome.objective,
                    })),
                    Err(err) => {
                        eprintln!("  lambda = {lambda}: {err}");
                        Ok(None)
                    }
                }
            })
        })
        .collect();
    let mut rows = Vec::new();
    match runner.run_cells(&cells, &[14]) {
        Ok(outcomes) => {
            for row in outcomes.into_iter().flatten().flatten() {
                println!(
                    "  lambda = {:.1}  D_KL = {:6.3}  J* = {:.3}",
                    row.lambda, row.kl_divergence, row.optimal_cost
                );
                rows.push(row);
            }
        }
        Err(err) => eprintln!("  sensitivity sweep failed: {err}"),
    }
    write_json("fig14_sensitivity", &rows);
    println!("(lower divergence => less informative IDS => higher optimal cost)");
}

// ---------------------------------------------------------------------------
// Fig. 15: time-dependent thresholds under a BTR constraint.
// ---------------------------------------------------------------------------
fn fig15() {
    println!("\n== Fig. 15: recovery thresholds alpha*_t within a BTR period (Delta_R = 20) ==");
    let model = paper_model(0.1);
    let problem = RecoveryProblem::new(
        model,
        RecoveryConfig {
            eta: 2.0,
            delta_r: Some(20),
        },
    )
    .expect("valid problem");
    let alg = Alg1::new(Alg1Config {
        evaluation_episodes: 25,
        horizon: 100,
        iterations: 15,
        population: 30,
        seed: 15,
    });
    let mut rng = StdRng::seed_from_u64(15);
    let outcome = alg
        .solve(&problem, OptimizerKind::Cem, &mut rng)
        .expect("alg1 succeeds");
    let thresholds = outcome.strategy.thresholds().to_vec();
    println!("  alpha*_t over the period: {}", sparkline(&thresholds));
    for (t, threshold) in thresholds.iter().enumerate() {
        println!("    t = {t:<3} alpha* = {threshold:.2}");
    }
    write_json("fig15_thresholds", &thresholds);
    println!("(Corollary 1 predicts thresholds rising towards the forced recovery; the unconstrained optimizer recovers that trend approximately)");
}

// ---------------------------------------------------------------------------
// Fig. 16: example transition function of Problem 2.
// ---------------------------------------------------------------------------
fn fig16() {
    println!("\n== Fig. 16: transition function f_S(s' | s, a=0) of Problem 2 ==");
    let problem = ReplicationProblem::new(ReplicationConfig {
        s_max: 20,
        fault_threshold: 3,
        availability_target: 0.9,
        node_survival_probability: 0.9,
    })
    .expect("valid problem");
    let mut rows = Vec::new();
    for s in [0usize, 10, 20] {
        let row = problem.transition_row(s, false);
        println!("  s = {s:<3} {}", sparkline(&row));
        rows.push((s, row));
    }
    write_json("fig16_transition_function", &rows);
}

// ---------------------------------------------------------------------------
// Fig. 18: KL divergence of infrastructure metrics.
// ---------------------------------------------------------------------------
fn fig18(full: bool) {
    println!("\n== Fig. 18: information content of infrastructure metrics ==");
    let catalogue = ContainerCatalog::paper_catalog();
    let mut rng = StdRng::seed_from_u64(18);
    let traces = if full { 640 } else { 200 };
    let dataset = TraceDataset::generate(
        catalogue.by_id(1).expect("container 1"),
        traces,
        60,
        &mut rng,
    );
    let mut divergences = dataset.metric_divergences();
    divergences.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (kind, divergence) in &divergences {
        println!("  {:<28} D_KL = {divergence:.3}", kind.name());
    }
    let serializable: Vec<(String, f64)> = divergences
        .iter()
        .map(|(k, d)| (k.name().to_string(), *d))
        .collect();
    write_json("fig18_metric_divergences", &serializable);
}

// Silence the unused-import warning for NodeState, which is used only in some
// configurations of the harness.
#[allow(dead_code)]
fn _observation_reference(state: NodeState) -> NodeState {
    state
}
