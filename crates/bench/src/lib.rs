//! # `tolerance-bench`
//!
//! The benchmark harness of the TOLERANCE reproduction. The `experiments`
//! binary regenerates every table and figure of the paper's evaluation
//! (`cargo run -p tolerance-bench --release --bin experiments -- <experiment>`),
//! and the Criterion benches measure the performance-sensitive pieces
//! (Algorithm 2's LP as a function of `s_max`, MinBFT throughput, belief
//! updates and the Algorithm 1 optimizers).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use serde::Serialize;
use std::path::{Path, PathBuf};

/// Directory into which the experiment binary writes JSON artifacts.
pub const RESULTS_DIR: &str = "results";

/// Serializes an experiment result to `results/<name>.json`, creating the
/// directory if needed. Failures are reported but not fatal (the harness
/// always prints the result to stdout as well).
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = Path::new(RESULTS_DIR);
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => match std::fs::write(&path, json) {
            Ok(()) => Some(path),
            Err(err) => {
                eprintln!("warning: could not write {}: {err}", path.display());
                None
            }
        },
        Err(err) => {
            eprintln!("warning: could not serialize {name}: {err}");
            None
        }
    }
}

/// Renders a simple ASCII sparkline of a numeric series (used to visualize
/// figure-style results in the terminal output).
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let range = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| {
            let level = (((v - min) / range) * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[level.min(LEVELS.len() - 1)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_shapes() {
        assert_eq!(sparkline(&[]), "");
        let line = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
        // Constant series does not panic.
        assert_eq!(sparkline(&[1.0, 1.0]).chars().count(), 2);
    }

    #[test]
    fn write_json_creates_artifact() {
        let value = vec![1.0, 2.0, 3.0];
        let path = write_json("unit-test-artifact", &value);
        if let Some(path) = path {
            let content = std::fs::read_to_string(&path).unwrap();
            assert!(content.contains("1.0"));
            let _ = std::fs::remove_file(path);
        }
    }
}
