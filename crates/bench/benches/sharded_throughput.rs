//! Throughput-vs-shard-count bench of the sharded service plane.
//!
//! Runs the live sharded service (S independent threaded MinBFT groups,
//! each with its own replica threads and closed-loop driver confined to
//! shard-owned keys) at S ∈ {1, 2, 4, 8} and measures aggregate completed
//! requests per second. Shards share nothing, so on a multicore host the
//! aggregate scales near-linearly with S until the cores run out; the
//! scaling assertion (`S=4 ≥ 2.5× S=1`) therefore only arms on hosts with
//! enough parallelism and outside smoke mode — a 1-CPU CI runner reports
//! the numbers without judging them.
//!
//! Besides the console report, the bench writes
//! `BENCH_sharded_throughput.json` to the workspace root — the artifact
//! the CI `shard-smoke` job uploads so the scaling trajectory accumulates.
//! Set `BENCH_SMOKE=1` for the reduced configuration (S ∈ {1, 2, 4}).

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use tolerance_consensus::sharded::{run_sharded_service, ShardedServiceConfig};
use tolerance_consensus::threaded::ThreadedServiceConfig;

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

#[derive(Serialize)]
struct ShardMeasurement {
    shards: usize,
    replicas_per_shard: usize,
    clients_per_shard: usize,
    completed_requests: u64,
    wall_seconds: f64,
    requests_per_second: f64,
    mean_latency: f64,
    consistent: bool,
}

#[derive(Serialize)]
struct ShardedBenchReport {
    benchmark: String,
    host_parallelism: usize,
    smoke: bool,
    duration: f64,
    measurements: Vec<ShardMeasurement>,
    speedup_s4_over_s1: f64,
    /// Whether the near-linear-scaling assertion was armed (enough cores,
    /// full mode) — `false` means the numbers are report-only.
    scaling_asserted: bool,
}

fn bench_sharded_scaling(_c: &mut Criterion) {
    // Non-smoke cells run ≥ 2s each so the throughput numbers average over
    // enough batches to be stable run-to-run.
    let (shard_counts, duration): (&[usize], f64) = if smoke() {
        (&[1, 2, 4], 0.4)
    } else {
        (&[1, 2, 4, 8], 2.0)
    };
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    let measurements: Vec<ShardMeasurement> = shard_counts
        .iter()
        .map(|&shards| {
            let report = run_sharded_service(&ShardedServiceConfig {
                shards,
                service: ThreadedServiceConfig {
                    replicas: 4,
                    clients: 8,
                    batch_size: 16,
                    duration,
                    ..ThreadedServiceConfig::default()
                },
            });
            assert!(report.consistent, "S={shards}: a shard's logs diverged");
            assert!(
                report
                    .per_shard
                    .iter()
                    .all(|shard| shard.completed_requests > 0),
                "S={shards}: a shard completed nothing"
            );
            ShardMeasurement {
                shards,
                replicas_per_shard: report.replicas_per_shard,
                clients_per_shard: report.clients_per_shard,
                completed_requests: report.completed_requests,
                wall_seconds: report.duration,
                requests_per_second: report.requests_per_second,
                mean_latency: report.mean_latency,
                consistent: report.consistent,
            }
        })
        .collect();

    let rps = |shards: usize| {
        measurements
            .iter()
            .find(|m| m.shards == shards)
            .map(|m| m.requests_per_second)
            .unwrap_or(0.0)
    };
    let speedup = rps(4) / rps(1).max(1e-9);
    // 4 shards × (4 replicas + driver) threads want real cores; below that
    // the run is report-only (the acceptance gate runs on multicore).
    let scaling_asserted = !smoke() && host_parallelism >= 8;
    if scaling_asserted {
        assert!(
            speedup >= 2.5,
            "S=4 must reach ≥ 2.5x the S=1 throughput on a multicore host, got {speedup:.2}x"
        );
    }

    let report = ShardedBenchReport {
        benchmark: "sharded_throughput".into(),
        host_parallelism,
        smoke: smoke(),
        duration,
        measurements,
        speedup_s4_over_s1: speedup,
        scaling_asserted,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_sharded_throughput.json");
    std::fs::write(&path, &json).expect("write bench artifact");
    for m in &report.measurements {
        println!(
            "S={:>2}: {:9.1} req/s aggregate ({} completed, mean latency {:.4}s)",
            m.shards, m.requests_per_second, m.completed_requests, m.mean_latency
        );
    }
    println!(
        "speedup S4/S1: {speedup:.2}x on {host_parallelism} hardware threads \
         (scaling assertion {})",
        if scaling_asserted {
            "armed"
        } else {
            "report-only"
        },
    );
}

criterion_group!(benches, bench_sharded_scaling);
criterion_main!(benches);
