//! Throughput bench of the MinBFT service data plane.
//!
//! Measures requests/sec of the batched pipeline at batch sizes
//! {1, 16, 64, 256} under one fixed closed-loop workload (the batching
//! speedup comes from amortizing one USIG signature + one quorum round per
//! batch), verifies that checkpoint compaction bounds retained log memory
//! across a 10k-request run, and measures the threaded (one OS thread per
//! replica) service for a wall-clock data point. Also keeps the Fig. 10
//! cluster-size sweep of the paper.
//!
//! Besides the console report, the bench writes
//! `BENCH_minbft_throughput.json` to the working directory — the artifact
//! the CI bench-smoke job uploads so the performance trajectory
//! accumulates. Set `BENCH_SMOKE=1` to run a reduced configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use tolerance_consensus::socket::run_socket_service;
use tolerance_consensus::threaded::{run_threaded_service, ThreadedServiceConfig};
use tolerance_consensus::workload::{Arrival, WorkloadConfig};
use tolerance_consensus::{MinBftCluster, MinBftConfig, NetworkConfig};

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn bench_cluster(batch_size: usize, checkpoint_period: u64) -> MinBftCluster {
    MinBftCluster::new(MinBftConfig {
        initial_replicas: 4,
        batch_size,
        // Must exceed batch_size * per-message cost, or the age-based flush
        // fragments every batch before it fills.
        batch_delay: 0.1,
        checkpoint_period,
        // The cost batching amortizes: one USIG signature per PREPARE/COMMIT
        // (the paper's testbed signs with RSA-1024).
        signature_time: 0.002,
        // Saturated closed loops push latency past the protocol timeout;
        // the bench measures the data plane, not view-change churn.
        request_timeout: 10.0,
        network: NetworkConfig {
            latency: 0.002,
            jitter: 0.001,
            loss_rate: 0.0,
        },
        seed: 7,
        ..MinBftConfig::default()
    })
}

#[derive(Serialize)]
struct BatchMeasurement {
    batch_size: usize,
    completed_requests: u64,
    requests_per_second: f64,
    mean_latency: f64,
}

#[derive(Serialize)]
struct BoundedMemoryMeasurement {
    requests_executed: u64,
    checkpoint_period: u64,
    batch_size: usize,
    /// `2 * checkpoint_period`: the regression bound on every retained
    /// structure below.
    bound: u64,
    max_retained_log: usize,
    max_prepared: usize,
    max_commit_votes: usize,
    max_checkpoint_votes: usize,
    min_log_start: u64,
}

#[derive(Serialize)]
struct ThreadedMeasurement {
    replicas: usize,
    clients: usize,
    batch_size: usize,
    wall_seconds: f64,
    completed_requests: u64,
    requests_per_second: f64,
    consistent: bool,
    transport_sent: u64,
    transport_dropped: u64,
}

#[derive(Serialize)]
struct PipelineMeasurement {
    pipeline_window: usize,
    completed_requests: u64,
    wall_seconds: f64,
    requests_per_second: f64,
    mean_latency: f64,
    consistent: bool,
}

#[derive(Serialize)]
struct PipelineAxis {
    /// Per-UI USIG signing cost the pipeline overlaps with network RTT.
    signature_time: f64,
    batch_size: usize,
    windows: Vec<PipelineMeasurement>,
    speedup_window4_over_window1: f64,
    /// Whether the ≥ 1.5x assertion was armed (enough hardware threads to
    /// actually run 4 replicas + clients concurrently) — `false` means the
    /// numbers are report-only.
    speedup_asserted: bool,
}

#[derive(Serialize)]
struct SocketMeasurement {
    transport: String,
    completed_requests: u64,
    wall_seconds: f64,
    requests_per_second: f64,
    mean_latency: f64,
    consistent: bool,
    transport_sent: u64,
    transport_dropped: u64,
}

#[derive(Serialize)]
struct Fig10Row {
    replicas: usize,
    clients: usize,
    requests_per_second: f64,
}

#[derive(Serialize)]
struct ThroughputBenchReport {
    benchmark: String,
    replicas: usize,
    clients: usize,
    duration: f64,
    signature_time: f64,
    batches: Vec<BatchMeasurement>,
    speedup_batch64_over_batch1: f64,
    bounded_memory: BoundedMemoryMeasurement,
    threaded: ThreadedMeasurement,
    pipeline: PipelineAxis,
    socket_vs_channel: Vec<SocketMeasurement>,
    fig10: Vec<Fig10Row>,
}

/// One closed-loop workload, identical across batch sizes.
fn batch_sweep(clients: usize, duration: f64) -> Vec<BatchMeasurement> {
    [1usize, 16, 64, 256]
        .into_iter()
        .map(|batch_size| {
            let mut cluster = bench_cluster(batch_size, 0);
            let report = cluster.run_workload(&WorkloadConfig {
                clients,
                arrival: Arrival::Closed,
                duration,
                key_space: 64,
                write_ratio: 0.5,
                seed: 7,
            });
            assert!(
                cluster.logs_are_consistent(),
                "batch {batch_size}: logs diverged"
            );
            BatchMeasurement {
                batch_size,
                completed_requests: report.completed_requests,
                requests_per_second: report.requests_per_second,
                mean_latency: report.mean_latency,
            }
        })
        .collect()
}

/// Drives a compacting cluster until `target` requests executed and reports
/// the retained-structure high-water marks.
fn bounded_memory_run(clients: usize, target: u64) -> BoundedMemoryMeasurement {
    let batch_size = 64;
    let checkpoint_period = 50;
    let mut cluster = bench_cluster(batch_size, checkpoint_period);
    let workload = WorkloadConfig {
        clients,
        arrival: Arrival::Closed,
        duration: 2.0,
        key_space: 256,
        write_ratio: 0.5,
        seed: 11,
    };
    let executed_frontier = |cluster: &MinBftCluster| {
        cluster
            .membership()
            .to_vec()
            .into_iter()
            .filter_map(|id| cluster.executed_len(id))
            .max()
            .unwrap_or(0)
    };
    cluster.run_workload(&workload);
    let mut executed = executed_frontier(&cluster);
    // The workload's clients stay closed-loop: extending the run in slices
    // keeps the request stream flowing until the target count is reached.
    let mut slices = 0;
    while executed < target && slices < 200 {
        let now = cluster.now();
        cluster.run_until(now + 2.0);
        executed = executed_frontier(&cluster);
        slices += 1;
    }
    let members = cluster.membership().to_vec();
    let stats: Vec<_> = members
        .iter()
        .filter_map(|&id| cluster.retained_stats(id))
        .collect();
    assert!(cluster.logs_are_consistent(), "bounded-memory run diverged");
    let bound = 2 * checkpoint_period * batch_size as u64;
    let measurement = BoundedMemoryMeasurement {
        requests_executed: executed,
        checkpoint_period,
        batch_size,
        bound,
        max_retained_log: stats.iter().map(|s| s.retained_log).max().unwrap_or(0),
        max_prepared: stats.iter().map(|s| s.prepared).max().unwrap_or(0),
        max_commit_votes: stats.iter().map(|s| s.commit_votes).max().unwrap_or(0),
        max_checkpoint_votes: stats.iter().map(|s| s.checkpoint_votes).max().unwrap_or(0),
        min_log_start: stats.iter().map(|s| s.log_start).min().unwrap_or(0),
    };
    assert!(
        (measurement.max_retained_log as u64) < bound,
        "retained log {} exceeds bound {bound} after {executed} requests",
        measurement.max_retained_log
    );
    assert!(
        measurement.min_log_start > 0,
        "no compaction happened across {executed} requests"
    );
    measurement
}

/// The pipelined-vs-serial axis: the threaded service at nonzero USIG
/// signing cost, pipeline_window 1 (strictly serial: one in-flight
/// sequence) against wider windows. Signing is paid by a real sleep on the
/// replica thread, so a serial window stacks sign + round trip per
/// sequence while a wide window overlaps them.
fn pipeline_sweep(duration: f64) -> PipelineAxis {
    let signature_time = 0.002;
    let batch_size = 1;
    let windows: Vec<PipelineMeasurement> = [1usize, 4, 8]
        .into_iter()
        .map(|pipeline_window| {
            let report = run_threaded_service(&ThreadedServiceConfig {
                replicas: 4,
                clients: 8,
                batch_size,
                pipeline_window,
                signature_time,
                checkpoint_period: 100,
                duration,
                ..ThreadedServiceConfig::default()
            });
            assert!(report.consistent, "window {pipeline_window}: logs diverged");
            assert!(
                report.completed_requests > 0,
                "window {pipeline_window}: nothing completed"
            );
            PipelineMeasurement {
                pipeline_window,
                completed_requests: report.completed_requests,
                wall_seconds: report.duration,
                requests_per_second: report.requests_per_second,
                mean_latency: report.mean_latency,
                consistent: report.consistent,
            }
        })
        .collect();
    let rps = |window: usize| {
        windows
            .iter()
            .find(|m| m.pipeline_window == window)
            .map(|m| m.requests_per_second)
            .unwrap_or(0.0)
    };
    let speedup = rps(4) / rps(1).max(1e-9);
    // 4 replica threads + the client driver: on smaller hosts the replicas
    // time-share a core and the overlap the window buys is scheduled away,
    // so the gate becomes report-only (same policy as the sharded scaling
    // bench).
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let speedup_asserted = host_parallelism >= 4;
    if speedup_asserted {
        assert!(
            speedup >= 1.5,
            "pipeline_window=4 must beat window=1 by ≥ 1.5x at \
             signature_time={signature_time}s, got {speedup:.2}x"
        );
    }
    PipelineAxis {
        signature_time,
        batch_size,
        windows,
        speedup_window4_over_window1: speedup,
        speedup_asserted,
    }
}

/// The socket-vs-channel axis: the identical pipelined workload over the
/// in-process channel hub and over real loopback TCP (wire codec + kernel
/// round trips). Report-only — the point is recording what the real
/// serialization and syscalls cost.
fn socket_vs_channel(duration: f64) -> Vec<SocketMeasurement> {
    let config = ThreadedServiceConfig {
        replicas: 4,
        clients: 8,
        batch_size: 4,
        pipeline_window: 4,
        checkpoint_period: 100,
        duration,
        ..ThreadedServiceConfig::default()
    };
    let channel = run_threaded_service(&config);
    let socket = run_socket_service(&config);
    assert!(channel.consistent, "channel transport: logs diverged");
    assert!(socket.consistent, "socket transport: logs diverged");
    assert!(
        socket.completed_requests > 0,
        "the socket service must complete requests"
    );
    [("channel", channel), ("socket", socket)]
        .into_iter()
        .map(|(transport, report)| SocketMeasurement {
            transport: transport.to_string(),
            completed_requests: report.completed_requests,
            wall_seconds: report.duration,
            requests_per_second: report.requests_per_second,
            mean_latency: report.mean_latency,
            consistent: report.consistent,
            transport_sent: report.transport.sent,
            transport_dropped: report.transport.dropped,
        })
        .collect()
}

fn bench_data_plane(_c: &mut Criterion) {
    let (clients, duration, mem_target, threaded_secs) = if smoke() {
        (64usize, 1.0, 2_000u64, 0.3)
    } else {
        (256usize, 3.0, 10_000u64, 0.6)
    };

    let batches = batch_sweep(clients, duration);
    let rps = |batch: usize| {
        batches
            .iter()
            .find(|m| m.batch_size == batch)
            .map(|m| m.requests_per_second)
            .unwrap_or(0.0)
    };
    let speedup = rps(64) / rps(1).max(1e-9);
    assert!(
        speedup >= 5.0,
        "batch=64 must be ≥ 5x batch=1 on the same workload, got {speedup:.2}x"
    );

    let bounded_memory = bounded_memory_run(clients, mem_target);

    let pipeline = pipeline_sweep(if smoke() { 0.4 } else { 1.0 });
    let socket_rows = socket_vs_channel(if smoke() { 0.4 } else { 1.0 });

    let threaded_report = run_threaded_service(&ThreadedServiceConfig {
        replicas: 4,
        clients: 16,
        batch_size: 16,
        checkpoint_period: 100,
        duration: threaded_secs,
        ..ThreadedServiceConfig::default()
    });
    assert!(threaded_report.consistent, "threaded logs diverged");

    // Fig. 10 shape: throughput vs cluster size at 20 closed-loop clients.
    let fig10: Vec<Fig10Row> = [3usize, 5, 7, 10]
        .into_iter()
        .map(|n| {
            let mut cluster = MinBftCluster::new(MinBftConfig {
                initial_replicas: n,
                seed: 7,
                ..MinBftConfig::default()
            });
            let report = cluster.run_throughput(20, if smoke() { 2.0 } else { 5.0 });
            Fig10Row {
                replicas: n,
                clients: 20,
                requests_per_second: report.requests_per_second,
            }
        })
        .collect();

    let report = ThroughputBenchReport {
        benchmark: "minbft_throughput_data_plane".into(),
        replicas: 4,
        clients,
        duration,
        signature_time: 0.002,
        batches,
        speedup_batch64_over_batch1: speedup,
        bounded_memory,
        threaded: ThreadedMeasurement {
            replicas: threaded_report.replicas,
            clients: threaded_report.clients,
            batch_size: 16,
            wall_seconds: threaded_report.duration,
            completed_requests: threaded_report.completed_requests,
            requests_per_second: threaded_report.requests_per_second,
            consistent: threaded_report.consistent,
            transport_sent: threaded_report.transport.sent,
            transport_dropped: threaded_report.transport.dropped,
        },
        pipeline,
        socket_vs_channel: socket_rows,
        fig10,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    // Anchor the artifact at the workspace root regardless of the bench's
    // working directory.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_minbft_throughput.json");
    std::fs::write(&path, &json).expect("write bench artifact");
    for m in &report.batches {
        println!(
            "batch {:>3}: {:8.1} req/s ({} completed, mean latency {:.4}s)",
            m.batch_size, m.requests_per_second, m.completed_requests, m.mean_latency
        );
    }
    println!(
        "speedup batch64/batch1: {speedup:.2}x; bounded memory: retained {} (bound {}) across \
         {} requests; threaded: {:.1} req/s over {} threads",
        report.bounded_memory.max_retained_log,
        report.bounded_memory.bound,
        report.bounded_memory.requests_executed,
        report.threaded.requests_per_second,
        report.threaded.replicas,
    );
    for m in &report.pipeline.windows {
        println!(
            "pipeline window {:>2}: {:8.1} req/s ({} completed, mean latency {:.4}s)",
            m.pipeline_window, m.requests_per_second, m.completed_requests, m.mean_latency
        );
    }
    println!(
        "speedup window4/window1 at signature_time={}s: {:.2}x ({})",
        report.pipeline.signature_time,
        report.pipeline.speedup_window4_over_window1,
        if report.pipeline.speedup_asserted {
            "asserted ≥ 1.5x"
        } else {
            "report-only: < 4 hardware threads"
        }
    );
    for m in &report.socket_vs_channel {
        println!(
            "{:>7} transport: {:8.1} req/s ({} completed, mean latency {:.4}s, \
             {} sent / {} dropped)",
            m.transport,
            m.requests_per_second,
            m.completed_requests,
            m.mean_latency,
            m.transport_sent,
            m.transport_dropped
        );
    }
}

fn bench_single_batch_commit(c: &mut Criterion) {
    c.bench_function("minbft_batched_commit_round", |b| {
        b.iter(|| {
            let mut cluster = bench_cluster(16, 0);
            let report = cluster.run_workload(&WorkloadConfig {
                clients: 16,
                arrival: Arrival::Closed,
                duration: 0.25,
                ..WorkloadConfig::default()
            });
            assert!(report.completed_requests > 0);
            report.requests_per_second
        });
    });
}

criterion_group!(benches, bench_data_plane, bench_single_batch_commit);
criterion_main!(benches);
