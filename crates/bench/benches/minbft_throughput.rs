//! Throughput bench of the MinBFT service data plane.
//!
//! Measures requests/sec of the batched pipeline at batch sizes
//! {1, 16, 64, 256} under one fixed closed-loop workload (the batching
//! speedup comes from amortizing one USIG signature + one quorum round per
//! batch), verifies that checkpoint compaction bounds retained log memory
//! across a 10k-request run, and measures the threaded (one OS thread per
//! replica) service for a wall-clock data point. Also keeps the Fig. 10
//! cluster-size sweep of the paper.
//!
//! Besides the console report, the bench writes
//! `BENCH_minbft_throughput.json` to the working directory — the artifact
//! the CI bench-smoke job uploads so the performance trajectory
//! accumulates. Set `BENCH_SMOKE=1` to run a reduced configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use tolerance_consensus::threaded::{run_threaded_service, ThreadedServiceConfig};
use tolerance_consensus::workload::{Arrival, WorkloadConfig};
use tolerance_consensus::{MinBftCluster, MinBftConfig, NetworkConfig};

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn bench_cluster(batch_size: usize, checkpoint_period: u64) -> MinBftCluster {
    MinBftCluster::new(MinBftConfig {
        initial_replicas: 4,
        batch_size,
        // Must exceed batch_size * per-message cost, or the age-based flush
        // fragments every batch before it fills.
        batch_delay: 0.1,
        checkpoint_period,
        // The cost batching amortizes: one USIG signature per PREPARE/COMMIT
        // (the paper's testbed signs with RSA-1024).
        signature_time: 0.002,
        // Saturated closed loops push latency past the protocol timeout;
        // the bench measures the data plane, not view-change churn.
        request_timeout: 10.0,
        network: NetworkConfig {
            latency: 0.002,
            jitter: 0.001,
            loss_rate: 0.0,
        },
        seed: 7,
        ..MinBftConfig::default()
    })
}

#[derive(Serialize)]
struct BatchMeasurement {
    batch_size: usize,
    completed_requests: u64,
    requests_per_second: f64,
    mean_latency: f64,
}

#[derive(Serialize)]
struct BoundedMemoryMeasurement {
    requests_executed: u64,
    checkpoint_period: u64,
    batch_size: usize,
    /// `2 * checkpoint_period`: the regression bound on every retained
    /// structure below.
    bound: u64,
    max_retained_log: usize,
    max_prepared: usize,
    max_commit_votes: usize,
    max_checkpoint_votes: usize,
    min_log_start: u64,
}

#[derive(Serialize)]
struct ThreadedMeasurement {
    replicas: usize,
    clients: usize,
    batch_size: usize,
    wall_seconds: f64,
    completed_requests: u64,
    requests_per_second: f64,
    consistent: bool,
    transport_sent: u64,
    transport_dropped: u64,
}

#[derive(Serialize)]
struct Fig10Row {
    replicas: usize,
    clients: usize,
    requests_per_second: f64,
}

#[derive(Serialize)]
struct ThroughputBenchReport {
    benchmark: String,
    replicas: usize,
    clients: usize,
    duration: f64,
    signature_time: f64,
    batches: Vec<BatchMeasurement>,
    speedup_batch64_over_batch1: f64,
    bounded_memory: BoundedMemoryMeasurement,
    threaded: ThreadedMeasurement,
    fig10: Vec<Fig10Row>,
}

/// One closed-loop workload, identical across batch sizes.
fn batch_sweep(clients: usize, duration: f64) -> Vec<BatchMeasurement> {
    [1usize, 16, 64, 256]
        .into_iter()
        .map(|batch_size| {
            let mut cluster = bench_cluster(batch_size, 0);
            let report = cluster.run_workload(&WorkloadConfig {
                clients,
                arrival: Arrival::Closed,
                duration,
                key_space: 64,
                write_ratio: 0.5,
                seed: 7,
            });
            assert!(
                cluster.logs_are_consistent(),
                "batch {batch_size}: logs diverged"
            );
            BatchMeasurement {
                batch_size,
                completed_requests: report.completed_requests,
                requests_per_second: report.requests_per_second,
                mean_latency: report.mean_latency,
            }
        })
        .collect()
}

/// Drives a compacting cluster until `target` requests executed and reports
/// the retained-structure high-water marks.
fn bounded_memory_run(clients: usize, target: u64) -> BoundedMemoryMeasurement {
    let batch_size = 64;
    let checkpoint_period = 50;
    let mut cluster = bench_cluster(batch_size, checkpoint_period);
    let workload = WorkloadConfig {
        clients,
        arrival: Arrival::Closed,
        duration: 2.0,
        key_space: 256,
        write_ratio: 0.5,
        seed: 11,
    };
    let executed_frontier = |cluster: &MinBftCluster| {
        cluster
            .membership()
            .to_vec()
            .into_iter()
            .filter_map(|id| cluster.executed_len(id))
            .max()
            .unwrap_or(0)
    };
    cluster.run_workload(&workload);
    let mut executed = executed_frontier(&cluster);
    // The workload's clients stay closed-loop: extending the run in slices
    // keeps the request stream flowing until the target count is reached.
    let mut slices = 0;
    while executed < target && slices < 200 {
        let now = cluster.now();
        cluster.run_until(now + 2.0);
        executed = executed_frontier(&cluster);
        slices += 1;
    }
    let members = cluster.membership().to_vec();
    let stats: Vec<_> = members
        .iter()
        .filter_map(|&id| cluster.retained_stats(id))
        .collect();
    assert!(cluster.logs_are_consistent(), "bounded-memory run diverged");
    let bound = 2 * checkpoint_period * batch_size as u64;
    let measurement = BoundedMemoryMeasurement {
        requests_executed: executed,
        checkpoint_period,
        batch_size,
        bound,
        max_retained_log: stats.iter().map(|s| s.retained_log).max().unwrap_or(0),
        max_prepared: stats.iter().map(|s| s.prepared).max().unwrap_or(0),
        max_commit_votes: stats.iter().map(|s| s.commit_votes).max().unwrap_or(0),
        max_checkpoint_votes: stats.iter().map(|s| s.checkpoint_votes).max().unwrap_or(0),
        min_log_start: stats.iter().map(|s| s.log_start).min().unwrap_or(0),
    };
    assert!(
        (measurement.max_retained_log as u64) < bound,
        "retained log {} exceeds bound {bound} after {executed} requests",
        measurement.max_retained_log
    );
    assert!(
        measurement.min_log_start > 0,
        "no compaction happened across {executed} requests"
    );
    measurement
}

fn bench_data_plane(_c: &mut Criterion) {
    let (clients, duration, mem_target, threaded_secs) = if smoke() {
        (64usize, 1.0, 2_000u64, 0.3)
    } else {
        (256usize, 3.0, 10_000u64, 0.6)
    };

    let batches = batch_sweep(clients, duration);
    let rps = |batch: usize| {
        batches
            .iter()
            .find(|m| m.batch_size == batch)
            .map(|m| m.requests_per_second)
            .unwrap_or(0.0)
    };
    let speedup = rps(64) / rps(1).max(1e-9);
    assert!(
        speedup >= 5.0,
        "batch=64 must be ≥ 5x batch=1 on the same workload, got {speedup:.2}x"
    );

    let bounded_memory = bounded_memory_run(clients, mem_target);

    let threaded_report = run_threaded_service(&ThreadedServiceConfig {
        replicas: 4,
        clients: 16,
        batch_size: 16,
        checkpoint_period: 100,
        duration: threaded_secs,
        ..ThreadedServiceConfig::default()
    });
    assert!(threaded_report.consistent, "threaded logs diverged");

    // Fig. 10 shape: throughput vs cluster size at 20 closed-loop clients.
    let fig10: Vec<Fig10Row> = [3usize, 5, 7, 10]
        .into_iter()
        .map(|n| {
            let mut cluster = MinBftCluster::new(MinBftConfig {
                initial_replicas: n,
                seed: 7,
                ..MinBftConfig::default()
            });
            let report = cluster.run_throughput(20, if smoke() { 2.0 } else { 5.0 });
            Fig10Row {
                replicas: n,
                clients: 20,
                requests_per_second: report.requests_per_second,
            }
        })
        .collect();

    let report = ThroughputBenchReport {
        benchmark: "minbft_throughput_data_plane".into(),
        replicas: 4,
        clients,
        duration,
        signature_time: 0.002,
        batches,
        speedup_batch64_over_batch1: speedup,
        bounded_memory,
        threaded: ThreadedMeasurement {
            replicas: threaded_report.replicas,
            clients: threaded_report.clients,
            batch_size: 16,
            wall_seconds: threaded_report.duration,
            completed_requests: threaded_report.completed_requests,
            requests_per_second: threaded_report.requests_per_second,
            consistent: threaded_report.consistent,
            transport_sent: threaded_report.transport.sent,
            transport_dropped: threaded_report.transport.dropped,
        },
        fig10,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    // Anchor the artifact at the workspace root regardless of the bench's
    // working directory.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_minbft_throughput.json");
    std::fs::write(&path, &json).expect("write bench artifact");
    for m in &report.batches {
        println!(
            "batch {:>3}: {:8.1} req/s ({} completed, mean latency {:.4}s)",
            m.batch_size, m.requests_per_second, m.completed_requests, m.mean_latency
        );
    }
    println!(
        "speedup batch64/batch1: {speedup:.2}x; bounded memory: retained {} (bound {}) across \
         {} requests; threaded: {:.1} req/s over {} threads",
        report.bounded_memory.max_retained_log,
        report.bounded_memory.bound,
        report.bounded_memory.requests_executed,
        report.threaded.requests_per_second,
        report.threaded.replicas,
    );
}

fn bench_single_batch_commit(c: &mut Criterion) {
    c.bench_function("minbft_batched_commit_round", |b| {
        b.iter(|| {
            let mut cluster = bench_cluster(16, 0);
            let report = cluster.run_workload(&WorkloadConfig {
                clients: 16,
                arrival: Arrival::Closed,
                duration: 0.25,
                ..WorkloadConfig::default()
            });
            assert!(report.completed_requests > 0);
            report.requests_per_second
        });
    });
}

criterion_group!(benches, bench_data_plane, bench_single_batch_commit);
criterion_main!(benches);
