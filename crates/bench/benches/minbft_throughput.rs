//! Criterion bench for Fig. 10: MinBFT throughput for different cluster
//! sizes and client loads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tolerance_consensus::{MinBftCluster, MinBftConfig};

fn bench_minbft(c: &mut Criterion) {
    let mut group = c.benchmark_group("minbft_throughput");
    group.sample_size(10);
    for &(replicas, clients) in &[(3usize, 1usize), (3, 20), (7, 1), (7, 20), (10, 20)] {
        let id = format!("n{replicas}_c{clients}");
        group.bench_with_input(
            BenchmarkId::from_parameter(id),
            &(replicas, clients),
            |b, &(n, k)| {
                b.iter(|| {
                    let mut cluster = MinBftCluster::new(MinBftConfig {
                        initial_replicas: n,
                        seed: 7,
                        ..MinBftConfig::default()
                    });
                    let report = cluster.run_throughput(k, 5.0);
                    assert!(report.completed_requests > 0);
                    report.requests_per_second
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_minbft);
criterion_main!(benches);
