//! Adaptive-vs-static proof matrix of the self-tuning data plane.
//!
//! One MinBFT cluster serves a 10x diurnal offered-load swing (sinusoidal
//! arrival rate, amplitude 9/11, so peak/trough = 10) in *simulated* time.
//! The static grid fixes the leader batch size at {1, 16, 64, 256} and the
//! client concurrency cap at {4, 32} for the whole day; the tuned cell runs
//! the full third feedback loop — windowed p99/queue observations into the
//! AIMD controller, actuation through `set_batch_config` (clamped to the
//! fragmentation floor), concurrency capping, watermark admission
//! (delay/shed) and a client retry budget.
//!
//! No static point can serve both phases well: a big batch amortizes the
//! signature cost at peak but its fragmentation-floor flush delay ruins
//! trough latency, while batch 1 has minimal latency at the trough and
//! collapses at peak. The armed assertions are therefore the *frontier*
//! claims: (a) no static cell strictly dominates the tuned plane on
//! (completed, p99) beyond a 2% noise margin, (b) the tuned plane strictly
//! dominates at least one static cell, and (c) it completes at least 80%
//! of the best static cell's throughput — its latency edge is not bought
//! with drops.
//!
//! The run is seeded and advances simulated (not wall-clock) time, so the
//! measurements are deterministic and the assertion arms on any host
//! outside smoke mode. Besides the console table, the bench writes
//! `BENCH_autotune.json` to the workspace root — the artifact the CI
//! `autotune-smoke` job uploads. Set `BENCH_SMOKE=1` for the reduced
//! configuration (one diurnal period, batch {1, 64}).

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use tolerance_consensus::metrics::LatencyHistogram;
use tolerance_consensus::minbft::Operation;
use tolerance_consensus::{MinBftCluster, MinBftConfig, NetworkConfig, RetryBudgetConfig};
use tolerance_core::controlplane::autotune::{
    Admission, AutotuneConfig, AutotuneController, AutotuneObservation,
};
use tolerance_core::simnet::AutotuneTickRecord;

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

/// The diurnal workload: `rate(t) = base · (1 + a·sin(2πt/period))` with
/// `a = 9/11`, so the peak rate is 10x the trough rate.
const DIURNAL_AMPLITUDE: f64 = 9.0 / 11.0;
/// Simulated seconds per driver step.
const STEP: f64 = 0.05;
/// Undelivered demand the driver keeps before dropping arrivals. Kept
/// small so overload shows up as drops (lost throughput) rather than as an
/// invisible out-of-cluster queue.
const BACKLOG_CAP: u64 = 64;

#[derive(Clone, Copy)]
struct SwingParams {
    /// Mean arrival rate (req/s); peak is `base·(1+a)`, trough `base·(1−a)`.
    base_rate: f64,
    /// One diurnal period in simulated seconds.
    period: f64,
    /// Total driven horizon in simulated seconds.
    horizon: f64,
    /// Client pool size (the hi-concurrency cap).
    pool: usize,
}

/// One measured cell of the matrix.
#[derive(Serialize)]
struct CellMeasurement {
    label: String,
    tuned: bool,
    /// Static cells: the fixed knobs. Tuned: the initial knobs.
    batch_size: usize,
    concurrency: usize,
    /// The actuated flush delay of static cells (after the cluster clamp).
    batch_delay: f64,
    offered: u64,
    completed: u64,
    dropped: u64,
    p99: f64,
    mean_latency: f64,
    /// Tuned only: windows judged overloaded / total windows.
    overloaded_windows: usize,
    windows: usize,
}

#[derive(Serialize)]
struct AutotuneBenchReport {
    benchmark: String,
    smoke: bool,
    base_rate: f64,
    period: f64,
    horizon: f64,
    diurnal_amplitude: f64,
    cells: Vec<CellMeasurement>,
    /// Whether the frontier assertion was armed (full mode) — `false`
    /// means the numbers are report-only.
    frontier_asserted: bool,
}

fn cluster_config(seed: u64) -> MinBftConfig {
    MinBftConfig {
        initial_replicas: 4,
        // A visible signature cost is what adaptive batching amortizes.
        signature_time: 0.003,
        processing_time: 0.0008,
        network: NetworkConfig {
            latency: 0.002,
            jitter: 0.001,
            loss_rate: 0.0,
        },
        checkpoint_period: 50,
        request_timeout: 2.0,
        seed,
        ..MinBftConfig::default()
    }
}

/// Drives one cell of the matrix through the full swing and a final drain.
/// `tuner = None` runs the static plane (fixed knobs, no admission, no
/// budget); `Some` runs the complete feedback loop.
fn run_cell(
    label: &str,
    params: SwingParams,
    batch_size: usize,
    concurrency: usize,
    mut tuner: Option<AutotuneController>,
) -> CellMeasurement {
    let mut cluster = MinBftCluster::new(cluster_config(7));
    let (actuated_batch, actuated_delay) = match tuner.as_ref() {
        // The controller owns the knobs; publish its initial set.
        Some(t) => cluster.set_batch_config(t.batch_size(), t.batch_delay()),
        // Static knobs still go through the cluster clamp, so every grid
        // point is a *valid* configuration (the honest comparison).
        None => cluster.set_batch_config(batch_size, 0.005),
    };
    if tuner.is_some() {
        cluster.set_retry_budget(Some(RetryBudgetConfig::default()));
    }
    let pool: Vec<_> = (0..params.pool).map(|_| cluster.add_client()).collect();
    let mut cap = if tuner.is_some() {
        tuner.as_ref().map(|t| t.concurrency()).unwrap_or(1)
    } else {
        concurrency
    };
    let mut admission = Admission::Accept;
    let window_steps = tuner
        .as_ref()
        .map(|t| t.config().window_steps.max(1))
        .unwrap_or(u32::MAX);

    let steps = (params.horizon / STEP).round() as u32;
    let mut carry = 0.0_f64;
    let mut backlog = 0_u64;
    let mut offered = 0_u64;
    let mut dropped = 0_u64;
    let mut value = 0_u64;
    let mut latencies: Vec<f64> = Vec::new();
    let mut decisions: Vec<AutotuneTickRecord> = Vec::new();
    let mut last_suppressed = 0_u64;

    for step in 0..steps {
        // Window tick first, exactly like the sharded executor: observe
        // the drained latencies and the in-flight queue, actuate.
        if let Some(controller) = tuner.as_mut().filter(|_| step % window_steps == 0) {
            let drained = cluster.take_latencies();
            let mut histogram = LatencyHistogram::new();
            for &sample in &drained {
                histogram.record(sample);
            }
            let (_, suppressed_total) = cluster.retransmission_stats();
            let suppressed = suppressed_total.saturating_sub(last_suppressed);
            last_suppressed = suppressed_total;
            let decision = controller.observe(AutotuneObservation {
                completed: drained.len() as u64,
                p99: histogram.quantile(0.99),
                queue_depth: cluster.network_in_flight() as u64,
                suppressed,
            });
            cluster.set_batch_config(decision.batch_size, decision.batch_delay);
            cap = decision.concurrency;
            admission = decision.admission;
            latencies.extend(drained);
            decisions.push(AutotuneTickRecord { step, decision });
        }
        // Diurnal arrivals, accumulated deterministically.
        let t = step as f64 * STEP;
        let rate = params.base_rate
            * (1.0 + DIURNAL_AMPLITUDE * (2.0 * std::f64::consts::PI * t / params.period).sin());
        carry += rate * STEP;
        let arrivals = carry.floor() as u64;
        carry -= arrivals as f64;
        offered += arrivals;
        match admission {
            Admission::Shed => dropped += arrivals,
            Admission::Accept | Admission::Delay => {
                backlog += arrivals;
                if backlog > BACKLOG_CAP {
                    dropped += backlog - BACKLOG_CAP;
                    backlog = BACKLOG_CAP;
                }
            }
        }
        // Submit from the backlog through the free clients inside the cap
        // (Delay admits nothing new this step; the backlog keeps it).
        if admission != Admission::Delay {
            for &client in pool.iter().take(cap) {
                if backlog == 0 {
                    break;
                }
                if !cluster.has_outstanding_request(client) {
                    value += 1;
                    cluster.submit(
                        client,
                        Operation::Put {
                            key: (value % 32) as u32,
                            value,
                        },
                    );
                    backlog -= 1;
                }
            }
        }
        cluster.run_until((step + 1) as f64 * STEP);
    }
    // Drain the in-flight tail so slow cells pay for their queues in p99
    // rather than hiding them.
    cluster.run_until_quiet(params.horizon + 60.0);
    latencies.extend(cluster.take_latencies());

    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    let p99 = if sorted.is_empty() {
        0.0
    } else {
        sorted[((sorted.len() as f64 * 0.99).ceil() as usize).min(sorted.len()) - 1]
    };
    let mean = if sorted.is_empty() {
        0.0
    } else {
        sorted.iter().sum::<f64>() / sorted.len() as f64
    };
    CellMeasurement {
        label: label.into(),
        tuned: tuner.is_some(),
        batch_size: actuated_batch,
        concurrency: cap,
        batch_delay: actuated_delay,
        offered,
        completed: latencies.len() as u64,
        dropped,
        p99,
        mean_latency: mean,
        overloaded_windows: decisions.iter().filter(|d| d.decision.overloaded).count(),
        windows: decisions.len(),
    }
}

fn tune_config(pool: usize) -> AutotuneConfig {
    AutotuneConfig {
        // The latency SLO is *binding*: the fragmentation floor of a
        // 14-request batch already reaches it, so the controller must
        // keep shrinking batches whenever load allows instead of riding
        // the operator bound — that is what buys the latency edge over
        // the static throughput-optimal cell.
        p99_target: 0.05,
        initial_batch: 8,
        max_batch: 32,
        batch_step: 4,
        initial_concurrency: 16,
        max_concurrency: pool,
        concurrency_step: 4,
        // Observe every 10 driver steps = 0.5 simulated seconds.
        window_steps: 10,
        // Protocol traffic alone keeps tens of messages in flight; the
        // watermarks must sit above that steady-state so backpressure
        // fires on real queue growth, not on the consensus chatter.
        delay_watermark: 192,
        shed_watermark: 512,
        // Match the cluster's cost model exactly, so the actuated pair is
        // the validated pair.
        processing_time: 0.0008,
        signature_time: 0.003,
        base_batch_delay: 0.005,
        ..AutotuneConfig::default()
    }
}

fn bench_autotune_matrix(_c: &mut Criterion) {
    let params = if smoke() {
        SwingParams {
            base_rate: 120.0,
            period: 10.0,
            horizon: 10.0,
            pool: 32,
        }
    } else {
        SwingParams {
            base_rate: 120.0,
            period: 10.0,
            horizon: 20.0,
            pool: 32,
        }
    };
    let static_batches: &[usize] = if smoke() { &[1, 64] } else { &[1, 16, 64, 256] };
    let static_concurrency = [4usize, 32];

    let mut cells = Vec::new();
    for &batch in static_batches {
        for &cap in &static_concurrency {
            let label = format!("static-b{batch}-c{cap}");
            cells.push(run_cell(&label, params, batch, cap, None));
        }
    }
    let tuned = run_cell(
        "tuned",
        params,
        1,
        params.pool,
        Some(AutotuneController::new(&tune_config(params.pool))),
    );
    assert!(
        tuned.windows > 0,
        "the tuned cell must have ticked its controller"
    );
    cells.push(tuned);

    let frontier_asserted = !smoke();
    let report = AutotuneBenchReport {
        benchmark: "autotune".into(),
        smoke: smoke(),
        base_rate: params.base_rate,
        period: params.period,
        horizon: params.horizon,
        diurnal_amplitude: DIURNAL_AMPLITUDE,
        cells,
        frontier_asserted,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_autotune.json");
    std::fs::write(&path, &json).expect("write bench artifact");
    for cell in &report.cells {
        println!(
            "{:<16} completed {:>5}/{:<5} (dropped {:>4})  p99 {:>8.4}s  mean {:>8.4}s{}",
            cell.label,
            cell.completed,
            cell.offered,
            cell.dropped,
            cell.p99,
            cell.mean_latency,
            if cell.tuned {
                format!(
                    "  [{} windows, {} overloaded]",
                    cell.windows, cell.overloaded_windows
                )
            } else {
                String::new()
            }
        );
    }
    println!(
        "frontier assertion {}",
        if report.frontier_asserted {
            "armed"
        } else {
            "report-only"
        }
    );

    // Assertions run *after* the table and artifact are out, so a failing
    // run still reports the whole matrix.
    let tuned = report.cells.last().expect("tuned cell");
    let statics = &report.cells[..report.cells.len() - 1];
    if frontier_asserted {
        // The frontier claim: no static configuration strictly dominates
        // the tuned plane on (completed, p99) beyond a 2% noise margin...
        for cell in statics {
            let dominates = cell.completed as f64 > tuned.completed as f64 * 1.02
                && cell.p99 < tuned.p99 * 0.98;
            assert!(
                !dominates,
                "{} dominates the tuned plane: {} completed @ p99 {:.4}s \
                 vs tuned {} @ {:.4}s",
                cell.label, cell.completed, cell.p99, tuned.completed, tuned.p99
            );
        }
        // ...while the tuned plane strictly dominates at least one static
        // cell (the matrix discriminates) and stays within 20% of the best
        // static throughput (it does not buy its latency with drops).
        assert!(
            statics
                .iter()
                .any(|cell| tuned.completed as f64 > cell.completed as f64 * 1.02
                    && tuned.p99 < cell.p99 * 0.98),
            "the tuned plane dominates no static cell — the matrix is \
             not discriminating"
        );
        let best_static = statics.iter().map(|cell| cell.completed).max().unwrap_or(0);
        assert!(
            tuned.completed as f64 >= best_static as f64 * 0.8,
            "the tuned plane completed {} vs the best static {best_static}",
            tuned.completed
        );
    }
}

criterion_group!(benches, bench_autotune_matrix);
criterion_main!(benches);
