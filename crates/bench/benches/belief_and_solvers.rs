//! Criterion benches for the controller hot path (belief updates), the
//! Algorithm 1 objective evaluation, and the exact POMDP backup — the three
//! computational kernels behind Table 2 and Figs. 7-8, plus an ablation of
//! threshold-restricted search vs the exact dynamic-programming backup.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tolerance_core::node_model::{NodeAction, NodeModel, NodeParameters};
use tolerance_core::observation::ObservationModel;
use tolerance_core::recovery::{RecoveryConfig, RecoveryProblem, ThresholdStrategy};
use tolerance_pomdp::solvers::{IncrementalPruning, IncrementalPruningConfig};
use tolerance_pomdp::ValueFunction;

fn paper_model() -> NodeModel {
    NodeModel::new(NodeParameters::default(), ObservationModel::paper_default()).expect("valid")
}

fn bench_belief_update(c: &mut Criterion) {
    let model = paper_model();
    c.bench_function("belief_update", |b| {
        b.iter(|| {
            let mut belief = 0.1;
            for alerts in 0..10u64 {
                belief = model.belief_update(belief, NodeAction::Wait, alerts);
            }
            belief
        });
    });
}

fn bench_episode_simulation(c: &mut Criterion) {
    let problem = RecoveryProblem::new(paper_model(), RecoveryConfig::default()).expect("valid");
    let strategy = ThresholdStrategy::stationary(0.76).expect("valid");
    c.bench_function("alg1_episode_simulation", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            problem
                .simulate_strategy(&strategy, 100, &mut rng)
                .average_cost
        });
    });
}

fn bench_incremental_pruning_backup(c: &mut Criterion) {
    let problem = RecoveryProblem::new(paper_model(), RecoveryConfig::default()).expect("valid");
    let pomdp = problem.model().to_pomdp(2.0, 0.95).expect("valid pomdp");
    let solver = IncrementalPruning::new(IncrementalPruningConfig {
        max_vectors_per_stage: Some(16),
        ..IncrementalPruningConfig::default()
    });
    c.bench_function("incremental_pruning_backup", |b| {
        b.iter(|| {
            let mut value = ValueFunction::default();
            for _ in 0..3 {
                value = solver.backup(&pomdp, &value).expect("backup succeeds");
            }
            value.len()
        });
    });
}

criterion_group!(
    benches,
    bench_belief_update,
    bench_episode_simulation,
    bench_incremental_pruning_backup
);
criterion_main!(benches);
