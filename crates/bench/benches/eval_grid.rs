//! Benchmark of the shared scenario runtime on the Table-7 evaluation grid:
//! serial vs parallel wall-clock for `EvaluationGrid::quick()` (16 cells ×
//! 3 seeds), plus Criterion-style timings of a single grid cell.
//!
//! Besides the console report, the bench writes `BENCH_eval_grid.json` to
//! the working directory — the first entry of the repository's performance
//! trajectory for the experiment engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serde::Serialize;
use std::time::Instant;
use tolerance_core::runtime::Runner;
use tolerance_emulation::EvaluationGrid;

fn quick_grid() -> EvaluationGrid {
    EvaluationGrid::quick()
}

#[derive(Serialize)]
struct Measurement {
    mode: String,
    threads: usize,
    seconds_best: f64,
    seconds_all: Vec<f64>,
}

#[derive(Serialize)]
struct GridBenchReport {
    benchmark: String,
    cells: usize,
    seeds: usize,
    horizon: u32,
    total_runs: usize,
    host_threads: usize,
    measurements: Vec<Measurement>,
    parallel_speedup: f64,
}

fn time_runner(grid: &EvaluationGrid, runner: &Runner, repetitions: usize) -> Vec<f64> {
    (0..repetitions)
        .map(|_| {
            let start = Instant::now();
            let rows = grid.run_with(runner).expect("grid runs");
            assert_eq!(rows.len(), grid.cells().len());
            start.elapsed().as_secs_f64()
        })
        .collect()
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Times the full quick grid serial vs parallel and writes the JSON
/// artifact seeding the performance trajectory.
fn bench_grid_serial_vs_parallel(_c: &mut Criterion) {
    let grid = quick_grid();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let repetitions = 3;

    let mut measurements = Vec::new();
    let serial_samples = time_runner(&grid, &Runner::serial(), repetitions);
    measurements.push(Measurement {
        mode: "serial".into(),
        threads: 1,
        seconds_best: best(&serial_samples),
        seconds_all: serial_samples,
    });
    for &threads in &[2usize, 4] {
        let samples = time_runner(&grid, &Runner::with_threads(threads), repetitions);
        measurements.push(Measurement {
            mode: format!("parallel-{threads}"),
            threads,
            seconds_best: best(&samples),
            seconds_all: samples,
        });
    }
    let parallel_samples = time_runner(&grid, &Runner::parallel(), repetitions);
    measurements.push(Measurement {
        mode: "parallel-auto".into(),
        threads: host_threads,
        seconds_best: best(&parallel_samples),
        seconds_all: parallel_samples,
    });

    let serial_best = measurements[0].seconds_best;
    let parallel_best = measurements.last().expect("non-empty").seconds_best;
    let report = GridBenchReport {
        benchmark: "eval_grid".into(),
        cells: grid.cells().len(),
        seeds: grid.seeds,
        horizon: grid.horizon,
        total_runs: grid.cells().len() * grid.seeds,
        host_threads,
        parallel_speedup: serial_best / parallel_best,
        measurements,
    };
    for m in &report.measurements {
        println!(
            "bench eval_grid/{:<14} best {:8.3}s over {} reps ({} threads)",
            m.mode,
            m.seconds_best,
            m.seconds_all.len(),
            m.threads
        );
    }
    println!(
        "bench eval_grid: {} runs, serial {:.3}s vs parallel {:.3}s => speedup {:.2}x on {} host threads",
        report.total_runs, serial_best, parallel_best, report.parallel_speedup, host_threads
    );
    // Anchor the artifact at the workspace root regardless of the bench's
    // working directory.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_eval_grid.json");
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(err) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {}: {err}", path.display());
            }
        }
        Err(err) => eprintln!("warning: could not serialize bench report: {err}"),
    }
}

/// Criterion-style timing of a single grid cell through the runner (the
/// unit of work the parallel pool schedules).
fn bench_single_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("eval_grid_cell");
    group.sample_size(5);
    let grid = quick_grid();
    let cells = grid.cells();
    for (index, label) in [(0usize, "tolerance"), (1, "no-recovery")] {
        let cell = &cells[index];
        group.bench_with_input(BenchmarkId::from_parameter(label), cell, |b, cell| {
            b.iter(|| {
                Runner::serial()
                    .run_seeds(cell, &[0])
                    .expect("cell runs")
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid_serial_vs_parallel, bench_single_cell);
criterion_main!(benches);
