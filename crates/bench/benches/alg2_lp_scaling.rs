//! Criterion bench for Fig. 9: Algorithm 2 (occupation-measure LP) solve
//! time as a function of the state-space size `s_max`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tolerance_core::replication::{ReplicationConfig, ReplicationProblem};

fn bench_lp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("alg2_lp_scaling");
    group.sample_size(10);
    for s_max in [8usize, 16, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(s_max), &s_max, |b, &s_max| {
            let problem = ReplicationProblem::new(ReplicationConfig {
                s_max,
                fault_threshold: 3,
                availability_target: 0.9,
                node_survival_probability: 0.9,
            })
            .expect("valid problem");
            b.iter(|| problem.solve().expect("feasible"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp_scaling);
criterion_main!(benches);
