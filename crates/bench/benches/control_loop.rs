//! Closed-loop control-plane bench: the live two-level controllers on the
//! threaded MinBFT service, controller-on vs controller-off, under an
//! intrusion burst.
//!
//! Each cell runs the `controlled/intrusion-burst` workload (a compromise
//! the node controller must detect through the IDS event stream and repair
//! by live recovery, plus a crash the system controller must evict and
//! replace via JOIN) and reports wall-clock requests/sec, the
//! injection-to-actuation recovery latency, and the repair counters. The
//! controller-off baseline shows what the same burst costs an uncontrolled
//! service (the compromise stays standing).
//!
//! Besides the console report, the bench writes `BENCH_control_loop.json`
//! to the working directory — the artifact the CI `control-smoke` job
//! uploads. Set `BENCH_SMOKE=1` to run a reduced configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use tolerance_core::controlplane::{run_controlled_service, ControlledServiceConfig};

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn bench_config(controller: bool) -> ControlledServiceConfig {
    let mut config = ControlledServiceConfig {
        controller,
        ..ControlledServiceConfig::default()
    };
    if smoke() {
        config.service.duration = 0.8;
    }
    config
}

#[derive(Serialize)]
struct Cell {
    controller: bool,
    seeds: Vec<u64>,
    requests_per_second_mean: f64,
    mean_latency: f64,
    recoveries: u64,
    mean_recovery_latency_seconds: Option<f64>,
    unrecovered: usize,
    evictions: u64,
    joins: u64,
    final_replicas_min: usize,
    all_consistent: bool,
}

#[derive(Serialize)]
struct ControlLoopReport {
    benchmark: String,
    duration_per_run: f64,
    intrusions_per_run: usize,
    replicas: usize,
    clients: usize,
    cells: Vec<Cell>,
    /// Controlled / uncontrolled throughput (≈ 1.0 means the control plane
    /// is not in the data path; its cost is control traffic only).
    throughput_ratio_on_over_off: f64,
}

fn run_cell(controller: bool, seeds: &[u64]) -> Cell {
    let config = bench_config(controller);
    let mut rps = Vec::new();
    let mut latency = Vec::new();
    let mut recoveries = 0;
    let mut latencies: Vec<f64> = Vec::new();
    let mut unrecovered = 0;
    let mut evictions = 0;
    let mut joins = 0;
    let mut final_replicas_min = usize::MAX;
    let mut all_consistent = true;
    for &seed in seeds {
        let report = run_controlled_service(&config, seed).expect("controlled run");
        rps.push(report.requests_per_second);
        latency.push(report.mean_latency);
        recoveries += report.recoveries;
        latencies.extend(report.mean_recovery_latency);
        unrecovered += report.unrecovered;
        evictions += report.evictions;
        joins += report.joins;
        final_replicas_min = final_replicas_min.min(report.final_replicas);
        all_consistent &= report.consistent;
    }
    Cell {
        controller,
        seeds: seeds.to_vec(),
        requests_per_second_mean: rps.iter().sum::<f64>() / rps.len().max(1) as f64,
        mean_latency: latency.iter().sum::<f64>() / latency.len().max(1) as f64,
        recoveries,
        mean_recovery_latency_seconds: if latencies.is_empty() {
            None
        } else {
            Some(latencies.iter().sum::<f64>() / latencies.len() as f64)
        },
        unrecovered,
        evictions,
        joins,
        final_replicas_min,
        all_consistent,
    }
}

fn bench_control_loop(_c: &mut Criterion) {
    let seeds: Vec<u64> = if smoke() { vec![1] } else { vec![1, 2, 3] };
    let on = run_cell(true, &seeds);
    let off = run_cell(false, &seeds);
    assert!(on.all_consistent, "controlled runs must stay consistent");
    // Repair-counter expectations are wall-clock races on a loaded CI
    // runner; in smoke mode they are reported, not gated (the release
    // test suite gates the same behaviour deterministically via simnet).
    if !smoke() {
        assert!(
            on.recoveries > 0,
            "the node controller must actuate recoveries in the bench"
        );
    } else if on.recoveries == 0 {
        println!("warning: smoke run finished before any recovery actuated");
    }
    let config = bench_config(true);
    let ratio = on.requests_per_second_mean / off.requests_per_second_mean.max(1e-9);
    println!(
        "control loop: on {:.0} req/s (recovery latency {:?}s, {} joins, {} evictions) \
         vs off {:.0} req/s ({} unrecovered) — ratio {:.2}",
        on.requests_per_second_mean,
        on.mean_recovery_latency_seconds,
        on.joins,
        on.evictions,
        off.requests_per_second_mean,
        off.unrecovered,
        ratio,
    );
    let report = ControlLoopReport {
        benchmark: "control_loop_intrusion_burst".into(),
        duration_per_run: config.service.duration,
        intrusions_per_run: config.intrusions.len(),
        replicas: config.service.replicas,
        clients: config.service.clients,
        cells: vec![on, off],
        throughput_ratio_on_over_off: ratio,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write("BENCH_control_loop.json", &json).expect("write bench artifact");
}

criterion_group!(benches, bench_control_loop);
criterion_main!(benches);
