//! Benchmark of the fleet-scale simulation engine: lockstep vs
//! event-driven steps/sec at S ∈ {4, 16, 64} shards, plus the scheduler
//! worker-scaling axis at S = 64.
//!
//! Every timed run executes under the **full oracle suite** (a violation
//! fails the bench), so the steps/sec numbers cannot be bought by skipping
//! checks, and every engine/worker variant is asserted byte-identical to
//! the lockstep baseline before it is timed — the bench measures the same
//! computation, scheduled differently. The throughput unit is
//! **shard-steps/sec** (simulated steps × shards), the work unit that
//! actually parallelizes.
//!
//! The event-driven ≥ 2× lockstep assertion at S = 64 arms only outside
//! smoke mode on hosts with ≥ 4 hardware threads — a 1-CPU CI runner
//! records the numbers without judging them (`scaling_asserted: false` in
//! the artifact). Non-smoke cells accumulate ≥ 2s of measurement each.
//!
//! Besides the console report, the bench writes `BENCH_fleet_engine.json`
//! to the workspace root — uploaded by the CI `fleet-smoke` job so the
//! engine's scaling trajectory accumulates.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::time::Instant;
use tolerance_core::simnet::{
    fleet_scale_config, run_sharded_schedule_with, FleetEngine, ShardedFaultSchedule,
    ShardedScheduleConfig,
};

fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some()
}

fn seeds() -> u64 {
    if smoke() {
        1
    } else {
        2
    }
}

fn min_seconds_per_cell() -> f64 {
    if smoke() {
        0.0
    } else {
        2.0
    }
}

#[derive(Serialize)]
struct EngineCell {
    shards: usize,
    engine: String,
    workers: usize,
    sweeps: usize,
    shard_steps_per_sweep: u64,
    seconds_best: f64,
    shard_steps_per_second: f64,
}

#[derive(Serialize)]
struct FleetEngineBenchReport {
    benchmark: String,
    host_parallelism: usize,
    smoke: bool,
    seeds: u64,
    min_seconds_per_cell: f64,
    cells: Vec<EngineCell>,
    worker_scaling: Vec<EngineCell>,
    speedup_event_driven_over_lockstep_s64: f64,
    /// Whether the ≥ 2× assertion was armed (≥ 4 hardware threads, full
    /// mode) — `false` means the numbers are report-only.
    scaling_asserted: bool,
}

/// Times one engine over the seed sweep of `config`, repeating until the
/// cell accumulated its minimum measurement window. Every run must stay
/// oracle-green.
fn time_cell(
    label: &str,
    config: &ShardedScheduleConfig,
    engine: FleetEngine,
    engine_name: &str,
) -> EngineCell {
    let schedules: Vec<ShardedFaultSchedule> = (0..seeds())
        .map(|seed| ShardedFaultSchedule::generate(seed, config))
        .collect();
    let mut samples: Vec<f64> = Vec::new();
    let mut accumulated = 0.0;
    let mut shard_steps = 0u64;
    while samples.is_empty() || (accumulated < min_seconds_per_cell() && samples.len() < 64) {
        let start = Instant::now();
        shard_steps = 0;
        for schedule in &schedules {
            let report =
                run_sharded_schedule_with(schedule, config, engine).expect("harness constructs");
            assert!(
                report.violation.is_none(),
                "{label}: oracle violation in bench: {:?}",
                report.violation
            );
            shard_steps += report.outcome.steps * config.shards as u64;
        }
        let elapsed = start.elapsed().as_secs_f64();
        accumulated += elapsed;
        samples.push(elapsed);
    }
    let seconds_best = samples.iter().copied().fold(f64::INFINITY, f64::min);
    EngineCell {
        shards: config.shards,
        engine: engine_name.into(),
        workers: engine.workers(),
        sweeps: samples.len(),
        shard_steps_per_sweep: shard_steps,
        seconds_best,
        shard_steps_per_second: shard_steps as f64 / seconds_best.max(f64::MIN_POSITIVE),
    }
}

/// Pins the determinism contract before timing: the engine's report must be
/// byte-identical to lockstep on the first seed.
fn assert_identical_to_lockstep(config: &ShardedScheduleConfig, engine: FleetEngine) {
    let schedule = ShardedFaultSchedule::generate(0, config);
    let lockstep = run_sharded_schedule_with(&schedule, config, FleetEngine::Lockstep)
        .expect("harness constructs");
    let other = run_sharded_schedule_with(&schedule, config, engine).expect("harness constructs");
    assert_eq!(
        serde_json::to_string(&lockstep.trace).expect("serializable"),
        serde_json::to_string(&other.trace).expect("serializable"),
        "S={}: the timed engine diverged from lockstep",
        config.shards
    );
}

fn bench_fleet_engine(_c: &mut Criterion) {
    let host_parallelism = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let event_driven = FleetEngine::EventDriven { workers: None };

    let mut cells = Vec::new();
    for shards in [4usize, 16, 64] {
        let config = fleet_scale_config(shards);
        assert_identical_to_lockstep(&config, event_driven);
        cells.push(time_cell(
            &format!("S={shards} lockstep"),
            &config,
            FleetEngine::Lockstep,
            "lockstep",
        ));
        cells.push(time_cell(
            &format!("S={shards} event-driven"),
            &config,
            event_driven,
            "event-driven",
        ));
    }

    // The scheduler worker-scaling axis at the largest fleet.
    let scaling_config = fleet_scale_config(64);
    let worker_scaling: Vec<EngineCell> = [1usize, 2, 4, 8]
        .into_iter()
        .map(|workers| {
            let engine = FleetEngine::EventDriven {
                workers: Some(workers),
            };
            assert_identical_to_lockstep(&scaling_config, engine);
            time_cell(
                &format!("S=64 workers={workers}"),
                &scaling_config,
                engine,
                "event-driven",
            )
        })
        .collect();

    let throughput = |shards: usize, engine: &str| {
        cells
            .iter()
            .find(|cell| cell.shards == shards && cell.engine == engine)
            .map(|cell| cell.shard_steps_per_second)
            .unwrap_or(0.0)
    };
    let speedup =
        throughput(64, "event-driven") / throughput(64, "lockstep").max(f64::MIN_POSITIVE);
    let scaling_asserted = !smoke() && host_parallelism >= 4;
    if scaling_asserted {
        assert!(
            speedup >= 2.0,
            "the event-driven engine must reach ≥ 2x lockstep at S=64 on a \
             ≥ 4-core host, got {speedup:.2}x"
        );
    }

    let report = FleetEngineBenchReport {
        benchmark: "fleet_engine".into(),
        host_parallelism,
        smoke: smoke(),
        seeds: seeds(),
        min_seconds_per_cell: min_seconds_per_cell(),
        cells,
        worker_scaling,
        speedup_event_driven_over_lockstep_s64: speedup,
        scaling_asserted,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_fleet_engine.json");
    std::fs::write(&path, &json).expect("write bench artifact");
    for cell in &report.cells {
        println!(
            "S={:>3} {:>12} ({} workers): {:>10.0} shard-steps/s over {} sweeps",
            cell.shards, cell.engine, cell.workers, cell.shard_steps_per_second, cell.sweeps
        );
    }
    for cell in &report.worker_scaling {
        println!(
            "S= 64 scaling {:>2} workers: {:>10.0} shard-steps/s",
            cell.workers, cell.shard_steps_per_second
        );
    }
    println!(
        "event-driven/lockstep at S=64: {speedup:.2}x on {host_parallelism} hardware \
         threads (assertion {})",
        if scaling_asserted {
            "armed"
        } else {
            "report-only"
        },
    );
}

criterion_group!(benches, bench_fleet_engine);
criterion_main!(benches);
