//! Benchmark of the fault-injection harness: a fault-intensity sweep
//! (schedules per intensity × seeds) executed through the shared scenario
//! runtime, serial vs parallel, plus an oracle-checked steps/sec axis over
//! the adversary matrix (every attacker × network-condition cell), plus
//! per-run timings. `BENCH_SMOKE=1` reduces seeds and repetitions for CI.
//!
//! Besides the console report, the bench writes `BENCH_simnet_chaos.json`
//! to the working directory, extending the repository's performance
//! trajectory with the chaos-testing engine.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::time::Instant;
use tolerance_core::runtime::{Runner, Scenario};
use tolerance_core::simnet::{
    adversary_config, adversary_matrix, FaultSchedule, ScheduleConfig, SimnetScenario,
};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE").is_ok()
}

fn seeds() -> u64 {
    if smoke() {
        2
    } else {
        6
    }
}

fn repetitions() -> usize {
    if smoke() {
        1
    } else {
        3
    }
}

fn intensity_grid() -> Vec<SimnetScenario> {
    [0.1, 0.4, 0.8]
        .into_iter()
        .map(|intensity| {
            SimnetScenario::new(
                format!("simnet/intensity-{intensity}"),
                ScheduleConfig {
                    horizon: 30,
                    intensity,
                    ..ScheduleConfig::default()
                },
            )
        })
        .collect()
}

/// The adversary-matrix steps/sec axis: one scenario per
/// `(attacker, condition)` cell, driven through the same runner.
fn adversary_grid() -> Vec<SimnetScenario> {
    adversary_matrix()
        .into_iter()
        .map(|(attacker, condition)| {
            SimnetScenario::new(
                format!("adversary/{}/{}", attacker.name(), condition.name()),
                adversary_config(attacker, condition),
            )
        })
        .collect()
}

#[derive(Serialize)]
struct Measurement {
    mode: String,
    threads: usize,
    seconds_best: f64,
    seconds_all: Vec<f64>,
}

/// Oracle-checked throughput of the adversary matrix: every run passes the
/// full invariant suite (a violation fails the bench), so the steps/sec
/// number cannot be bought by skipping the oracles.
#[derive(Serialize)]
struct AdversaryAxis {
    cells: usize,
    seeds: u64,
    runs: u64,
    total_steps: u64,
    seconds_best: f64,
    steps_per_second: f64,
}

#[derive(Serialize)]
struct ChaosBenchReport {
    benchmark: String,
    smoke: bool,
    intensities: Vec<f64>,
    seeds: u64,
    horizon: u32,
    host_threads: usize,
    total_events: usize,
    measurements: Vec<Measurement>,
    parallel_speedup: f64,
    adversary: AdversaryAxis,
}

/// Runs every cell × seed through `runner` `repetitions` times — and, in
/// non-smoke mode, keeps repeating until at least two seconds of
/// measurement accumulated, so each timed axis averages over enough sweeps
/// to be stable — asserting the oracles stay green; returns the wall-clock
/// samples and the summed simulation steps of one sweep.
fn time_sweep(cells: &[SimnetScenario], runner: &Runner, repetitions: usize) -> (Vec<f64>, u64) {
    let seeds: Vec<u64> = (0..seeds()).collect();
    let min_seconds = if smoke() { 0.0 } else { 2.0 };
    let mut steps = 0u64;
    let mut samples: Vec<f64> = Vec::new();
    let mut accumulated = 0.0;
    while samples.len() < repetitions || (accumulated < min_seconds && samples.len() < 64) {
        let start = Instant::now();
        let outputs = runner.run_cells(cells, &seeds).expect("chaos sweep runs");
        assert_eq!(outputs.len(), cells.len());
        steps = 0;
        for per_cell in &outputs {
            for report in per_cell {
                assert!(report.violation.is_none(), "oracle violation in bench");
                steps += report.outcome.steps;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        accumulated += elapsed;
        samples.push(elapsed);
    }
    (samples, steps)
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn bench_intensity_sweep(_c: &mut Criterion) {
    let cells = intensity_grid();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let total_events: usize = cells
        .iter()
        .flat_map(|cell| {
            (0..seeds()).map(|seed| FaultSchedule::generate(seed, cell.config()).events.len())
        })
        .sum();

    let (serial_samples, _) = time_sweep(&cells, &Runner::serial(), repetitions());
    let (parallel_samples, _) = time_sweep(&cells, &Runner::parallel(), repetitions());
    let serial_best = best(&serial_samples);
    let parallel_best = best(&parallel_samples);

    let adversary_cells = adversary_grid();
    let (adversary_samples, adversary_steps) =
        time_sweep(&adversary_cells, &Runner::parallel(), repetitions());
    let adversary_best = best(&adversary_samples);
    let adversary_runs = adversary_cells.len() as u64 * seeds();

    let report = ChaosBenchReport {
        benchmark: "simnet_chaos_intensity_sweep".into(),
        smoke: smoke(),
        intensities: vec![0.1, 0.4, 0.8],
        seeds: seeds(),
        horizon: 30,
        host_threads,
        total_events,
        measurements: vec![
            Measurement {
                mode: "serial".into(),
                threads: 1,
                seconds_best: serial_best,
                seconds_all: serial_samples,
            },
            Measurement {
                mode: "parallel".into(),
                threads: host_threads,
                seconds_best: parallel_best,
                seconds_all: parallel_samples,
            },
        ],
        parallel_speedup: serial_best / parallel_best,
        adversary: AdversaryAxis {
            cells: adversary_cells.len(),
            seeds: seeds(),
            runs: adversary_runs,
            total_steps: adversary_steps,
            seconds_best: adversary_best,
            steps_per_second: adversary_steps as f64 / adversary_best.max(f64::MIN_POSITIVE),
        },
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_simnet_chaos.json");
    std::fs::write(&path, &json).expect("write bench artifact");
    println!(
        "simnet chaos sweep: serial {serial_best:.3}s, parallel {parallel_best:.3}s \
         (speedup {:.2}x over {} runs, {total_events} fault events); adversary matrix: \
         {} cells x {} seeds, {adversary_steps} steps in {adversary_best:.3}s \
         ({:.0} steps/s, oracle-checked)",
        report.parallel_speedup,
        cells.len() as u64 * seeds(),
        adversary_cells.len(),
        seeds(),
        report.adversary.steps_per_second,
    );
}

fn bench_single_run(c: &mut Criterion) {
    let scenario = SimnetScenario::new(
        "simnet/bench-cell",
        ScheduleConfig {
            horizon: 20,
            intensity: 0.4,
            ..ScheduleConfig::default()
        },
    );
    c.bench_function("simnet_single_schedule", |b| {
        b.iter(|| scenario.run(7).expect("run passes"));
    });
}

criterion_group!(benches, bench_intensity_sweep, bench_single_run);
criterion_main!(benches);
