//! Benchmark of the fault-injection harness: a fault-intensity sweep
//! (schedules per intensity × seeds) executed through the shared scenario
//! runtime, serial vs parallel, plus per-run timings.
//!
//! Besides the console report, the bench writes `BENCH_simnet_chaos.json`
//! to the working directory, extending the repository's performance
//! trajectory with the chaos-testing engine.

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use std::time::Instant;
use tolerance_core::runtime::{Runner, Scenario};
use tolerance_core::simnet::{FaultSchedule, ScheduleConfig, SimnetScenario};

const SEEDS: u64 = 6;

fn intensity_grid() -> Vec<SimnetScenario> {
    [0.1, 0.4, 0.8]
        .into_iter()
        .map(|intensity| {
            SimnetScenario::new(
                format!("simnet/intensity-{intensity}"),
                ScheduleConfig {
                    horizon: 30,
                    intensity,
                    ..ScheduleConfig::default()
                },
            )
        })
        .collect()
}

#[derive(Serialize)]
struct Measurement {
    mode: String,
    threads: usize,
    seconds_best: f64,
    seconds_all: Vec<f64>,
}

#[derive(Serialize)]
struct ChaosBenchReport {
    benchmark: String,
    intensities: Vec<f64>,
    seeds: u64,
    horizon: u32,
    host_threads: usize,
    total_events: usize,
    measurements: Vec<Measurement>,
    parallel_speedup: f64,
}

fn time_sweep(cells: &[SimnetScenario], runner: &Runner, repetitions: usize) -> Vec<f64> {
    let seeds: Vec<u64> = (0..SEEDS).collect();
    (0..repetitions)
        .map(|_| {
            let start = Instant::now();
            let outputs = runner.run_cells(cells, &seeds).expect("chaos sweep runs");
            assert_eq!(outputs.len(), cells.len());
            for per_cell in &outputs {
                for report in per_cell {
                    assert!(report.violation.is_none(), "oracle violation in bench");
                }
            }
            start.elapsed().as_secs_f64()
        })
        .collect()
}

fn best(samples: &[f64]) -> f64 {
    samples.iter().copied().fold(f64::INFINITY, f64::min)
}

fn bench_intensity_sweep(_c: &mut Criterion) {
    let cells = intensity_grid();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let repetitions = 3;

    let total_events: usize = cells
        .iter()
        .flat_map(|cell| {
            (0..SEEDS).map(|seed| FaultSchedule::generate(seed, cell.config()).events.len())
        })
        .sum();

    let serial_samples = time_sweep(&cells, &Runner::serial(), repetitions);
    let parallel_samples = time_sweep(&cells, &Runner::parallel(), repetitions);
    let serial_best = best(&serial_samples);
    let parallel_best = best(&parallel_samples);
    let report = ChaosBenchReport {
        benchmark: "simnet_chaos_intensity_sweep".into(),
        intensities: vec![0.1, 0.4, 0.8],
        seeds: SEEDS,
        horizon: 30,
        host_threads,
        total_events,
        measurements: vec![
            Measurement {
                mode: "serial".into(),
                threads: 1,
                seconds_best: serial_best,
                seconds_all: serial_samples,
            },
            Measurement {
                mode: "parallel".into(),
                threads: host_threads,
                seconds_best: parallel_best,
                seconds_all: parallel_samples,
            },
        ],
        parallel_speedup: serial_best / parallel_best,
    };
    let json = serde_json::to_string_pretty(&report).expect("serializable report");
    std::fs::write("BENCH_simnet_chaos.json", &json).expect("write bench artifact");
    println!(
        "simnet chaos sweep: serial {serial_best:.3}s, parallel {parallel_best:.3}s \
         (speedup {:.2}x over {} runs, {total_events} fault events)",
        report.parallel_speedup,
        cells.len() as u64 * SEEDS,
    );
}

fn bench_single_run(c: &mut Criterion) {
    let scenario = SimnetScenario::new(
        "simnet/bench-cell",
        ScheduleConfig {
            horizon: 20,
            intensity: 0.4,
            ..ScheduleConfig::default()
        },
    );
    c.bench_function("simnet_single_schedule", |b| {
        b.iter(|| scenario.run(7).expect("run passes"));
    });
}

criterion_group!(benches, bench_intensity_sweep, bench_single_run);
criterion_main!(benches);
