//! Multi-process integration: a MinBFT cluster as separate OS processes
//! over loopback TCP, orchestrated by the `minbft-node` binary. This is the
//! PR-6 acceptance path — the same invocation CI's socket-smoke job runs.

use std::process::Command;

fn run_cluster(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_minbft-node"))
        .arg("cluster")
        .args(args)
        .output()
        .expect("run minbft-node cluster")
}

#[test]
fn four_process_cluster_serves_requests_over_tcp() {
    let output = run_cluster(&[
        "--replicas",
        "4",
        "--clients",
        "4",
        "--requests",
        "200",
        "--pipeline-window",
        "4",
        "--batch-size",
        "4",
    ]);
    assert!(
        output.status.success(),
        "cluster run failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("cluster ok"), "summary missing: {stdout}");
}

#[test]
fn cluster_survives_a_killed_replica_mid_run() {
    let output = run_cluster(&[
        "--replicas",
        "4",
        "--clients",
        "4",
        "--requests",
        "400",
        "--pipeline-window",
        "4",
        "--batch-size",
        "4",
        "--kill-one",
    ]);
    assert!(
        output.status.success(),
        "kill-one cluster run failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("killed replica"),
        "the chaos action must have happened: {stderr}"
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("survived killing replica"),
        "summary must record the survival: {stdout}"
    );
}

#[test]
fn serial_window_still_works_across_processes() {
    // pipeline_window = 1 (strictly serial) must also serve correctly —
    // the perf axis compares these two modes, so both must be sound.
    let output = run_cluster(&[
        "--replicas",
        "4",
        "--clients",
        "2",
        "--requests",
        "100",
        "--pipeline-window",
        "1",
    ]);
    assert!(
        output.status.success(),
        "serial-window cluster failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
}
