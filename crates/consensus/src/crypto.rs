//! Simulated cryptographic primitives.
//!
//! The paper's testbed uses RSA-1024 signatures for its USIG service and
//! authenticated channels (Appendix E). Cryptographic strength is irrelevant
//! to the evaluation — what matters is the *interface*: replicas cannot forge
//! each other's signatures (assumption (a) of Proposition 1). This module
//! provides a keyed-digest signature scheme over a 64-bit FNV-1a hash that
//! preserves exactly that interface within the simulation: verification
//! requires the signer's secret, which other simulated nodes never see.

use crate::NodeId;

/// A 64-bit message digest (FNV-1a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Digest(pub u64);

/// Computes the FNV-1a digest of a byte string.
pub fn digest(bytes: &[u8]) -> Digest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(PRIME);
    }
    Digest(hash)
}

/// Combines two digests (used for chaining message fields).
pub fn combine(a: Digest, b: Digest) -> Digest {
    let mut bytes = [0u8; 16];
    bytes[..8].copy_from_slice(&a.0.to_le_bytes());
    bytes[8..].copy_from_slice(&b.0.to_le_bytes());
    digest(&bytes)
}

/// A simulated signature: a keyed digest bound to the signer's identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Signature {
    /// The claimed signer.
    pub signer: NodeId,
    /// The keyed digest.
    pub tag: u64,
}

/// A signing key pair. The secret is only known to the owning node; within
/// the simulation other nodes only ever hold [`Signature`] values, so
/// signatures cannot be forged (matching assumption (a) of Proposition 1).
#[derive(Debug, Clone)]
pub struct KeyPair {
    node: NodeId,
    secret: u64,
}

impl KeyPair {
    /// Derives a key pair for a node from a seed (deterministic, so tests are
    /// reproducible).
    pub fn derive(node: NodeId, seed: u64) -> Self {
        let secret =
            digest(&[node.to_le_bytes().as_slice(), seed.to_le_bytes().as_slice()].concat()).0
                ^ 0x9e37_79b9_7f4a_7c15;
        KeyPair { node, secret }
    }

    /// The node this key pair belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Signs a message digest.
    pub fn sign(&self, message: Digest) -> Signature {
        Signature {
            signer: self.node,
            tag: keyed_tag(self.secret, self.node, message),
        }
    }

    /// Verifies a signature produced by this key pair.
    pub fn verify_own(&self, message: Digest, signature: &Signature) -> bool {
        signature.signer == self.node && signature.tag == keyed_tag(self.secret, self.node, message)
    }
}

/// A verifier directory holding the (simulated) public keys of all nodes.
///
/// In the simulation the "public key" is the same secret used for signing —
/// the crucial property is that *nodes in the protocol* never access this
/// directory to sign on behalf of others; only the network layer verifies.
#[derive(Debug, Clone, Default)]
pub struct KeyDirectory {
    secrets: std::collections::HashMap<NodeId, u64>,
}

impl KeyDirectory {
    /// Creates an empty directory.
    pub fn new() -> Self {
        KeyDirectory::default()
    }

    /// Registers a node's key pair.
    pub fn register(&mut self, keys: &KeyPair) {
        self.secrets.insert(keys.node, keys.secret);
    }

    /// Verifies that `signature` is a valid signature of `message` by the
    /// signer it claims.
    pub fn verify(&self, message: Digest, signature: &Signature) -> bool {
        match self.secrets.get(&signature.signer) {
            Some(&secret) => signature.tag == keyed_tag(secret, signature.signer, message),
            None => false,
        }
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.secrets.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.secrets.is_empty()
    }
}

fn keyed_tag(secret: u64, node: NodeId, message: Digest) -> u64 {
    let mut bytes = Vec::with_capacity(20);
    bytes.extend_from_slice(&secret.to_le_bytes());
    bytes.extend_from_slice(&node.to_le_bytes());
    bytes.extend_from_slice(&message.0.to_le_bytes());
    digest(&bytes).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_deterministic_and_distinguish_inputs() {
        assert_eq!(digest(b"hello"), digest(b"hello"));
        assert_ne!(digest(b"hello"), digest(b"hellp"));
        assert_ne!(digest(b""), digest(b"x"));
        assert_ne!(
            combine(digest(b"a"), digest(b"b")),
            combine(digest(b"b"), digest(b"a"))
        );
    }

    #[test]
    fn signatures_verify_and_cannot_be_transplanted() {
        let alice = KeyPair::derive(1, 42);
        let bob = KeyPair::derive(2, 42);
        let mut directory = KeyDirectory::new();
        directory.register(&alice);
        directory.register(&bob);

        let message = digest(b"request 7");
        let signature = alice.sign(message);
        assert!(directory.verify(message, &signature));
        assert!(alice.verify_own(message, &signature));

        // A different message fails.
        assert!(!directory.verify(digest(b"request 8"), &signature));
        // Claiming a different signer fails.
        let forged = Signature {
            signer: bob.node(),
            tag: signature.tag,
        };
        assert!(!directory.verify(message, &forged));
        // Unknown signers fail.
        let unknown = Signature {
            signer: 99,
            tag: signature.tag,
        };
        assert!(!directory.verify(message, &unknown));
    }

    #[test]
    fn key_pairs_are_node_and_seed_specific() {
        let a = KeyPair::derive(1, 1);
        let b = KeyPair::derive(1, 2);
        let c = KeyPair::derive(2, 1);
        let m = digest(b"m");
        assert_ne!(a.sign(m).tag, b.sign(m).tag);
        assert_ne!(a.sign(m).tag, c.sign(m).tag);
        assert_eq!(a.node(), 1);
    }

    #[test]
    fn directory_len() {
        let mut d = KeyDirectory::new();
        assert!(d.is_empty());
        d.register(&KeyPair::derive(1, 0));
        d.register(&KeyPair::derive(2, 0));
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }
}
