//! A Raft cluster used as the crash-tolerant substrate of the system
//! controller.
//!
//! The paper assumes the global system controller runs on a standard
//! crash-tolerant replicated system "e.g., a RAFT-based system" (Section IV),
//! so its crash probability is negligible. This module provides that
//! substrate: leader election with randomized timeouts, log replication with
//! majority commit, and crash/restart of members. Only crash-stop failures
//! are modelled (Byzantine behaviour is out of scope for this layer, exactly
//! as in the paper).

use crate::net::{NetworkConfig, SimNetwork};
use crate::transport::Transport;
use crate::{NodeId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A replicated log entry: the term it was created in and an opaque command.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LogEntry {
    /// Term in which the entry was appended by a leader.
    pub term: u64,
    /// The replicated command (the system controller replicates its
    /// evict/add decisions).
    pub command: String,
}

#[derive(Debug, Clone, PartialEq)]
enum RaftMessage {
    RequestVote {
        term: u64,
        last_log_index: u64,
        last_log_term: u64,
    },
    Vote {
        term: u64,
        granted: bool,
    },
    AppendEntries {
        term: u64,
        prev_index: u64,
        prev_term: u64,
        entries: Vec<LogEntry>,
        leader_commit: u64,
    },
    AppendReply {
        term: u64,
        success: bool,
        match_index: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

#[derive(Debug)]
struct RaftNode {
    id: NodeId,
    role: Role,
    term: u64,
    voted_for: Option<NodeId>,
    votes_received: usize,
    log: Vec<LogEntry>,
    commit_index: u64,
    election_deadline: SimTime,
    crashed: bool,
    next_index: HashMap<NodeId, u64>,
    match_index: HashMap<NodeId, u64>,
}

impl RaftNode {
    fn new(id: NodeId) -> Self {
        RaftNode {
            id,
            role: Role::Follower,
            term: 0,
            voted_for: None,
            votes_received: 0,
            log: Vec::new(),
            commit_index: 0,
            election_deadline: 0.0,
            crashed: false,
            next_index: HashMap::new(),
            match_index: HashMap::new(),
        }
    }

    fn last_log_index(&self) -> u64 {
        self.log.len() as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map(|e| e.term).unwrap_or(0)
    }
}

/// Configuration of a [`RaftCluster`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RaftConfig {
    /// Number of members.
    pub members: usize,
    /// Network profile.
    pub network: NetworkConfig,
    /// Minimum election timeout (seconds); each node randomizes within
    /// `[min, 2 * min]`.
    pub election_timeout: f64,
    /// Heartbeat interval of the leader (seconds).
    pub heartbeat_interval: f64,
    /// Maximum number of log entries the leader packs into one
    /// AppendEntries message (`0` = unlimited). This is the batching knob
    /// matching MinBFT's `batch_size`, so cross-protocol scenarios compare
    /// like-for-like: a lagging follower is caught up in bounded batches,
    /// one quorum round per batch.
    pub max_append_batch: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            members: 3,
            network: NetworkConfig::default(),
            election_timeout: 0.15,
            heartbeat_interval: 0.05,
            max_append_batch: 0,
            seed: 7,
        }
    }
}

/// A simulated Raft cluster.
pub struct RaftCluster {
    config: RaftConfig,
    rng: StdRng,
    network: SimNetwork<RaftMessage>,
    nodes: HashMap<NodeId, RaftNode>,
    members: Vec<NodeId>,
    next_heartbeat: SimTime,
}

impl RaftCluster {
    /// Creates a cluster with `config.members` members.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 members are requested.
    pub fn new(config: RaftConfig) -> Self {
        assert!(config.members >= 2, "raft needs at least two members");
        let members: Vec<NodeId> = (0..config.members as NodeId).collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut nodes: HashMap<NodeId, RaftNode> = HashMap::new();
        for &id in &members {
            let mut node = RaftNode::new(id);
            node.election_deadline = config.election_timeout * (1.0 + rng.random::<f64>());
            nodes.insert(id, node);
        }
        RaftCluster {
            network: SimNetwork::new(config.network, config.seed),
            config,
            rng,
            nodes,
            members,
            next_heartbeat: 0.0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.network.now()
    }

    /// The current leader, if one is elected and alive.
    pub fn leader(&self) -> Option<NodeId> {
        self.nodes
            .values()
            .filter(|n| n.role == Role::Leader && !n.crashed)
            .max_by_key(|n| n.term)
            .map(|n| n.id)
    }

    /// The term of the given node.
    pub fn term_of(&self, node: NodeId) -> u64 {
        self.nodes.get(&node).map(|n| n.term).unwrap_or(0)
    }

    /// Crashes a member.
    pub fn crash(&mut self, node: NodeId) {
        if let Some(n) = self.nodes.get_mut(&node) {
            n.crashed = true;
            n.role = Role::Follower;
        }
        self.network.crash(node);
    }

    /// Restarts a crashed member (with its log intact, as Raft assumes stable
    /// storage).
    pub fn restart(&mut self, node: NodeId) {
        self.network.restart(node);
        let now = self.network.now();
        if let Some(n) = self.nodes.get_mut(&node) {
            n.crashed = false;
            n.role = Role::Follower;
            n.votes_received = 0;
            n.election_deadline =
                now + self.config.election_timeout * (1.0 + self.rng.random::<f64>());
        }
    }

    /// Blocks communication between every member in `group_a` and every
    /// member in `group_b` (both directions).
    pub fn partition_network(&mut self, group_a: &[NodeId], group_b: &[NodeId]) {
        self.network.partition(group_a, group_b);
    }

    /// Removes all network partitions.
    pub fn heal_network(&mut self) {
        self.network.heal_partitions();
    }

    /// Replaces the link profile mid-run (delay and loss storms).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`NetworkConfig::new`]).
    pub fn set_network_config(&mut self, network: NetworkConfig) {
        self.network.set_config(network);
    }

    /// Whether a member is crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.nodes.get(&node).map(|n| n.crashed).unwrap_or(false)
    }

    /// The members of the cluster.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Proposes a command through the current leader. Returns `false` if
    /// there is no leader.
    pub fn propose(&mut self, command: &str) -> bool {
        let Some(leader_id) = self.leader() else {
            return false;
        };
        let term = self.nodes[&leader_id].term;
        let node = self.nodes.get_mut(&leader_id).expect("leader exists");
        node.log.push(LogEntry {
            term,
            command: command.to_string(),
        });
        true
    }

    /// The committed prefix of a node's log.
    pub fn committed_log(&self, node: NodeId) -> Vec<LogEntry> {
        self.nodes
            .get(&node)
            .map(|n| n.log[..n.commit_index as usize].to_vec())
            .unwrap_or_default()
    }

    /// Whether all live nodes have prefix-consistent committed logs.
    pub fn committed_logs_consistent(&self) -> bool {
        let logs: Vec<Vec<LogEntry>> = self
            .members
            .iter()
            .filter(|id| !self.nodes[id].crashed)
            .map(|id| self.committed_log(*id))
            .collect();
        for (i, a) in logs.iter().enumerate() {
            for b in logs.iter().skip(i + 1) {
                let prefix = a.len().min(b.len());
                if a[..prefix] != b[..prefix] {
                    return false;
                }
            }
        }
        true
    }

    /// Runs the cluster until `deadline` simulated seconds.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            let next_event = self.network.next_delivery_time();
            let next_tick = self.next_timer();
            let next = match (next_event, next_tick) {
                (Some(e), t) => e.min(t),
                (None, t) => t,
            };
            if next > deadline {
                break;
            }
            if Some(next) == next_event {
                // Bounded pop: a dropped head message must not let a later
                // message jump ahead of the pending timer.
                if let Some(delivery) = self.network.next_delivery_until(next) {
                    self.handle(delivery.from, delivery.to, delivery.message);
                }
            } else {
                self.network.advance_to(next);
            }
            self.tick();
        }
        self.network.advance_to(deadline);
        self.tick();
    }

    fn next_timer(&self) -> SimTime {
        let mut next = self.next_heartbeat;
        for node in self.nodes.values() {
            if !node.crashed && node.role != Role::Leader {
                next = next.min(node.election_deadline);
            }
        }
        next.max(self.network.now() + 1e-6)
    }

    fn tick(&mut self) {
        let now = self.network.now();
        // Election timeouts.
        let ids: Vec<NodeId> = self.members.clone();
        for id in &ids {
            let (start_election, term, last_index, last_term) = {
                let node = self.nodes.get_mut(id).expect("member");
                if node.crashed || node.role == Role::Leader || now < node.election_deadline {
                    (false, 0, 0, 0)
                } else {
                    node.role = Role::Candidate;
                    node.term += 1;
                    node.voted_for = Some(node.id);
                    node.votes_received = 1;
                    node.election_deadline =
                        now + self.config.election_timeout * (1.0 + self.rng.random::<f64>());
                    (true, node.term, node.last_log_index(), node.last_log_term())
                }
            };
            if start_election {
                let message = RaftMessage::RequestVote {
                    term,
                    last_log_index: last_index,
                    last_log_term: last_term,
                };
                self.network.broadcast(*id, &ids, &message);
            }
        }
        // Leader heartbeats / replication.
        if now >= self.next_heartbeat {
            self.next_heartbeat = now + self.config.heartbeat_interval;
            if let Some(leader_id) = self.leader() {
                self.replicate_from(leader_id);
            }
        }
    }

    fn replicate_from(&mut self, leader_id: NodeId) {
        let peers: Vec<NodeId> = self
            .members
            .iter()
            .copied()
            .filter(|&m| m != leader_id)
            .collect();
        for peer in peers {
            let (term, prev_index, prev_term, entries, leader_commit) = {
                let leader = &self.nodes[&leader_id];
                let next = leader
                    .next_index
                    .get(&peer)
                    .copied()
                    .unwrap_or(leader.last_log_index() + 1);
                let prev_index = next.saturating_sub(1);
                let prev_term = if prev_index == 0 {
                    0
                } else {
                    leader
                        .log
                        .get(prev_index as usize - 1)
                        .map(|e| e.term)
                        .unwrap_or(0)
                };
                let batch_cap = if self.config.max_append_batch == 0 {
                    usize::MAX
                } else {
                    self.config.max_append_batch
                };
                let entries: Vec<LogEntry> = leader
                    .log
                    .iter()
                    .skip(prev_index as usize)
                    .take(batch_cap)
                    .cloned()
                    .collect();
                (
                    leader.term,
                    prev_index,
                    prev_term,
                    entries,
                    leader.commit_index,
                )
            };
            self.network.send(
                leader_id,
                peer,
                RaftMessage::AppendEntries {
                    term,
                    prev_index,
                    prev_term,
                    entries,
                    leader_commit,
                },
            );
        }
    }

    fn handle(&mut self, from: NodeId, to: NodeId, message: RaftMessage) {
        let now = self.network.now();
        let majority = self.members.len() / 2 + 1;
        let mut replies: Vec<(NodeId, RaftMessage)> = Vec::new();
        {
            let Some(node) = self.nodes.get_mut(&to) else {
                return;
            };
            if node.crashed {
                return;
            }
            match message {
                RaftMessage::RequestVote {
                    term,
                    last_log_index,
                    last_log_term,
                } => {
                    if term > node.term {
                        node.term = term;
                        node.role = Role::Follower;
                        node.voted_for = None;
                    }
                    let log_ok = last_log_term > node.last_log_term()
                        || (last_log_term == node.last_log_term()
                            && last_log_index >= node.last_log_index());
                    let granted = term == node.term
                        && log_ok
                        && (node.voted_for.is_none() || node.voted_for == Some(from));
                    if granted {
                        node.voted_for = Some(from);
                        node.election_deadline =
                            now + self.config.election_timeout * (1.0 + self.rng.random::<f64>());
                    }
                    replies.push((
                        from,
                        RaftMessage::Vote {
                            term: node.term,
                            granted,
                        },
                    ));
                }
                RaftMessage::Vote { term, granted } => {
                    if node.role == Role::Candidate && term == node.term && granted {
                        node.votes_received += 1;
                        if node.votes_received >= majority {
                            node.role = Role::Leader;
                            let last = node.last_log_index();
                            node.next_index = self.members.iter().map(|&m| (m, last + 1)).collect();
                            node.match_index = self.members.iter().map(|&m| (m, 0)).collect();
                        }
                    } else if term > node.term {
                        node.term = term;
                        node.role = Role::Follower;
                        node.voted_for = None;
                    }
                }
                RaftMessage::AppendEntries {
                    term,
                    prev_index,
                    prev_term,
                    entries,
                    leader_commit,
                } => {
                    if term >= node.term {
                        node.term = term;
                        node.role = Role::Follower;
                        node.election_deadline =
                            now + self.config.election_timeout * (1.0 + self.rng.random::<f64>());
                        // Consistency check on the previous entry.
                        let prev_ok = prev_index == 0
                            || node
                                .log
                                .get(prev_index as usize - 1)
                                .map(|e| e.term == prev_term)
                                .unwrap_or(false);
                        if prev_ok {
                            // Truncate conflicts and append.
                            node.log.truncate(prev_index as usize);
                            node.log.extend(entries);
                            let match_index = node.last_log_index();
                            node.commit_index =
                                leader_commit.min(match_index).max(node.commit_index);
                            replies.push((
                                from,
                                RaftMessage::AppendReply {
                                    term: node.term,
                                    success: true,
                                    match_index,
                                },
                            ));
                        } else {
                            replies.push((
                                from,
                                RaftMessage::AppendReply {
                                    term: node.term,
                                    success: false,
                                    match_index: 0,
                                },
                            ));
                        }
                    } else {
                        replies.push((
                            from,
                            RaftMessage::AppendReply {
                                term: node.term,
                                success: false,
                                match_index: 0,
                            },
                        ));
                    }
                }
                RaftMessage::AppendReply {
                    term,
                    success,
                    match_index,
                } => {
                    if node.role == Role::Leader && term == node.term {
                        if success {
                            node.match_index.insert(from, match_index);
                            node.next_index.insert(from, match_index + 1);
                            // Advance the commit index to the highest index
                            // replicated on a majority.
                            let last = node.last_log_index();
                            let mut candidate = node.commit_index;
                            for index in (node.commit_index + 1)..=last {
                                let replicas =
                                    1 + node.match_index.values().filter(|&&m| m >= index).count();
                                let entry_term = node
                                    .log
                                    .get(index as usize - 1)
                                    .map(|e| e.term)
                                    .unwrap_or(0);
                                if replicas >= majority && entry_term == node.term {
                                    candidate = index;
                                }
                            }
                            node.commit_index = candidate;
                        } else {
                            let next = node.next_index.entry(from).or_insert(1);
                            *next = next.saturating_sub(1).max(1);
                        }
                    } else if term > node.term {
                        node.term = term;
                        node.role = Role::Follower;
                    }
                }
            }
        }
        for (dest, reply) in replies {
            self.network.send(to, dest, reply);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(members: usize, seed: u64) -> RaftCluster {
        RaftCluster::new(RaftConfig {
            members,
            seed,
            network: NetworkConfig {
                latency: 0.005,
                jitter: 0.002,
                loss_rate: 0.0,
            },
            ..RaftConfig::default()
        })
    }

    #[test]
    fn elects_a_single_leader() {
        let mut raft = cluster(3, 1);
        raft.run_until(2.0);
        let leader = raft.leader();
        assert!(leader.is_some(), "a leader should be elected within 2 s");
        // Exactly one leader in the highest term.
        let leaders: Vec<NodeId> = raft
            .members
            .iter()
            .copied()
            .filter(|&id| raft.nodes[&id].role == Role::Leader && !raft.nodes[&id].crashed)
            .collect();
        let max_term = leaders.iter().map(|id| raft.term_of(*id)).max().unwrap();
        let top_leaders = leaders
            .iter()
            .filter(|id| raft.term_of(**id) == max_term)
            .count();
        assert_eq!(top_leaders, 1);
    }

    #[test]
    fn replicates_and_commits_commands() {
        let mut raft = cluster(3, 2);
        raft.run_until(2.0);
        assert!(raft.propose("evict node 4"));
        assert!(raft.propose("add node 7"));
        raft.run_until(4.0);
        for &id in &raft.members.clone() {
            let log = raft.committed_log(id);
            assert_eq!(log.len(), 2, "node {id} should have committed both entries");
            assert_eq!(log[0].command, "evict node 4");
            assert_eq!(log[1].command, "add node 7");
        }
        assert!(raft.committed_logs_consistent());
    }

    #[test]
    fn survives_leader_crash_and_re_elects() {
        let mut raft = cluster(3, 3);
        raft.run_until(2.0);
        let first_leader = raft.leader().expect("initial leader");
        assert!(raft.propose("before crash"));
        raft.run_until(3.0);
        raft.crash(first_leader);
        raft.run_until(6.0);
        let second_leader = raft.leader().expect("new leader after crash");
        assert_ne!(second_leader, first_leader);
        assert!(raft.propose("after crash"));
        raft.run_until(8.0);
        // Both surviving members have both entries committed.
        for &id in raft
            .members
            .clone()
            .iter()
            .filter(|&&id| id != first_leader)
        {
            let log = raft.committed_log(id);
            assert_eq!(log.len(), 2, "node {id} log: {log:?}");
        }
        assert!(raft.committed_logs_consistent());
    }

    #[test]
    fn restarted_node_catches_up() {
        let mut raft = cluster(3, 4);
        raft.run_until(2.0);
        let leader = raft.leader().unwrap();
        let follower = raft
            .members
            .iter()
            .copied()
            .find(|&id| id != leader)
            .unwrap();
        raft.crash(follower);
        assert!(raft.propose("while you were away"));
        raft.run_until(4.0);
        raft.restart(follower);
        raft.run_until(7.0);
        let log = raft.committed_log(follower);
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].command, "while you were away");
    }

    #[test]
    fn no_commit_without_majority() {
        let mut raft = cluster(3, 5);
        raft.run_until(2.0);
        let leader = raft.leader().unwrap();
        // Crash both followers: proposals can no longer commit.
        for id in raft.members.clone() {
            if id != leader {
                raft.crash(id);
            }
        }
        assert!(raft.propose("stranded"));
        raft.run_until(5.0);
        assert_eq!(
            raft.committed_log(leader).len(),
            0,
            "entry must not commit without a majority"
        );
    }

    #[test]
    fn bounded_append_batches_catch_up_a_restarted_follower() {
        // The batching knob: at most 2 entries per AppendEntries. A follower
        // that missed 9 entries is caught up in ⌈9/2⌉ rounds, and the logs
        // still converge.
        let mut raft = RaftCluster::new(RaftConfig {
            members: 3,
            max_append_batch: 2,
            seed: 21,
            network: NetworkConfig {
                latency: 0.005,
                jitter: 0.002,
                loss_rate: 0.0,
            },
            ..RaftConfig::default()
        });
        raft.run_until(2.0);
        let leader = raft.leader().expect("leader elected");
        let follower = raft
            .members
            .iter()
            .copied()
            .find(|&id| id != leader)
            .unwrap();
        raft.crash(follower);
        for i in 0..9 {
            assert!(raft.propose(&format!("op-{i}")));
        }
        raft.run_until(5.0);
        raft.restart(follower);
        raft.run_until(10.0);
        let log = raft.committed_log(follower);
        assert_eq!(log.len(), 9, "restarted follower must catch up in batches");
        assert!(raft.committed_logs_consistent());
    }

    #[test]
    fn batched_replication_survives_partition_chaos() {
        // Chaos test of the batching knob: partitions and a crash/restart
        // while the leader replicates with a 1-entry batch cap — the
        // like-for-like counterpart of MinBFT's batch_size under simnet
        // chaos.
        for seed in 0..4 {
            let mut raft = RaftCluster::new(RaftConfig {
                members: 5,
                max_append_batch: 1,
                seed: 100 + seed,
                ..RaftConfig::default()
            });
            raft.run_until(2.0);
            assert!(raft.propose("before"));
            raft.run_until(3.0);
            raft.partition_network(&[0, 1], &[2, 3, 4]);
            raft.propose("during-partition");
            raft.run_until(6.0);
            raft.heal_network();
            raft.run_until(8.0);
            raft.crash(4);
            raft.propose("after-heal");
            raft.run_until(11.0);
            raft.restart(4);
            raft.run_until(15.0);
            assert!(
                raft.committed_logs_consistent(),
                "seed {seed}: logs diverged under 1-entry batches"
            );
            let leader = raft.leader().expect("leader after chaos");
            assert!(
                !raft.committed_log(leader).is_empty(),
                "seed {seed}: nothing committed"
            );
        }
    }

    #[test]
    fn propose_without_leader_fails() {
        let mut raft = cluster(3, 6);
        // Before any election there is no leader.
        assert!(raft.leader().is_none());
        assert!(!raft.propose("too early"));
        raft.run_until(2.0);
        assert!(raft.propose("now it works"));
    }

    #[test]
    fn five_node_cluster_tolerates_two_crashes() {
        let mut raft = cluster(5, 8);
        raft.run_until(2.0);
        let leader = raft.leader().unwrap();
        let followers: Vec<NodeId> = raft
            .members
            .iter()
            .copied()
            .filter(|&id| id != leader)
            .take(2)
            .collect();
        for f in followers {
            raft.crash(f);
        }
        assert!(raft.propose("still working"));
        raft.run_until(5.0);
        assert!(raft.committed_log(leader).len() == 1);
        assert!(raft.committed_logs_consistent());
    }
}
