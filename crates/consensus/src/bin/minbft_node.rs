//! `minbft-node` — run MinBFT replicas as separate OS processes over TCP.
//!
//! Two modes:
//!
//! * **`replica`** — one replica behind its own TCP listener, wired to its
//!   peers through a line protocol on stdin/stdout:
//!
//!   ```text
//!   -> LISTEN 127.0.0.1:40213          (printed after binding)
//!   <- PEER 1 127.0.0.1:40214          (one line per remote node)
//!   <- START                           (enter the replica event loop)
//!   <- STOP                            (leave the loop, snapshot, exit)
//!   -> SNAPSHOT <id> <log_start> <last_executed> <needs_state> <d1,d2,...>
//!   ```
//!
//! * **`cluster`** — the loopback orchestrator: spawns N `replica` child
//!   processes, wires the full mesh, drives a closed-loop client population
//!   over its own socket transport, optionally kills one replica mid-run
//!   (`--kill-one`), then stops the survivors and checks the drain
//!   invariant (every completed request appears exactly once in the
//!   longest surviving log) and cross-replica log agreement. Exits nonzero
//!   on any violation — the CI socket-smoke entry point.
//!
//! Example — a 4-process cluster serving 1000 requests, surviving the loss
//! of one replica:
//!
//! ```text
//! minbft-node cluster --replicas 4 --clients 4 --requests 1000 --kill-one
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::atomic::Ordering;
use std::time::Instant;

use tolerance_consensus::crypto::Digest;
use tolerance_consensus::socket::{SocketReplicaNode, SocketTransport};
use tolerance_consensus::threaded::snapshots_consistent;
use tolerance_consensus::workload::OpStream;
use tolerance_consensus::{
    ClientDriver, MembershipView, NodeId, ReplicaSnapshot, ThreadedServiceConfig,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  minbft-node replica --id <n> --members <a,b,c,...> [options]\n  \
         minbft-node cluster [--replicas <n>] [--clients <n>] [--requests <n>] \
         [--kill-one] [options]\n\noptions (both modes): --batch-size --batch-delay \
         --checkpoint-period --pipeline-window --signature-time --request-timeout --seed"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(value: Option<&String>, flag: &str) -> T {
    let Some(value) = value else {
        eprintln!("missing value for {flag}");
        usage();
    };
    match value.parse() {
        Ok(parsed) => parsed,
        Err(_) => {
            eprintln!("bad value {value:?} for {flag}");
            usage();
        }
    }
}

/// The flags shared by both modes, folded into the service config.
struct CommonArgs {
    config: ThreadedServiceConfig,
    rest: HashMap<String, String>,
    flags: Vec<String>,
}

fn parse_args(args: &[String]) -> CommonArgs {
    let mut named = HashMap::new();
    let mut flags = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(name) = arg.strip_prefix("--") else {
            eprintln!("unexpected argument {arg:?}");
            usage();
        };
        if name == "kill-one" {
            flags.push(name.to_string());
        } else {
            let Some(value) = iter.next() else {
                eprintln!("missing value for --{name}");
                usage();
            };
            named.insert(name.to_string(), value.clone());
        }
    }
    let mut config = ThreadedServiceConfig::default();
    if let Some(v) = named.get("batch-size") {
        config.batch_size = parse(Some(v), "--batch-size");
    }
    if let Some(v) = named.get("batch-delay") {
        config.batch_delay = parse(Some(v), "--batch-delay");
    }
    if let Some(v) = named.get("checkpoint-period") {
        config.checkpoint_period = parse(Some(v), "--checkpoint-period");
    }
    if let Some(v) = named.get("pipeline-window") {
        config.pipeline_window = parse(Some(v), "--pipeline-window");
    }
    if let Some(v) = named.get("signature-time") {
        config.signature_time = parse(Some(v), "--signature-time");
    }
    if let Some(v) = named.get("request-timeout") {
        config.request_timeout = parse(Some(v), "--request-timeout");
    }
    if let Some(v) = named.get("seed") {
        config.seed = parse(Some(v), "--seed");
    }
    CommonArgs {
        config,
        rest: named,
        flags,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("replica") => replica_mode(&args[1..]),
        Some("cluster") => cluster_mode(&args[1..]),
        _ => usage(),
    }
}

// ---------------------------------------------------------------------------
// replica mode
// ---------------------------------------------------------------------------

fn replica_mode(args: &[String]) -> ! {
    let parsed = parse_args(args);
    let id: NodeId = parse(parsed.rest.get("id"), "--id");
    let members: Vec<NodeId> = parse::<String>(parsed.rest.get("members"), "--members")
        .split(',')
        .map(|m| match m.trim().parse() {
            Ok(member) => member,
            Err(_) => {
                eprintln!("bad member id {m:?}");
                usage();
            }
        })
        .collect();
    let mut config = parsed.config;
    config.replicas = members.len();

    let mut node = match SocketReplicaNode::bind(id, members, "127.0.0.1:0", &config) {
        Ok(node) => node,
        Err(error) => {
            eprintln!("replica {id}: bind failed: {error}");
            std::process::exit(1);
        }
    };
    let mut stdout = std::io::stdout();
    writeln!(stdout, "LISTEN {}", node.local_addr()).expect("stdout");
    stdout.flush().expect("stdout");

    // All stdin reading happens on one dedicated thread (the lock guard is
    // not `Send`); commands arrive here over a channel.
    let (line_tx, line_rx) = std::sync::mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut line = String::new();
        loop {
            line.clear();
            match stdin.read_line(&mut line) {
                Ok(0) | Err(_) => return, // EOF: orchestrator went away.
                Ok(_) => {
                    if line_tx.send(line.trim().to_string()).is_err() {
                        return;
                    }
                }
            }
        }
    });

    // Wire-up phase: PEER lines until START.
    loop {
        let Ok(line) = line_rx.recv() else {
            // Orchestrator went away before START: nothing to serve.
            std::process::exit(0);
        };
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("PEER") => {
                let (Some(peer), Some(addr)) = (parts.next(), parts.next()) else {
                    eprintln!("replica {id}: bad PEER line {line:?}");
                    std::process::exit(2);
                };
                let (Ok(peer), Ok(addr)) = (peer.parse::<NodeId>(), addr.parse::<SocketAddr>())
                else {
                    eprintln!("replica {id}: bad PEER line {line:?}");
                    std::process::exit(2);
                };
                node.add_peer(peer, addr);
            }
            Some("START") => break,
            Some("STOP") => std::process::exit(0),
            _ => {
                eprintln!("replica {id}: unknown command {line:?}");
                std::process::exit(2);
            }
        }
    }

    // Serve: the watcher flips the stop flag on STOP (or on channel
    // disconnect — an orphaned replica exits when its orchestrator dies).
    let stop = node.stop_flag();
    std::thread::spawn(move || {
        loop {
            match line_rx.recv() {
                Ok(line) if line == "STOP" => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    let snapshot = node.run();

    let digests: Vec<String> = snapshot
        .executed
        .iter()
        .map(|digest| digest.0.to_string())
        .collect();
    writeln!(
        stdout,
        "SNAPSHOT {} {} {} {} {}",
        snapshot.id,
        snapshot.log_start,
        snapshot.last_executed,
        snapshot.needs_state,
        digests.join(",")
    )
    .expect("stdout");
    stdout.flush().expect("stdout");
    std::process::exit(0);
}

// ---------------------------------------------------------------------------
// cluster mode
// ---------------------------------------------------------------------------

struct ReplicaProcess {
    id: NodeId,
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: SocketAddr,
}

impl ReplicaProcess {
    fn send(&mut self, line: &str) -> std::io::Result<()> {
        let stdin = self.child.stdin.as_mut().expect("piped stdin");
        writeln!(stdin, "{line}")?;
        stdin.flush()
    }
}

fn fail(message: String, processes: &mut [ReplicaProcess]) -> ! {
    eprintln!("cluster: FAILED: {message}");
    for process in processes {
        let _ = process.child.kill();
    }
    std::process::exit(1);
}

fn cluster_mode(args: &[String]) -> ! {
    let parsed = parse_args(args);
    let mut config = parsed.config;
    let replicas: usize = parsed
        .rest
        .get("replicas")
        .map(|v| parse(Some(v), "--replicas"))
        .unwrap_or(4);
    let clients: usize = parsed
        .rest
        .get("clients")
        .map(|v| parse(Some(v), "--clients"))
        .unwrap_or(4);
    let requests: u64 = parsed
        .rest
        .get("requests")
        .map(|v| parse(Some(v), "--requests"))
        .unwrap_or(1000);
    let kill_one = parsed.flags.iter().any(|f| f == "kill-one");
    config.replicas = replicas;
    config.clients = clients;
    // Drain accounting needs the complete execution history retained.
    config.checkpoint_period = 0;
    assert!(replicas >= 2, "MinBFT needs at least two replicas");
    assert!(
        !kill_one || replicas >= 4,
        "--kill-one needs f >= 1, so at least 4 replicas"
    );

    let exe = std::env::current_exe().expect("own executable path");
    let members: Vec<String> = (0..replicas as NodeId).map(|id| id.to_string()).collect();
    let members_arg = members.join(",");

    // Spawn the replica processes and collect their listener addresses.
    let mut processes: Vec<ReplicaProcess> = Vec::new();
    for id in 0..replicas as NodeId {
        let mut child = Command::new(&exe)
            .arg("replica")
            .args(["--id", &id.to_string()])
            .args(["--members", &members_arg])
            .args(["--batch-size", &config.batch_size.to_string()])
            .args(["--batch-delay", &config.batch_delay.to_string()])
            .args(["--checkpoint-period", &config.checkpoint_period.to_string()])
            .args(["--pipeline-window", &config.pipeline_window.to_string()])
            .args(["--signature-time", &config.signature_time.to_string()])
            .args(["--request-timeout", &config.request_timeout.to_string()])
            .args(["--seed", &config.seed.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn replica process");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("LISTEN line");
        let addr: SocketAddr = match line.trim().strip_prefix("LISTEN ") {
            Some(addr) => addr.parse().expect("listener address"),
            None => {
                eprintln!("replica {id} spoke {line:?} instead of LISTEN");
                std::process::exit(1);
            }
        };
        processes.push(ReplicaProcess {
            id,
            child,
            stdout,
            addr,
        });
    }

    // The client population lives in this process, on its own transport.
    let mut hub =
        SocketTransport::bind("127.0.0.1:0", config.channel_capacity).expect("bind client hub");
    let client_ids: Vec<NodeId> = (0..clients)
        .map(|i| tolerance_consensus::CLIENT_ID_BASE + i as NodeId)
        .collect();
    let mailbox = hub.register_shared(&client_ids);
    let hub_addr = hub.local_addr();
    let addrs: Vec<(NodeId, SocketAddr)> = processes.iter().map(|p| (p.id, p.addr)).collect();
    for &(id, addr) in &addrs {
        hub.add_peer(id, addr);
    }

    // Full mesh wire-up, then START everywhere.
    for process in &mut processes {
        for &(peer, addr) in &addrs {
            if peer != process.id {
                process
                    .send(&format!("PEER {peer} {addr}"))
                    .expect("PEER line");
            }
        }
        for &client in &client_ids {
            process
                .send(&format!("PEER {client} {hub_addr}"))
                .expect("PEER line");
        }
        process.send("START").expect("START line");
    }

    let membership: Vec<NodeId> = (0..replicas as NodeId).collect();
    let streams: Vec<OpStream> = (0..clients)
        .map(|i| {
            OpStream::new(
                config.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                config.key_space,
                config.write_ratio,
            )
        })
        .collect();
    let mut driver = ClientDriver::over_transport(
        hub.handle(),
        mailbox,
        MembershipView::fixed(membership),
        streams,
        config.request_timeout,
    );

    // Drive the requested load; kill one replica halfway through if asked.
    let start = Instant::now();
    let deadline = 120.0;
    let mut killed: Option<NodeId> = None;
    while driver.report().completed < requests {
        if start.elapsed().as_secs_f64() > deadline {
            let done = driver.report().completed;
            fail(
                format!("timed out at {done}/{requests} completed requests"),
                &mut processes,
            );
        }
        driver.run_for(0.2);
        if kill_one && killed.is_none() && driver.report().completed >= requests / 2 {
            // Kill a non-leader follower outright (SIGKILL, no goodbye):
            // the cluster must keep serving on n-1 replicas.
            let victim = processes.last_mut().expect("at least one replica");
            victim.child.kill().expect("kill replica");
            let _ = victim.child.wait();
            killed = Some(victim.id);
            eprintln!(
                "cluster: killed replica {} at {} completed requests",
                victim.id,
                driver.report().completed
            );
        }
    }
    if !driver.drain(15.0) {
        fail(
            "in-flight requests did not drain".to_string(),
            &mut processes,
        );
    }
    let report = driver.report();

    // Stop the survivors and parse their snapshots.
    let mut snapshots: Vec<ReplicaSnapshot> = Vec::new();
    for process in &mut processes {
        if Some(process.id) == killed {
            continue;
        }
        if process.send("STOP").is_err() {
            eprintln!("cluster: FAILED: replica {} died unexpectedly", process.id);
            std::process::exit(1);
        }
        let mut line = String::new();
        loop {
            line.clear();
            let n = process.stdout.read_line(&mut line).expect("SNAPSHOT line");
            if n == 0 {
                eprintln!(
                    "cluster: FAILED: replica {} exited without a snapshot",
                    process.id
                );
                std::process::exit(1);
            }
            if line.starts_with("SNAPSHOT ") {
                break;
            }
        }
        snapshots.push(parse_snapshot(line.trim()));
        let _ = process.child.wait();
    }

    // Invariants: log agreement across survivors, and drain accounting —
    // every client-completed request executed exactly once.
    if !snapshots_consistent(&snapshots) {
        eprintln!("cluster: FAILED: surviving replica logs diverge");
        std::process::exit(1);
    }
    let longest = snapshots
        .iter()
        .max_by_key(|s| s.executed.len())
        .expect("at least one snapshot");
    let mut counts: HashMap<Digest, usize> = HashMap::new();
    for digest in &longest.executed {
        *counts.entry(*digest).or_default() += 1;
    }
    for digest in &report.completed_digests {
        if counts.get(digest).copied().unwrap_or(0) != 1 {
            eprintln!(
                "cluster: FAILED: completed digest {digest:?} appears {} times in the \
                 longest log",
                counts.get(digest).copied().unwrap_or(0)
            );
            std::process::exit(1);
        }
    }

    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "cluster ok: {replicas} processes, {} completed requests in {elapsed:.2}s \
         ({:.0} req/s), mean latency {:.2} ms{}",
        report.completed,
        report.completed as f64 / elapsed,
        report.mean_latency() * 1e3,
        match killed {
            Some(id) => format!(", survived killing replica {id}"),
            None => String::new(),
        }
    );
    std::process::exit(0);
}

fn parse_snapshot(line: &str) -> ReplicaSnapshot {
    let mut parts = line.split_whitespace();
    let _tag = parts.next();
    let id = parts.next().and_then(|v| v.parse().ok()).expect("id");
    let log_start = parts
        .next()
        .and_then(|v| v.parse().ok())
        .expect("log_start");
    let last_executed = parts
        .next()
        .and_then(|v| v.parse().ok())
        .expect("last_executed");
    let needs_state = parts
        .next()
        .and_then(|v| v.parse().ok())
        .expect("needs_state");
    let executed = match parts.next() {
        Some(digests) if !digests.is_empty() => digests
            .split(',')
            .map(|d| Digest(d.parse().expect("digest")))
            .collect(),
        _ => Vec::new(),
    };
    ReplicaSnapshot {
        id,
        log_start,
        executed,
        last_executed,
        needs_state,
    }
}
